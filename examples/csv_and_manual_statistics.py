"""The stand-alone user flow: CSV data + user-supplied statistics.

§5 of the paper, stand-alone usage: "the user may optionally indicate the
cardinality of the involved relations, and the selectivity of their
attributes" — no DBMS, no ANALYZE, just files and a few numbers.  This
example:

1. exports a generated TPC-H database to CSV (pretending those files came
   from the user);
2. loads them back into a fresh catalog *without* running ANALYZE;
3. supplies coarse manual statistics (row counts + a few distinct counts);
4. lets the hybrid optimizer plan Q5 from those hints and prints how close
   the hinted plan's cost is to the fully-ANALYZEd one.

Run:  python examples/csv_and_manual_statistics.py
"""

import tempfile
from pathlib import Path

from repro.core.optimizer import HybridOptimizer
from repro.relational.csvio import export_database_csv, load_database_csv
from repro.workloads.tpch import TPCH_SCHEMA, generate_tpch_database
from repro.workloads.tpch_queries import query_q5


def main() -> None:
    source = generate_tpch_database(size_mb=100, seed=11)
    with tempfile.TemporaryDirectory() as tmp:
        export_database_csv(source, tmp)
        n_files = len(list(Path(tmp).glob("*.csv")))
        print(f"exported {n_files} CSV files to {tmp}")

        # Fresh catalog, no statistics.
        db = load_database_csv(TPCH_SCHEMA, tmp, name="from_csv")
        assert not db.has_statistics()

        # The user knows rough sizes and key cardinalities — §5's optional
        # hints for the stand-alone Statistics Picker.
        hints = {
            "region": (5, {"r_regionkey": 5, "r_name": 5}),
            "nation": (25, {"n_nationkey": 25, "n_regionkey": 5}),
            "supplier": (len(db.table("supplier")), {"s_nationkey": 25}),
            "customer": (len(db.table("customer")), {"c_nationkey": 25}),
            "orders": (len(db.table("orders")), {}),
            "lineitem": (len(db.table("lineitem")), {}),
            "part": (len(db.table("part")), {}),
            "partsupp": (len(db.table("partsupp")), {}),
        }
        for relation, (rows, distincts) in hints.items():
            db.statistics.put_manual(relation, rows, distincts)
        print("registered manual statistics (cardinalities + key distincts)")

        hinted = HybridOptimizer(db, max_width=3).optimize(query_q5())
        hinted_result = hinted.execute()

        db.analyze()  # now the full ANALYZE, for comparison
        analyzed = HybridOptimizer(db, max_width=3).optimize(query_q5())
        analyzed_result = analyzed.execute()

        assert hinted_result.relation.same_content(analyzed_result.relation)
        print(f"\nhinted plan:   width {hinted.width}, {hinted_result.work} work")
        print(f"analyzed plan: width {analyzed.width}, {analyzed_result.work} work")
        ratio = hinted_result.work / max(analyzed_result.work, 1)
        print(f"manual hints get within {ratio:.2f}× of the ANALYZEd plan ✓")


if __name__ == "__main__":
    main()

"""Chain queries: where structural optimization leaves any join order behind.

Reproduces the paper's §6 synthetic experiment in miniature: chain (cyclic)
queries of growing length over uniform data.  A binary join plan — even the
best one dynamic programming can find with perfect statistics — materializes
intermediate joins that grow geometrically with the chain length, while the
q-hypertree plan is bounded by the width-2 polynomial guarantee.

Run:  python examples/chain_queries.py
"""

from repro.core.optimizer import HybridOptimizer
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)

BUDGET = 3_000_000


def main() -> None:
    print(f"{'atoms':>6} {'commdb (best DP plan)':>22} {'q-hd':>10} {'q-hd width':>11}")
    for n_atoms in range(3, 13):
        config = SyntheticConfig(
            n_atoms=n_atoms, cardinality=500, selectivity=30, cyclic=True, seed=n_atoms
        )
        db = generate_synthetic_database(config)
        db.analyze()
        sql = synthetic_query_sql(config)

        dbms = SimulatedDBMS(db, COMMDB_PROFILE)
        baseline = dbms.run_sql(sql, work_budget=BUDGET)

        plan = HybridOptimizer(db, max_width=3).optimize(sql)
        qhd = plan.execute(work_budget=BUDGET, spill=dbms.spill_model)

        base_text = str(baseline.work) if baseline.finished else "DNF (>budget)"
        qhd_text = str(qhd.work) if qhd.finished else "DNF"
        print(f"{n_atoms:>6} {base_text:>22} {qhd_text:>10} {plan.width:>11}")

        if baseline.finished and qhd.finished:
            assert baseline.relation.same_content(qhd.relation)

    print("\nThe DP baseline grows geometrically and hits the budget;")
    print("the q-HD plan keeps the polynomial bound of Definition 3.")

    # Show one decomposition for intuition.
    config = SyntheticConfig(n_atoms=8, cardinality=500, selectivity=30, cyclic=True)
    db = generate_synthetic_database(config)
    plan = HybridOptimizer(db, max_width=3).optimize(synthetic_query_sql(config))
    print("\nwidth-2 decomposition of the 8-atom chain:")
    print(plan.explain())


if __name__ == "__main__":
    main()

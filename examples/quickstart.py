"""Quickstart: decompose and run one cyclic SQL query.

Builds a four-relation cyclic join (the "chain query" family of the paper,
§6), lets the simulated CommDB-like engine plan it, then runs the same
query through the hybrid optimizer's q-hypertree decomposition — and checks
both give the same answer.

Run:  python examples/quickstart.py
"""

import random

from repro.core.optimizer import HybridOptimizer
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.relational import AttributeType, Database, RelationSchema


def build_database(seed: int = 7, rows: int = 200, values: int = 30) -> Database:
    """Four binary relations r0..r3 over a small integer domain."""
    rng = random.Random(seed)
    db = Database("quickstart")
    for i in range(4):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(
            schema,
            [(rng.randrange(values), rng.randrange(values)) for _ in range(rows)],
        )
    db.analyze()  # gather statistics (the ANALYZE step)
    return db


SQL = """
SELECT r0.a0, r2.a2
FROM r0, r1, r2, r3
WHERE r0.b0 = r1.a1
  AND r1.b1 = r2.a2
  AND r2.b2 = r3.a3
  AND r3.b3 = r0.a0
"""


def main() -> None:
    db = build_database()

    # 1. The quantitative baseline: System-R-style DP join ordering.
    dbms = SimulatedDBMS(db, COMMDB_PROFILE)
    baseline = dbms.run_sql(SQL)
    print("engine plan:")
    print(baseline.plan_text)
    print(f"engine: {len(baseline.relation)} rows, {baseline.work} work units")
    print()

    # 2. The paper's structural optimizer: cost-k-decomp → q-HD plan.
    optimizer = HybridOptimizer(db, max_width=2)
    plan = optimizer.optimize(SQL)
    print(f"q-hypertree decomposition (width {plan.width}):")
    print(plan.explain())
    result = plan.execute()
    print(f"q-hd: {len(result.relation)} rows, {result.work} work units")
    print()

    # 3. Both must agree.
    assert baseline.relation.same_content(result.relation), "answers differ!"
    print("answers agree ✓")


if __name__ == "__main__":
    main()

"""TPC-H Q5 across database sizes — a miniature of the paper's Fig. 8(a).

Generates scaled TPC-H databases (200 → 1000 nominal MB), runs Q5 three
ways — CommDB with statistics, CommDB without its standard optimizer, and
the stand-alone q-HD plan — and prints the work-unit series.  The ordering
(q-HD < CommDB+stats « CommDB w/o optimizer, the latter growing
superlinearly under memory pressure) is the paper's result.

Run:  python examples/tpch_q5.py
"""

from repro.core.optimizer import HybridOptimizer
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import query_q5

BUDGET = 2_000_000
SIZES = (200, 400, 600, 800, 1000)


def main() -> None:
    sql = query_q5(region="ASIA", date_from="1994-01-01")
    print(f"{'size_mb':>8} {'commdb+stats':>14} {'commdb-no-opt':>14} {'q-hd':>10}")
    for size in SIZES:
        db = generate_tpch_database(size_mb=size, seed=1, analyze=True)
        dbms = SimulatedDBMS(db, COMMDB_PROFILE)

        with_stats = dbms.run_sql(sql, use_statistics=True, work_budget=BUDGET)
        no_opt = dbms.run_sql(sql, optimizer_enabled=False, work_budget=BUDGET)

        plan = HybridOptimizer(db, max_width=3, use_statistics=False).optimize(sql)
        qhd = plan.execute(work_budget=BUDGET, spill=dbms.spill_model)

        def show(result) -> str:
            return str(result.work) if result.finished else "DNF"

        print(
            f"{size:>8} {show(with_stats):>14} {show(no_opt):>14} {show(qhd):>10}"
        )

        # Cross-validate the answers whenever everything finished.
        finished = [
            r.relation
            for r in (with_stats, no_opt, qhd)
            if r.relation is not None
        ]
        for other in finished[1:]:
            assert finished[0].same_content(other), "answers differ!"
    print("\nall finished runs agree on the answer ✓")
    print("revenue by nation (largest database):")
    for row in qhd.relation.tuples:
        print(f"  {row[0]:<12} {row[1]:>14.2f}")


if __name__ == "__main__":
    main()

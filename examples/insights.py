"""Query insights: per-template histograms, slow log, SLOs, and merging.

A walkthrough of ``repro.obs.insights`` — the observability layer that
answers *which template* got slower, *in which phase*:

1. **recording** — attach an :class:`~repro.obs.insights.InsightsRegistry`
   to a :class:`~repro.service.QueryService` and serve a mixed workload;
   the optimizer handler feeds per-phase latency/work histograms, SLO
   outcomes, and slow-query captures, keyed by canonical template
   fingerprint (zero work-unit cost when the registry is off);
2. **inspection** — the snapshot's per-template phase quantiles, the
   bounded top-K slow log, and the fast/slow SLO burn rates;
3. **exact merging** — two registries fed disjoint traffic merge into
   the snapshot one registry holding all of it would produce, bucket for
   bucket (the property the sharded serving path relies on);
4. **rendering** — the ``hdqo top`` text frame and the Prometheus
   exposition, both derived from the same snapshot.

Run:  python examples/insights.py
"""

import random

from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.obs.insights import (
    InsightsRegistry,
    merge_insights_snapshots,
    quantile_from_snapshot,
    render_insights_prometheus,
    render_top,
)
from repro.relational import AttributeType, Database, RelationSchema
from repro.service import QueryService

TEMPLATES = [
    "SELECT r0.a0 FROM r0, r1 WHERE r0.b0 = r1.a1 AND r0.a0 < {c}",
    "SELECT r1.a1 FROM r1, r2 WHERE r1.b1 = r2.a2 AND r1.a1 < {c}",
    "SELECT r2.a2, r3.a3 FROM r2, r3 WHERE r2.b2 = r3.a3 AND r2.a2 < {c}",
]


def make_database() -> Database:
    rng = random.Random(0)
    db = Database("chain4")
    for i in range(4):
        schema = RelationSchema.of(
            f"r{i}", {f"a{i}": AttributeType.INT, f"b{i}": AttributeType.INT}
        )
        db.create_table(
            schema, [(rng.randrange(8), rng.randrange(8)) for _ in range(40)]
        )
    db.analyze()
    return db


def serve(db: Database, queries: list) -> dict:
    """Run a batch through a service with insights on; return the snapshot."""
    insights = InsightsRegistry()
    service = QueryService(
        SimulatedDBMS(db, COMMDB_PROFILE), max_width=2, workers=2,
        insights=insights,
    )
    try:
        service.run_all(queries)
    finally:
        service.close()
    return insights.snapshot()


def main() -> None:
    db = make_database()
    workload = [
        template.format(c=2 + (rep % 3))
        for rep in range(4)
        for template in TEMPLATES
    ]

    # -- 1 + 2. record a workload, inspect per-template phases ---------------
    snapshot = serve(db, workload)
    print("per-template phase distributions:")
    for template, entry in snapshot["templates"].items():
        print(f"  {template[:16]}…  queries={entry['queries']} "
              f"errors={entry['errors']}")
        for phase, data in entry["phases"].items():
            latency = data["latency"]
            print(f"    {phase:<10} n={latency['count']:<3} "
                  f"p50={quantile_from_snapshot(latency, 0.5) * 1000:7.2f}ms "
                  f"p99={quantile_from_snapshot(latency, 0.99) * 1000:7.2f}ms "
                  f"work={data['work']['total']:.0f}")
        slo = entry["slo"]
        print(f"    slo: good={slo['good']} bad={slo['bad']} "
              f"fast-burn={slo['fast_burn_rate']}")

    outliers = snapshot["slow_log"]["outliers"]
    print(f"\nslow log: top-K outliers for {len(outliers)} template(s)")

    # -- 3. exact cross-registry merging -------------------------------------
    # Split the workload across two registries the way the shard router
    # does — template-affine, each template entirely on one side — and
    # the merged work histograms equal the single registry's exactly.
    left = serve(db, [q for q in workload if q.startswith(TEMPLATES[0][:18])])
    right = serve(db, [q for q in workload if not q.startswith(TEMPLATES[0][:18])])
    merged = merge_insights_snapshots([left, right])
    exact = all(
        merged["templates"][key]["phases"][phase]["work"]
        == entry["phases"][phase]["work"]
        for key, entry in snapshot["templates"].items()
        for phase in entry["phases"]
    )
    print(f"\nmerged(work histograms) == single-process: {exact}")

    # -- 4. the top frame and the Prometheus exposition -----------------------
    print("\n" + render_top({
        "service": {"queries": len(workload), "cache_hit_rate": 0.75,
                    "saturation": None, "shards": 1},
        "insights": merged,
    }))
    prometheus = render_insights_prometheus(merged)
    print("\nPrometheus exposition (first 8 lines):")
    for line in prometheus.splitlines()[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()

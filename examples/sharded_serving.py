"""Sharded serving: template-affine routing across worker processes.

A walkthrough of ``repro.shard`` — the multi-process layer over the
serving stack:

1. **routing** — every query's canonical template fingerprint lands on a
   consistent-hash ring, so isomorphic queries (different constants,
   renamed aliases) always share a shard and that shard's plan cache;
2. **parity** — a sharded batch answers byte-identically (rows *and*
   order) to one single-process service;
3. **the async front door** — awaitable submission with per-shard
   backpressure and deadlines that keep ticking in the queue;
4. **one merged view** — per-shard metric snapshots, plan-cache hit
   rates, and shard-tagged span records aggregated cluster-wide.

Run:  python examples/sharded_serving.py
"""

import asyncio

from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.obs.tracing import validate_span_records
from repro.service import QueryService
from repro.shard import AsyncFrontDoor, ShardConfig, ShardRouter
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)

SHARDS = 2


def main() -> None:
    config = SyntheticConfig(
        n_atoms=5, cardinality=200, selectivity=60, cyclic=True, seed=3
    )
    db = generate_synthetic_database(config)
    db.analyze()
    base_sql = synthetic_query_sql(config)

    # Two non-isomorphic templates, each repeated with varying constants.
    templates = [
        base_sql + " AND rel0.x0 < {c}",
        "SELECT a.x0 FROM rel0 a, rel1 b WHERE a.y0 = b.x1 "
        "AND a.x0 < {c}",
    ]
    queries = [
        template.format(c=c)
        for c in (10, 20, 30, 40)
        for template in templates
    ]

    shard_config = ShardConfig(
        database=db,
        max_width=3,
        workers=2,
        cache_capacity=64,
        trace=True,  # per-shard tracers; merged below
    )
    router = ShardRouter(shard_config, shards=SHARDS)

    # -- 1. routing is deterministic and template-affine ----------------
    for template in templates:
        shards = {router.route(template.format(c=c)) for c in (1, 2, 3)}
        print(f"template routes to shard {shards} "
              f"(constants never change the route)")

    # -- 2. parity with a single-process service ------------------------
    sharded = router.run_all(queries)
    with QueryService(
        SimulatedDBMS(db, COMMDB_PROFILE), max_width=3, workers=2 * SHARDS
    ) as single:
        baseline = single.run_all(queries)
    identical = all(
        s.relation.attributes == b.relation.attributes
        and s.relation.tuples == b.relation.tuples
        for s, b in zip(sharded, baseline)
    )
    print(f"parity over {len(queries)} queries: identical={identical}")

    # -- 3. the async front door ----------------------------------------
    async def serve_async():
        async with AsyncFrontDoor(router, queue_depth=8) as door:
            results = await door.run_all(queries)
            return results, door.snapshot()

    results, door_snapshot = asyncio.run(serve_async())
    print(f"front door served {len(results)} queries "
          f"(expired in queue: {door_snapshot['expired_in_queue']})")

    # -- 4. the merged cluster view --------------------------------------
    snapshot = router.snapshot()
    merged = snapshot["merged"]
    print(f"cluster: {merged['queries']['submitted']} submitted, "
          f"{merged['queries']['finished']} finished")
    for shard_id, rate in sorted(snapshot["cache_hit_rates"].items()):
        shown = f"{rate:.0%}" if rate is not None else "idle"
        print(f"  shard {shard_id} plan-cache hit rate: {shown}")

    clean = router.drain(grace_seconds=10.0)
    records = router.span_records()
    problems = validate_span_records(
        records,
        dropped=router.spans_dropped(),
        open_count=router.open_spans(),
        require_shard_tag=True,
    )
    shards_traced = sorted({r["tags"]["shard"] for r in records})
    print(f"drained clean: {clean}; merged trace: {len(records)} spans "
          f"from shards {shards_traced}, problems: {problems or 'none'}")


if __name__ == "__main__":
    main()

"""End-to-end observability: tracing, EXPLAIN ANALYZE, and the metrics registry.

Walks the three layers of ``repro.obs`` over a TPC-H Q5 run:

1. install a :class:`~repro.obs.tracing.Tracer` with the ``tracing()``
   context manager and watch the span tree the planner and executor emit —
   ``decompose.search`` → ``decompose.qhd`` → ``qhd.node``/``exec.*`` —
   each span carrying wall time, deterministic work-unit deltas, and tags;
2. render ``EXPLAIN ANALYZE`` for both the engine's binary-join plan and
   the q-hypertree plan (estimated vs actual cardinality per operator);
3. snapshot a :class:`~repro.obs.metrics.MetricsRegistry` and export the
   collected spans as JSONL.

Tracing is strictly opt-in: outside ``tracing()`` the process-wide tracer
is a shared no-op and a run charges exactly the same work units.

Run:  python examples/tracing.py
"""

import io

from repro.core.optimizer import HybridOptimizer
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import tracing
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import query_q5


def main() -> None:
    db = generate_tpch_database(size_mb=20, seed=0, analyze=True)
    sql = query_q5()
    dbms = SimulatedDBMS(db, COMMDB_PROFILE)
    optimizer = HybridOptimizer(db, max_width=4)

    # -- 1. trace a full plan + execute cycle --------------------------------
    with tracing() as tracer:
        plan = optimizer.optimize(sql)
        result = plan.execute()

    print(f"q-hd width {plan.decomposition.width}: "
          f"{len(result.relation)} rows, {result.work} work units\n")

    print("span tree (indent = nesting):")
    spans = tracer.spans()
    depth = {None: -1}
    for span in sorted(spans, key=lambda s: s.start):
        depth[span.span_id] = depth.get(span.parent_id, -1) + 1
        tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
        print(f"  {'  ' * depth[span.span_id]}{span.name:<20} "
              f"work={span.work_units:<6} {tags}")

    # -- 2. EXPLAIN ANALYZE, both engines ------------------------------------
    print("\nengine EXPLAIN ANALYZE (est vs actual per operator):")
    print(dbms.explain_analyze(sql).text)

    print("\nq-hd EXPLAIN ANALYZE (per-node rows and fold counts):")
    print(plan.explain(analyze=True))

    # -- 3. metrics registry + JSONL export ----------------------------------
    registry = MetricsRegistry()
    registry.counter("example_queries_total").inc()
    registry.histogram("example_work_units", buckets=(1_000, 10_000, 100_000)) \
        .observe(result.work)
    print("\nPrometheus exposition:")
    print(registry.render_text())

    buffer = io.StringIO()
    exported = tracer.export_jsonl(buffer)
    first_line = buffer.getvalue().splitlines()[0]
    print(f"exported {exported} spans as JSONL; first record:")
    print(f"  {first_line}")

    # -- zero-cost check: identical work with the no-op tracer ---------------
    untraced = plan.execute()
    assert untraced.work == result.work, "tracing must not change work charges"
    print(f"\nuntraced re-run charges the same {untraced.work} work units — "
          "tracing is free when disabled.")


if __name__ == "__main__":
    main()

"""Boolean (decision) queries: the pure semijoin program of §3.2.

For Boolean conjunctive queries the paper's evaluation needs no joins at
all: materialize each decomposition node, then a single bottom-up semijoin
pass — O((m−1)·|r_max|^k·log|r_max|).  This example decides EXISTS-style
questions on TPC-H data and shows the work gap between deciding a query
and enumerating its answers.

Run:  python examples/boolean_queries.py
"""

from repro.core.boolean import is_satisfiable
from repro.core.optimizer import HybridOptimizer
from repro.metering import WorkMeter
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import query_q5


def main() -> None:
    db = generate_tpch_database(size_mb=200, seed=5, analyze=True)

    questions = [
        (
            "any ASIA revenue in 1994?",
            query_q5(region="ASIA", date_from="1994-01-01"),
        ),
        (
            "any supplier and customer in the same nation with an order?",
            """
            SELECT c_custkey FROM customer, orders, lineitem, supplier
            WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
              AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
            """,
        ),
        (
            "any customer with a negative balance above 9999?",
            "SELECT c_custkey FROM customer WHERE c_acctbal > 9999.99",
        ),
    ]

    for label, sql in questions:
        meter = WorkMeter()
        answer = is_satisfiable(sql, db, max_width=3, meter=meter)
        print(f"{label:<55} {'YES' if answer else 'no':>4}  ({meter.total} work)")

    # Deciding vs enumerating: the gap appears when the answer is LARGE.
    # A line query whose output pairs the two endpoints has ~V² answers;
    # the Boolean version is a width-1 semijoin program.
    from repro.workloads.synthetic import (
        SyntheticConfig,
        generate_synthetic_database,
    )

    config = SyntheticConfig(n_atoms=6, cardinality=500, selectivity=30, seed=1)
    sdb = generate_synthetic_database(config)
    sdb.analyze()
    tables = ", ".join(f"rel{i}" for i in range(6))
    where = " AND ".join(f"rel{i}.y{i} = rel{i + 1}.x{i + 1}" for i in range(5))
    span_sql = f"SELECT rel0.x0, rel5.y5 FROM {tables} WHERE {where}"

    decide = WorkMeter()
    is_satisfiable(span_sql, sdb, max_width=3, meter=decide)
    enumerated = HybridOptimizer(sdb, max_width=3).optimize(span_sql).execute()
    print(
        f"\nendpoint-pair line query: decide = {decide.total} work, "
        f"enumerate {len(enumerated.relation)} answers = {enumerated.work} work "
        f"({enumerated.work / max(decide.total, 1):.1f}× more)"
    )


if __name__ == "__main__":
    main()

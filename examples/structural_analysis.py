"""Structural analysis: compare every decomposition measure on real queries.

The paper's introduction surveys the structural methods that preceded
hypertree decompositions — biconnected components (Freuder), tree
decompositions (Robertson–Seymour) — and argues hypertree width subsumes
them for query hypergraphs.  This example computes all three measures on
the TPC-H benchmark queries and the synthetic families, showing the gaps
that motivate the paper's method (e.g. a single wide atom costs hypertree
width 1 but blows up the primal-graph treewidth).

Run:  python examples/structural_analysis.py
"""

from repro.hypergraph import Hypergraph, cycle_hypergraph, line_hypergraph
from repro.hypergraph.treedecomp import structural_summary
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.workloads.tpch import TPCH_SCHEMA
from repro.workloads.tpch_queries import TPCH_QUERIES


def show(label: str, hypergraph: Hypergraph) -> None:
    summary = structural_summary(hypergraph)
    print(
        f"{label:<14} atoms={summary['edges']:>2}  vars={summary['variables']:>2}  "
        f"acyclic={str(summary['acyclic']):<5}  hw={summary['hypertree_width']!s:>2}  "
        f"tw≤{summary.get('treewidth_min_fill', '-')!s:>2}  "
        f"bicomp={summary['biconnected_width']:>2}  "
        f"hinge={summary['hinge_degree']:>2}"
    )


def main() -> None:
    print("TPC-H benchmark queries:")
    schema = TPCH_SCHEMA.as_mapping()
    for name in sorted(TPCH_QUERIES):
        sql = TPCH_QUERIES[name]()
        translation = sql_to_conjunctive(parse_sql(sql), schema, name=name)
        show(name, translation.query.hypergraph())

    print("\nSynthetic families:")
    show("line(8)", line_hypergraph(8))
    show("chain(8)", cycle_hypergraph(8))

    print("\nThe motivating gap — one wide atom:")
    wide = Hypergraph.from_dict(
        {"wide": [f"X{i}" for i in range(8)], "link": ["X0", "Y"]}
    )
    show("wide-atom", wide)
    print(
        "\nhypertree width 1 despite primal treewidth 7: a single high-arity\n"
        "atom is one λ entry for a hypertree decomposition but a clique for\n"
        "the primal-graph methods — the gap the paper's method exploits."
    )


if __name__ == "__main__":
    main()

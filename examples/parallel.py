"""Intra-query parallel q-HD evaluation: parity, speedup, and memoization.

A walkthrough of ``repro.parallel`` — the parallel executor over the
tight coupling:

1. **parity** — the parallel evaluator returns rows identical to the
   serial evaluator (same rows, same order), at any worker count;
2. **speedup** — the fused batch join kernels do measurably less work
   (eager projection dedup) and overlap independent subtrees;
3. **memoization** — structurally identical subtrees are materialized
   once and shared, within a tree and across evaluations that pass the
   same ``NodeMemo``.

Run:  python examples/parallel.py
"""

import time

from repro.core.optimizer import HybridOptimizer
from repro.engine.scans import atom_relations
from repro.parallel import NodeMemo, ParallelQHDEvaluator
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)


def main() -> None:
    config = SyntheticConfig(
        n_atoms=10, cardinality=1000, selectivity=30, cyclic=True, seed=7
    )
    db = generate_synthetic_database(config)
    sql = synthetic_query_sql(config)
    plan = HybridOptimizer(db, max_width=2, use_statistics=False).optimize(
        sql, name="chain"
    )
    print(f"chain query: {config.n_atoms} atoms, width {plan.width}")

    # -- parity + speedup ------------------------------------------------
    started = time.perf_counter()
    serial = plan.execute()
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    parallel = plan.execute(parallel_workers=4)
    parallel_wall = time.perf_counter() - started

    assert parallel.relation.tuples == serial.relation.tuples
    print(f"serial:       {serial_wall * 1e3:7.1f} ms, {serial.work} work units")
    print(f"parallel(4):  {parallel_wall * 1e3:7.1f} ms, {parallel.work} work units")
    print(f"speedup:      {serial_wall / parallel_wall:.2f}x, identical rows: True")

    # -- memoization across evaluations ----------------------------------
    base = atom_relations(plan.translation.query, db, plan.translation)
    memo = NodeMemo()
    first = ParallelQHDEvaluator(
        plan.decomposition, plan.translation.query, workers=4, memo=memo
    ).evaluate(base)
    second = ParallelQHDEvaluator(
        plan.decomposition, plan.translation.query, workers=4, memo=memo
    ).evaluate(base)
    assert second.tuples == first.tuples
    print(f"memo after two evaluations: {memo!r}")


if __name__ == "__main__":
    main()

"""The serving layer: warm-up, template cache hits, and backpressure.

A walkthrough of ``repro.service.QueryService`` — the concurrent serving
stack over the tight coupling:

1. **warm-up** — plan each query template once, populating the plan cache;
2. **cache hits** — repetitions of a template (different constants,
   different FROM-clause aliases) skip cost-k-decomp entirely: the cached
   canonical decomposition is renamed into the new query's names;
3. **backpressure** — a saturated bounded queue rejects with
   ``ServiceOverloaded`` instead of queueing without bound.

Run:  python examples/serving.py
"""

import threading

from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.errors import ServiceOverloaded
from repro.service import QueryService, render_snapshot
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)


def main() -> None:
    config = SyntheticConfig(
        n_atoms=5, cardinality=200, selectivity=60, cyclic=True, seed=3
    )
    db = generate_synthetic_database(config)
    db.analyze()
    base_sql = synthetic_query_sql(config)

    service = QueryService(
        SimulatedDBMS(db, COMMDB_PROFILE),
        max_width=3,
        workers=4,
        queue_capacity=8,
        cache_capacity=64,
    )

    # -- 1. warm-up: one planning pass per template ---------------------
    templates = [base_sql, base_sql + " AND rel0.x0 < 50"]
    entries = service.warm_up(templates)
    print(f"warm-up planned {entries} templates "
          f"(plans built: {service.metrics.plans_built})")

    # -- 2. repetitions hit the cache -----------------------------------
    # Different constants, same template → same fingerprint → cache hit.
    for threshold in (10, 20, 30):
        result = service.execute(base_sql + f" AND rel0.x0 < {threshold}")
        print(f"  threshold {threshold}: optimizer={result.optimizer}, "
              f"rows={len(result.relation)}")

    # An isomorphic alias renaming is *also* the same template.
    renamed = (
        "SELECT a.x0, a.y0 FROM rel0 a, rel1 b, rel2 c, rel3 d, rel4 e "
        "WHERE a.y0 = b.x1 AND b.y1 = c.x2 AND c.y2 = d.x3 "
        "AND d.y3 = e.x4 AND e.y4 = a.x0"
    )
    result = service.execute(renamed)
    print(f"  aliased renaming: optimizer={result.optimizer}")

    # A concurrent batch over the pool: all served, answers in order.
    batch = [base_sql + f" AND rel0.x0 < {t}" for t in range(5, 45, 5)]
    results = service.run_all(batch)
    print(f"  batch of {len(batch)}: "
          f"{sum(r.finished for r in results)} finished, "
          f"cache hits so far: {service.metrics.plans_cached}")

    # -- 3. backpressure ------------------------------------------------
    # Saturate the one-worker-deep queue with blocked tasks, then watch
    # submit() reject instead of queueing unboundedly.
    release = threading.Event()
    blocked = [
        service.pool.submit_blocking(release.wait, 10)
        for _ in range(4 + 8)  # workers + queue capacity
    ]
    rejected = 0
    try:
        service.submit(base_sql)
    except ServiceOverloaded as exc:
        rejected += 1
        print(f"  overload: {exc}")
    release.set()
    for future in blocked:
        future.result(timeout=10)
    print(f"rejected under overload: {rejected} "
          f"(metric: {service.metrics.rejected})")

    # -- metrics snapshot ----------------------------------------------
    print()
    print(render_snapshot(service.snapshot()))
    service.close()


if __name__ == "__main__":
    main()

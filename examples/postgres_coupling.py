"""Tight coupling: swap the engine's optimizer handler for cost-k-decomp.

Reproduces the paper's Fig. 6 integration: after
``install_structural_optimizer`` the PostgreSQL-like engine plans every
query with the structural pipeline, transparently to the caller — including
the fallback to the built-in planner when no width-≤k decomposition covers
the output variables.

Run:  python examples/postgres_coupling.py
"""

from repro.core.integration import install_structural_optimizer
from repro.engine.dbms import POSTGRES_PROFILE, SimulatedDBMS
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)

BUDGET = 3_000_000


def main() -> None:
    config = SyntheticConfig(
        n_atoms=9, cardinality=450, selectivity=60, cyclic=True, seed=9
    )
    db = generate_synthetic_database(config)
    db.analyze()
    sql = synthetic_query_sql(config)

    # Stock engine: left-deep DP below the GEQO threshold, genetic above.
    stock = SimulatedDBMS(db, POSTGRES_PROFILE)
    before = stock.run_sql(sql, work_budget=BUDGET)
    print("stock postgresql plan:")
    print(before.plan_text)
    print(f"work: {before.work if before.finished else 'DNF'}  "
          f"(optimizer: {before.optimizer})")
    print()

    # Couple the structural optimizer — same engine object, same run_sql.
    coupled = SimulatedDBMS(db, POSTGRES_PROFILE)
    install_structural_optimizer(coupled, max_width=4)
    after = coupled.run_sql(sql, work_budget=BUDGET)
    print("postgresql + q-hd plan (decomposition tree):")
    print(after.plan_text)
    print(f"work: {after.work if after.finished else 'DNF'}  "
          f"(optimizer: {after.optimizer})")
    print()

    if before.finished and after.finished:
        assert before.relation.same_content(after.relation)
        speedup = before.work / max(after.work, 1)
        print(f"answers agree ✓ — structural coupling is {speedup:.1f}× cheaper")

    # Fallback: a query whose output spans too many atoms for width 4
    # silently falls back to the built-in planner.
    wide_sql = (
        "SELECT rel0.x0, rel1.x1, rel2.x2, rel3.x3, rel4.x4, rel5.x5, "
        "rel6.x6, rel7.x7, rel8.x8 FROM rel0, rel1, rel2, rel3, rel4, "
        "rel5, rel6, rel7, rel8 WHERE "
        + " AND ".join(f"rel{i}.y{i} = rel{i + 1}.x{i + 1}" for i in range(8))
    )
    fallback = coupled.run_sql(wide_sql, work_budget=BUDGET)
    print(f"\nwide-output query fell back to: {fallback.plan_text.splitlines()[0]}")


if __name__ == "__main__":
    main()

"""Stand-alone mode: rewrite a query into decomposition-driven SQL views.

The paper's prototype, used on top of an external DBMS, emits the query
plan as a stack of SQL views (§5).  This example prints the rewriting for
TPC-H Q5 and then *executes* the view stack on the simulated engine —
materializing each view in dependency order — verifying it matches the
direct execution.

Run:  python examples/sql_views.py
"""

from repro.core.optimizer import HybridOptimizer
from repro.core.views import execute_view_plan
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import query_q5


def main() -> None:
    db = generate_tpch_database(size_mb=100, seed=3, analyze=True)
    sql = query_q5()

    optimizer = HybridOptimizer(db, max_width=3)
    plan = optimizer.optimize(sql)
    print(f"decomposition (width {plan.width}):")
    print(plan.explain())
    print()

    view_plan = plan.to_sql_views(view_prefix="q5")
    print("rewritten SQL script:")
    print(view_plan.render())
    print()

    dbms = SimulatedDBMS(db, COMMDB_PROFILE)
    rewritten = execute_view_plan(view_plan, dbms)
    direct = dbms.run_sql(sql)

    print(f"direct execution:  {len(direct.relation)} rows, {direct.work} work")
    print(f"via views:         {len(rewritten.relation)} rows, {rewritten.work} work")
    assert direct.relation.same_content(rewritten.relation), "answers differ!"
    print("answers agree ✓")


if __name__ == "__main__":
    main()

"""Work metering: machine-independent cost accounting.

The paper reports wall-clock seconds on a 2.66 GHz Pentium 4.  To make the
reproduction deterministic and hardware-independent, every physical operator
charges *work units* (one unit ≈ one tuple touched) to a :class:`WorkMeter`.
Benchmarks report both work units and wall-clock time; the figure shapes are
identical.

A meter may carry a budget.  When the budget is exhausted the current
operation raises :class:`repro.errors.WorkBudgetExceeded`; the benchmark
harness records such runs as *did-not-finish*, mirroring the paper's
"CommDB executions do not terminate after more than 10 minutes".
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.analysis.lockwitness import make_lock
from repro.errors import WorkBudgetExceeded


class WorkMeter:
    """Accumulates work units, optionally enforcing a budget.

    Charging is thread-safe: one meter may be shared by operators running on
    several pool workers (the serving layer's concurrent executions), and the
    total is exact — no increments are lost to interleaving.

    Args:
        budget: maximum number of work units allowed; ``None`` = unlimited.

    Attributes:
        total: work units charged so far.
        by_category: per-category breakdown (e.g. ``"join"``, ``"scan"``).
    """

    def __init__(self, budget: Optional[int] = None):
        if budget is not None and budget <= 0:
            raise ValueError("work budget must be positive")
        self.budget = budget
        self.total = 0
        self.by_category: Dict[str, int] = {}
        self._lock = make_lock("WorkMeter._lock")
        self._started = time.perf_counter()

    def charge(self, units: int, category: str = "other") -> None:
        """Charge ``units`` work units; raises on budget exhaustion.

        The budget is checked on *every* charge — operators charge per
        tuple (or per lump, before materializing), so exhaustion raises
        mid-operator with ``phase`` naming the charging category, not at
        the next operator boundary.
        """
        if units < 0:
            raise ValueError("cannot charge negative work")
        with self._lock:
            self.total += units
            if category in self.by_category:
                self.by_category[category] += units
            else:
                self.by_category[category] = units
            total = self.total
        if self.budget is not None and total > self.budget:
            raise WorkBudgetExceeded(self.budget, total, phase=category)

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since the meter was created."""
        return time.perf_counter() - self._started

    def snapshot(self) -> Dict[str, int]:
        """A copy of the per-category breakdown, plus the total."""
        with self._lock:
            result = dict(self.by_category)
            result["total"] = self.total
        return result

    def __repr__(self) -> str:
        budget = f"/{self.budget}" if self.budget is not None else ""
        return f"WorkMeter({self.total}{budget})"


#: Meter categories charged during planning; everything else is execution.
PLANNING_CATEGORIES = frozenset({"plan"})


def split_phases(by_category: Dict[str, int]) -> Dict[str, int]:
    """Split a per-category work breakdown into pipeline phases.

    The structural pipeline has three phases: *decompose* (the cost-k-decomp
    search, charged to the ``"plan"`` category), *optimize* (Procedure
    Optimize — pure tree surgery that touches no tuples, so always 0 work
    units), and *execute* (every tuple-touching category: scans, joins,
    projections, spill penalties, post-processing).

    Args:
        by_category: a :meth:`WorkMeter.snapshot`-style mapping (a ``total``
            key, if present, is ignored).

    Returns:
        ``{"decompose": …, "optimize": 0, "execute": …}``.
    """
    decompose = 0
    execute = 0
    for category, units in by_category.items():
        if category == "total":
            continue
        if category in PLANNING_CATEGORIES:
            decompose += units
        else:
            execute += units
    return {"decompose": decompose, "optimize": 0, "execute": execute}


class SpillModel:
    """Memory-pressure model: oversized intermediates cost extra work.

    The paper's testbed was a 512 MB laptop with a 5400 rpm disk: join
    intermediates beyond memory spilled and the wall-clock cost became
    superlinear in their size.  A :class:`SpillModel` reproduces that
    effect deterministically — whenever an operator materializes a relation
    larger than ``memory_tuples``, the excess is charged ``spill_factor``
    extra work units per tuple.

    Args:
        memory_tuples: in-memory capacity, in tuples.
        spill_factor: extra work units charged per overflowing tuple.
    """

    def __init__(self, memory_tuples: int, spill_factor: float = 10.0):
        if memory_tuples <= 0:
            raise ValueError("memory_tuples must be positive")
        if spill_factor < 0:
            raise ValueError("spill_factor must be non-negative")
        self.memory_tuples = memory_tuples
        self.spill_factor = spill_factor

    def charge(self, meter: WorkMeter, materialized_size: int) -> None:
        """Charge the spill penalty for one materialized intermediate."""
        excess = materialized_size - self.memory_tuples
        if excess > 0:
            meter.charge(int(excess * self.spill_factor), "spill")

    def __repr__(self) -> str:
        return f"SpillModel({self.memory_tuples} tuples, ×{self.spill_factor})"


class NullMeter(WorkMeter):
    """A meter that records nothing — used when accounting is not needed."""

    def __init__(self) -> None:
        super().__init__(budget=None)

    def charge(self, units: int, category: str = "other") -> None:  # noqa: D102
        pass


NULL_METER = NullMeter()
"""Shared do-nothing meter; safe because it is stateless under charge()."""

"""EXPLAIN ANALYZE: render executed plans annotated with observed reality.

The engine's ``EXPLAIN`` shows estimated cardinalities; ``EXPLAIN ANALYZE``
executes the plan under a :class:`~repro.obs.tracing.Tracer` and annotates
every operator with what actually happened — rows produced, work units
charged (inclusive of the subtree, like PostgreSQL's *actual time*), wall
time, and the estimation error.  Two plan shapes are rendered:

* the engine's binary join tree (:class:`repro.engine.plan.PlanNode`),
  whose operators are traced as ``exec.scan`` / ``exec.join`` spans;
* the q-hypertree decomposition (:class:`repro.core.hypertree.Hypertree`),
  whose per-node evaluations are traced as ``qhd.node`` spans.

Spans carry a ``node`` tag identifying the plan node, so the renderers
here only match spans back to the tree — they never re-execute anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

from repro.engine.plan import JoinNode, PlanNode, ScanNode
from repro.core.hypertree import Hypertree, HypertreeNode
from repro.obs.tracing import Span

__all__ = [
    "NodeStats",
    "stats_by_node",
    "estimation_error",
    "render_analyzed_plan",
    "render_analyzed_decomposition",
]


@dataclass
class NodeStats:
    """Observed execution facts for one plan/decomposition node.

    Attributes:
        rows: tuples the node produced (``None`` when it never completed).
        work_units: work charged while the node (and its subtree) ran.
        seconds: wall time of the node (inclusive of its subtree).
        est_rows: the optimizer's cardinality estimate, when available.
    """

    rows: Optional[int] = None
    work_units: int = 0
    seconds: float = 0.0
    est_rows: Optional[float] = None

    @classmethod
    def from_span(cls, span: Span) -> "NodeStats":
        return cls(
            rows=span.tags.get("rows_out"),
            work_units=span.work_units,
            seconds=span.duration,
            est_rows=span.tags.get("est_rows"),
        )


def stats_by_node(
    spans: Iterable[Span], names: Iterable[str] = ("exec.scan", "exec.join")
) -> Dict[object, NodeStats]:
    """Index spans carrying a ``node`` tag by that tag value.

    When a node was executed more than once (shouldn't happen inside a
    single run), the last completed span wins.
    """
    wanted = frozenset(names)
    stats: Dict[object, NodeStats] = {}
    for span in spans:
        if span.name in wanted and "node" in span.tags:
            stats[span.tags["node"]] = NodeStats.from_span(span)
    return stats


def estimation_error(est_rows: Optional[float], rows: Optional[int]) -> str:
    """Human-readable estimation error: ``×2.5 over``, ``×3.0 under``, ``✓``.

    The factor is the larger of est/actual and actual/est; within 10% the
    estimate counts as accurate.  Zero-row sides use 1 to stay finite.
    """
    if est_rows is None or rows is None:
        return "?"
    est = max(float(est_rows), 1.0)
    actual = max(float(rows), 1.0)
    if est >= actual:
        factor, direction = est / actual, "over"
    else:
        factor, direction = actual / est, "under"
    if factor <= 1.1:
        return "✓"
    return f"×{factor:.1f} {direction}"


def _annotation(stats: Optional[NodeStats]) -> str:
    if stats is None:
        return "(not executed)"
    rows = "?" if stats.rows is None else str(stats.rows)
    est = "?" if stats.est_rows is None else f"{stats.est_rows:.0f}"
    return (
        f"(rows≈{est} actual={rows} [{estimation_error(stats.est_rows, stats.rows)}] "
        f"work={stats.work_units} {stats.seconds * 1000:.2f}ms)"
    )


def render_analyzed_plan(
    plan: PlanNode, stats: Mapping[object, NodeStats], indent: int = 0
) -> str:
    """The engine operator tree annotated with :class:`NodeStats`.

    ``stats`` is keyed by ``id(node)`` — the ``node`` tag the instrumented
    executors attach to their ``exec.*`` spans.
    """
    pad = "  " * indent
    node_stats = stats.get(id(plan))
    head = f"{pad}{plan}  {_annotation(node_stats)}"
    if isinstance(plan, ScanNode):
        return head
    if isinstance(plan, JoinNode):
        return "\n".join(
            [
                head,
                render_analyzed_plan(plan.left, stats, indent + 1),
                render_analyzed_plan(plan.right, stats, indent + 1),
            ]
        )
    raise TypeError(f"unknown plan node {plan!r}")


def render_analyzed_decomposition(
    decomposition: Hypertree, stats: Mapping[object, NodeStats]
) -> str:
    """The decomposition tree annotated per node with observed facts.

    ``stats`` is keyed by ``HypertreeNode.node_id`` — the ``node`` tag the
    :class:`~repro.core.evaluator.QHDEvaluator` attaches to ``qhd.node``
    spans.
    """
    lines: List[str] = []

    def visit(node: HypertreeNode, depth: int) -> None:
        chi = ", ".join(sorted(node.chi))
        lam = ", ".join(node.lam) if node.lam else "∅"
        node_stats = stats.get(node.node_id)
        if node_stats is None:
            note = "(not executed)"
        else:
            rows = "?" if node_stats.rows is None else str(node_stats.rows)
            note = (
                f"(actual={rows} work={node_stats.work_units} "
                f"{node_stats.seconds * 1000:.2f}ms)"
            )
        lines.append(
            "  " * depth + f"[{node.node_id}] λ={{{lam}}} χ={{{chi}}}  {note}"
        )
        for child in node.children:
            visit(child, depth + 1)

    visit(decomposition.root, 0)
    return "\n".join(lines)

"""``repro.obs`` — the observability layer: tracing, metrics, EXPLAIN ANALYZE.

Three dependency-free pieces, usable together or alone:

* :mod:`repro.obs.tracing` — hierarchical spans with wall time, work-unit
  deltas (via :class:`~repro.metering.WorkMeter`), and tags, exported as
  JSONL.  Disabled by default and zero-cost when disabled.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and fixed-bucket histograms; the serving layer's
  :class:`~repro.service.metrics.ServiceMetrics` is built on it.
* :mod:`repro.obs.explain` — EXPLAIN ANALYZE renderers: operator trees
  annotated with actual rows, work units, time, and estimation error.
"""

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    tracing,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_WORK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.explain import (
    NodeStats,
    estimation_error,
    render_analyzed_decomposition,
    render_analyzed_plan,
    stats_by_node,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "current_tracer",
    "set_tracer",
    "tracing",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_WORK_BUCKETS",
    "NodeStats",
    "stats_by_node",
    "estimation_error",
    "render_analyzed_plan",
    "render_analyzed_decomposition",
]

"""``hdqo top`` — a live terminal view over a merged insights snapshot.

The serving process (``hdqo serve --insights``) periodically publishes
its merged insights snapshot as one JSON file (written atomically:
temp file + rename, so a reader never sees a torn write).  ``hdqo top``
polls that file and renders the classic top-style table — top templates
by p99 latency, work units, error rate, and burn rate, with cache hit
rate and shard saturation in the header — refreshing in place on a TTY
and **degrading to a single text snapshot** when stdout is not a TTY
(CI logs, pipes), exactly once, no escape codes.

Everything here is read-only and wall-clock-free: the poll cadence uses
the injected monotonic clock/sleep pair, and the data is whatever the
serving side last published.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Mapping, Optional, TextIO, Tuple

from repro.obs.insights.histogram import quantile_from_snapshot

__all__ = ["render_top", "run_top", "load_snapshot_file", "publish_snapshot_file"]

_CLEAR = "\x1b[2J\x1b[H"


def publish_snapshot_file(path: str, data: Mapping[str, object]) -> None:
    """Atomically write a snapshot JSON file (temp + rename).

    The writer side of the ``hdqo top`` contract: a poller either sees
    the previous complete snapshot or the new one, never a torn file.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_snapshot_file(path: str) -> Optional[Dict[str, object]]:
    """The published snapshot, or None when absent/torn (poller retries)."""
    try:
        with open(path) as handle:
            loaded = json.load(handle)
    except (OSError, ValueError):
        return None
    return loaded if isinstance(loaded, dict) else None


def _template_rows(
    insights: Mapping[str, object],
) -> List[Tuple[str, Dict[str, float]]]:
    templates = insights.get("templates")
    if not isinstance(templates, Mapping):
        return []
    rows: List[Tuple[str, Dict[str, float]]] = []
    for key in sorted(str(k) for k in templates):
        entry = templates[key]
        if not isinstance(entry, Mapping):
            continue
        queries = entry.get("queries")
        errors = entry.get("errors")
        queries = queries if isinstance(queries, int) else 0
        errors = errors if isinstance(errors, int) else 0
        p50 = p99 = 0.0
        work_total = 0.0
        phases = entry.get("phases")
        if isinstance(phases, Mapping):
            for phase_name in ("execute", "decompose", "optimize"):
                data = phases.get(phase_name)
                if not isinstance(data, Mapping):
                    continue
                latency = data.get("latency")
                if (
                    p99 == 0.0
                    and isinstance(latency, Mapping)
                    and latency.get("count")
                ):
                    p50 = quantile_from_snapshot(latency, 0.50)
                    p99 = quantile_from_snapshot(latency, 0.99)
            for data in phases.values():
                if not isinstance(data, Mapping):
                    continue
                work = data.get("work")
                if isinstance(work, Mapping):
                    total = work.get("total")
                    if isinstance(total, (int, float)):
                        work_total += float(total)
        burn = 0.0
        slo = entry.get("slo")
        if isinstance(slo, Mapping):
            rate = slo.get("fast_burn_rate")
            if isinstance(rate, (int, float)):
                burn = float(rate)
        rows.append(
            (
                key,
                {
                    "queries": float(queries),
                    "errors": float(errors),
                    "error_rate": errors / queries if queries else 0.0,
                    "p50": p50,
                    "p99": p99,
                    "work": work_total,
                    "burn": burn,
                },
            )
        )
    rows.sort(key=lambda row: (-row[1]["p99"], -row[1]["work"], row[0]))
    return rows


def _short(template: str, width: int = 24) -> str:
    return template if len(template) <= width else template[: width - 1] + "…"


def render_top(data: Mapping[str, object], limit: int = 12) -> str:
    """One text frame of the top view from a published snapshot dict."""
    service = data.get("service")
    service = service if isinstance(service, Mapping) else {}
    insights = data.get("insights")
    insights = insights if isinstance(insights, Mapping) else {}

    def _fmt(value: object, pattern: str, missing: str = "-") -> str:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return missing
        return pattern.format(value)

    lines = [
        "hdqo top — per-template query insights",
        (
            f"queries={_fmt(service.get('queries'), '{:.0f}')}  "
            f"cache-hit={_fmt(service.get('cache_hit_rate'), '{:.1%}')}  "
            f"saturation={_fmt(service.get('saturation'), '{:.1%}')}  "
            f"shards={_fmt(service.get('shards'), '{:.0f}')}"
        ),
        "",
        f"{'TEMPLATE':<25} {'QUERIES':>8} {'ERR%':>6} "
        f"{'P50(ms)':>9} {'P99(ms)':>9} {'WORK':>12} {'BURN':>6}",
    ]
    rows = _template_rows(insights)
    for key, row in rows[:limit]:
        lines.append(
            f"{_short(key):<25} {row['queries']:>8.0f} "
            f"{row['error_rate']:>6.1%} {row['p50'] * 1000:>9.2f} "
            f"{row['p99'] * 1000:>9.2f} {row['work']:>12.0f} "
            f"{row['burn']:>6.2f}"
        )
    if not rows:
        lines.append("(no template traffic observed yet)")
    elif len(rows) > limit:
        lines.append(f"… and {len(rows) - limit} more template(s)")
    events = _recent_events(insights)
    if events:
        lines.append("")
        lines.append("recent events:")
        lines.extend(f"  {event}" for event in events)
    return "\n".join(lines)


def _recent_events(insights: Mapping[str, object], limit: int = 5) -> List[str]:
    slow_log = insights.get("slow_log")
    if not isinstance(slow_log, Mapping):
        return []
    events = slow_log.get("events")
    if not isinstance(events, list):
        return []
    rendered: List[str] = []
    for event in events[-limit:]:
        if not isinstance(event, Mapping):
            continue
        template = _short(str(event.get("template", "?")), 20)
        rendered.append(f"{event.get('kind', '?')} template={template}")
    return rendered


def run_top(
    path: str,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    stream: Optional[TextIO] = None,
    is_tty: Optional[bool] = None,
    sleep: Optional[Callable[[float], None]] = None,
) -> int:
    """Poll a published snapshot file and render the top view.

    On a TTY this refreshes in place every ``interval`` seconds until
    interrupted (or for ``iterations`` frames when given); otherwise it
    renders **one** plain-text frame and returns — the graceful
    degradation the ISSUE requires for piped/CI output.

    Returns 0 when at least one snapshot was rendered, 1 when the file
    never became readable.
    """
    import sys
    import time as _time

    out: TextIO = stream if stream is not None else sys.stdout
    tty = is_tty if is_tty is not None else out.isatty()
    pause = sleep if sleep is not None else _time.sleep
    frames = iterations if iterations is not None else (None if tty else 1)

    rendered_any = False
    frame = 0
    try:
        while True:
            data = load_snapshot_file(path)
            if data is not None:
                rendered_any = True
                prefix = _CLEAR if tty else ""
                out.write(prefix + render_top(data) + "\n")
                out.flush()
            elif not tty:
                out.write(f"hdqo top: no snapshot at {path}\n")
                out.flush()
                return 1
            frame += 1
            if frames is not None and frame >= frames:
                break
            pause(interval)
    except KeyboardInterrupt:
        pass
    return 0 if rendered_any else 1

"""Per-template query insights: histograms, slow log, SLOs, top, report.

The observability layer the drift/adaptation work needs: PR 2's metrics
say *the cluster* got slower; this package says **which query template**
got slower, **in which phase**, **when**, and keeps the evidence (slow
captures, burn rates, mergeable distributions) to prove it.

* :mod:`~repro.obs.insights.histogram` — mergeable log-bucketed
  streaming histograms (fixed memory, exact bucket counts);
* :mod:`~repro.obs.insights.slowlog` — bounded top-K latency outliers
  per template plus every typed-error/degradation event;
* :mod:`~repro.obs.insights.slo` — per-template SLO objectives with
  fast/slow burn-rate windows on the injected monotonic clock;
* :mod:`~repro.obs.insights.registry` — the per-process registry tying
  them together, with exact cross-shard snapshot merging;
* :mod:`~repro.obs.insights.top` — the live ``hdqo top`` terminal view;
* :mod:`~repro.obs.insights.report` — the offline ``hdqo report`` span
  analyzer with bench-baseline regression flags.

Everything is **zero work-unit cost when disabled**: pass
:data:`NULL_INSIGHTS` (the default everywhere) and every recording call
is a constant-time no-op.
"""

from repro.obs.insights.histogram import (
    DEFAULT_SCALE,
    LATENCY_RANGE,
    WORK_RANGE,
    StreamingHistogram,
    bucket_upper_bound,
    merge_snapshots,
    quantile_from_snapshot,
)
from repro.obs.insights.registry import (
    NULL_INSIGHTS,
    InsightsRegistry,
    NullInsights,
    merge_insights_snapshots,
    render_insights_prometheus,
)
from repro.obs.insights.report import (
    analyze_spans,
    check_baseline,
    load_span_records,
    render_report,
)
from repro.obs.insights.slo import (
    DEFAULT_SLO,
    SLOPolicy,
    SLOTracker,
    merge_slo_snapshots,
)
from repro.obs.insights.slowlog import SlowQueryLog, merge_slow_entries
from repro.obs.insights.top import (
    load_snapshot_file,
    publish_snapshot_file,
    render_top,
    run_top,
)

__all__ = [
    "StreamingHistogram",
    "merge_snapshots",
    "quantile_from_snapshot",
    "bucket_upper_bound",
    "DEFAULT_SCALE",
    "LATENCY_RANGE",
    "WORK_RANGE",
    "InsightsRegistry",
    "NullInsights",
    "NULL_INSIGHTS",
    "merge_insights_snapshots",
    "render_insights_prometheus",
    "SlowQueryLog",
    "merge_slow_entries",
    "SLOPolicy",
    "SLOTracker",
    "DEFAULT_SLO",
    "merge_slo_snapshots",
    "analyze_spans",
    "check_baseline",
    "load_span_records",
    "render_report",
    "render_top",
    "run_top",
    "load_snapshot_file",
    "publish_snapshot_file",
]

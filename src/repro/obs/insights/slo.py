"""Per-template SLO objectives with fast/slow burn-rate windows.

An :class:`SLOPolicy` states the objective — "``objective`` of queries
finish under ``threshold_seconds`` without a typed error" — and an
:class:`SLOTracker` counts each query as *good* or *bad* against it,
maintaining two sliding windows in the multiwindow-burn-rate style:

* the **fast** window (default 60 s) catches a sudden cliff — a misfired
  soft-width choice, a stats-drift re-plan gone wrong — within seconds;
* the **slow** window (default 600 s) confirms a sustained burn and
  filters one-off blips.

``burn rate = (bad / total) / (1 - objective)``: 1.0 means the error
budget is being spent exactly at the rate that exhausts it by the end of
the SLO period; a fast-window burn ≫ 1 with a slow-window burn > 1 is
the classic page condition.

Time comes **only** from the injected monotonic clock (default
:func:`time.monotonic`) — no wall clock anywhere, matching the repo's
no-wall-clock rule — and windows are bucketed at 1 s granularity into a
fixed ring, so memory is constant regardless of traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.lockwitness import make_lock

__all__ = ["SLOPolicy", "SLOTracker", "DEFAULT_SLO", "merge_slo_snapshots"]

Clock = Callable[[], float]


@dataclass(frozen=True)
class SLOPolicy:
    """One latency/error objective for a template population.

    Attributes:
        threshold_seconds: a query at or under this latency is *good*.
        objective: the target good fraction (e.g. 0.99 → a 1 % budget).
        fast_window_seconds: the fast burn-rate window.
        slow_window_seconds: the slow burn-rate window.
    """

    threshold_seconds: float = 0.5
    objective: float = 0.99
    fast_window_seconds: float = 60.0
    slow_window_seconds: float = 600.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("SLO objective must be strictly between 0 and 1")
        if self.threshold_seconds <= 0:
            raise ValueError("SLO threshold must be positive")
        if not 0 < self.fast_window_seconds <= self.slow_window_seconds:
            raise ValueError(
                "windows must satisfy 0 < fast <= slow"
            )


DEFAULT_SLO = SLOPolicy()
"""99 % under 500 ms, judged over 60 s / 600 s windows."""


class _Window:
    """A fixed ring of per-second (good, bad) buckets."""

    def __init__(self, span_seconds: float) -> None:
        self.size = max(1, int(span_seconds))
        self.good = [0] * self.size
        self.bad = [0] * self.size
        self.stamps = [-1] * self.size  # absolute second each slot holds

    def add(self, second: int, good: int, bad: int) -> None:
        slot = second % self.size
        if self.stamps[slot] != second:
            self.stamps[slot] = second
            self.good[slot] = 0
            self.bad[slot] = 0
        self.good[slot] += good
        self.bad[slot] += bad

    def totals(self, now_second: int) -> Tuple[int, int]:
        oldest = now_second - self.size + 1
        good = bad = 0
        for slot in range(self.size):
            if self.stamps[slot] >= oldest:
                good += self.good[slot]
                bad += self.bad[slot]
        return good, bad


class SLOTracker:
    """Counts good/bad outcomes for one template against one policy.

    Thread-safe; all timestamps come from the injected monotonic clock.
    Lifetime totals never reset; windowed burn rates age out by bucket.
    """

    def __init__(
        self,
        policy: SLOPolicy = DEFAULT_SLO,
        clock: Clock = time.monotonic,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._lock = make_lock("SLOTracker._lock")
        self._good_total = 0
        self._bad_total = 0
        self._fast = _Window(policy.fast_window_seconds)
        self._slow = _Window(policy.slow_window_seconds)

    def record(self, seconds: float, ok: bool) -> None:
        """One query outcome: latency + did it avoid a typed error."""
        good = ok and seconds <= self.policy.threshold_seconds
        second = int(self._clock())
        with self._lock:
            if good:
                self._good_total += 1
            else:
                self._bad_total += 1
            self._fast.add(second, int(good), int(not good))
            self._slow.add(second, int(good), int(not good))

    def _burn(self, good: int, bad: int) -> float:
        total = good + bad
        if not total:
            return 0.0
        budget = 1.0 - self.policy.objective
        return round((bad / total) / budget, 6)

    def snapshot(self) -> Dict[str, object]:
        """Lifetime totals + windowed burn rates, plain data."""
        second = int(self._clock())
        with self._lock:
            fast_good, fast_bad = self._fast.totals(second)
            slow_good, slow_bad = self._slow.totals(second)
            good_total, bad_total = self._good_total, self._bad_total
        return {
            "threshold_seconds": self.policy.threshold_seconds,
            "objective": self.policy.objective,
            "good": good_total,
            "bad": bad_total,
            "fast_burn_rate": self._burn(fast_good, fast_bad),
            "slow_burn_rate": self._burn(slow_good, slow_bad),
            "fast_window_seconds": self.policy.fast_window_seconds,
            "slow_window_seconds": self.policy.slow_window_seconds,
        }


def merge_slo_snapshots(
    snapshots: List[Dict[str, object]],
) -> Optional[Dict[str, object]]:
    """Cluster view of one template's SLO from per-shard snapshots.

    Lifetime good/bad counts add exactly.  Windowed burn rates cannot be
    merged from bucket data (monotonic clocks do not compare across
    processes), so the merged burn rates are the **worst shard's** —
    conservative, and the right paging signal: a template burning on any
    shard is burning.
    """
    present = [s for s in snapshots if s]
    if not present:
        return None
    first = present[0]
    merged: Dict[str, object] = dict(first)
    merged["good"] = sum(int(_num(s.get("good"))) for s in present)
    merged["bad"] = sum(int(_num(s.get("bad"))) for s in present)
    merged["fast_burn_rate"] = max(
        _num(s.get("fast_burn_rate")) for s in present
    )
    merged["slow_burn_rate"] = max(
        _num(s.get("slow_burn_rate")) for s in present
    )
    return merged


def _num(value: object) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0

"""Mergeable log-bucketed streaming histograms (fixed memory, exact counts).

The distribution summary behind every per-template insight: a value ``v``
lands in bucket ``floor(scale * log2(v))`` — *deterministically*, a pure
function of the value — so two histograms fed the same observations, in
any order, on any number of processes, hold byte-identical bucket counts.
That determinism is what makes cross-shard aggregation exact: merging is
pointwise addition of sparse bucket counts, associative and commutative,
with no resampling and no approximation error beyond the fixed relative
bucket width (``2^(1/scale) - 1``, ~9 % at the default scale of 8).

Memory is fixed: bucket indexes clamp to ``[lo, hi]`` (values outside the
range count into the boundary buckets), so a histogram never holds more
than ``hi - lo + 2`` counters regardless of traffic volume.

Snapshots are plain dicts of primitives — pickle- and JSON-safe — and the
module-level :func:`merge_snapshots` / :func:`quantile_from_snapshot`
operate on the snapshot shape directly, so shard workers ship snapshots
across the process boundary and the router merges them without ever
rebuilding live objects.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.lockwitness import make_lock

__all__ = [
    "StreamingHistogram",
    "Snapshot",
    "merge_snapshots",
    "quantile_from_snapshot",
    "bucket_upper_bound",
    "DEFAULT_SCALE",
    "LATENCY_RANGE",
    "WORK_RANGE",
]

Number = Union[int, float]
Snapshot = Dict[str, object]

#: Buckets per doubling of the value; 8 gives ~9 % relative bucket width.
DEFAULT_SCALE = 8

#: Index clamp for seconds-scale latencies: ~1 µs .. ~4000 s at scale 8.
LATENCY_RANGE: Tuple[int, int] = (-160, 96)

#: Index clamp for work-unit counts: 1 .. ~10^12 units at scale 8.
WORK_RANGE: Tuple[int, int] = (0, 320)

#: Index reserved for non-positive observations (log undefined there).
_ZERO_INDEX_OFFSET = 1


def _bucket_index(value: float, scale: int, lo: int, hi: int) -> int:
    """The clamped bucket index of ``value`` — pure and deterministic."""
    if value <= 0.0:
        return lo - _ZERO_INDEX_OFFSET
    index = math.floor(scale * math.log2(value))
    if index < lo:
        return lo
    if index > hi:
        return hi
    return index


def bucket_upper_bound(index: int, scale: int) -> float:
    """The (exclusive) upper value boundary of bucket ``index``."""
    return round(2.0 ** ((index + 1) / scale), 9)


class StreamingHistogram:
    """A thread-safe log-bucketed histogram with exact sparse counts.

    Args:
        scale: buckets per doubling (resolution; must match to merge).
        index_range: ``(lo, hi)`` bucket-index clamp bounding memory.
    """

    def __init__(
        self,
        scale: int = DEFAULT_SCALE,
        index_range: Tuple[int, int] = LATENCY_RANGE,
    ) -> None:
        if scale < 1:
            raise ValueError("histogram scale must be >= 1")
        lo, hi = index_range
        if lo > hi:
            raise ValueError(f"invalid index range: {index_range}")
        self.scale = scale
        self.lo = lo
        self.hi = hi
        self._lock = make_lock("StreamingHistogram._lock")
        self._buckets: Dict[int, int] = {}
        self._count = 0
        # The running total is an exact fixed-point integer (nano units):
        # integer addition is associative, so a merged total is
        # byte-identical to a single-process run — float accumulation
        # differs in the last ulp depending on summation order.
        self._total_ns = 0
        self._minimum: Optional[float] = None
        self._maximum: Optional[float] = None

    # -- recording -------------------------------------------------------

    def observe(self, value: Number) -> None:
        v = float(value)
        index = _bucket_index(v, self.scale, self.lo, self.hi)
        with self._lock:
            self._buckets[index] = self._buckets.get(index, 0) + 1
            self._count += 1
            self._total_ns += round(v * 1e9)
            if self._minimum is None or v < self._minimum:
                self._minimum = v
            if self._maximum is None or v > self._maximum:
                self._maximum = v

    # -- introspection ---------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total_ns / 1e9

    def quantile(self, q: float) -> float:
        """The upper bound of the bucket holding the q-th observation.

        Deterministic given the bucket counts, so a merged histogram
        reports exactly the quantile a single-process run would.
        Returns 0.0 on an empty histogram.
        """
        return quantile_from_snapshot(self.snapshot(), q)

    # -- merging ---------------------------------------------------------

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram (same scale/range) into this one."""
        self.merge_snapshot(other.snapshot())

    def merge_snapshot(self, snap: Mapping[str, object]) -> None:
        """Fold a snapshot dict (same scale/range) into this histogram."""
        _check_compatible(self.scale, self.lo, self.hi, snap)
        buckets = snap["buckets"]
        assert isinstance(buckets, Mapping)
        count = snap["count"]
        assert isinstance(count, int)
        total_ns = snap.get("total_ns")
        if not isinstance(total_ns, int):
            total = snap.get("total")
            assert isinstance(total, (int, float))
            total_ns = round(float(total) * 1e9)
        minimum = snap.get("min")
        maximum = snap.get("max")
        with self._lock:
            for key, n in buckets.items():
                assert isinstance(n, int)
                index = int(key)
                self._buckets[index] = self._buckets.get(index, 0) + n
            self._count += count
            self._total_ns += total_ns
            if isinstance(minimum, (int, float)) and (
                self._minimum is None or minimum < self._minimum
            ):
                self._minimum = float(minimum)
            if isinstance(maximum, (int, float)) and (
                self._maximum is None or maximum > self._maximum
            ):
                self._maximum = float(maximum)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """A picklable/JSON-safe dict; the wire format of this histogram."""
        with self._lock:
            return {
                "scale": self.scale,
                "lo": self.lo,
                "hi": self.hi,
                "count": self._count,
                "total": round(self._total_ns / 1e9, 9),
                "total_ns": self._total_ns,
                "min": (
                    round(self._minimum, 9)
                    if self._minimum is not None
                    else None
                ),
                "max": (
                    round(self._maximum, 9)
                    if self._maximum is not None
                    else None
                ),
                "buckets": {
                    str(index): self._buckets[index]
                    for index in sorted(self._buckets)
                },
            }

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, object]) -> "StreamingHistogram":
        scale, lo, hi = snap["scale"], snap["lo"], snap["hi"]
        assert (
            isinstance(scale, int) and isinstance(lo, int) and isinstance(hi, int)
        )
        histogram = cls(scale=scale, index_range=(lo, hi))
        histogram.merge_snapshot(snap)
        return histogram

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"StreamingHistogram(scale={self.scale}, "
                f"count={self._count}, buckets={len(self._buckets)})"
            )


def _check_compatible(
    scale: int, lo: int, hi: int, snap: Mapping[str, object]
) -> None:
    if snap.get("scale") != scale or snap.get("lo") != lo or snap.get("hi") != hi:
        raise ValueError(
            f"cannot merge histograms with different geometry: "
            f"scale/lo/hi ({scale},{lo},{hi}) vs "
            f"({snap.get('scale')},{snap.get('lo')},{snap.get('hi')})"
        )


def merge_snapshots(snapshots: Sequence[Mapping[str, object]]) -> Snapshot:
    """One merged snapshot from N snapshot dicts (associative, exact).

    The shard-aggregation primitive: bucket counts add pointwise, totals
    add, extrema take min/max over populated inputs.  Raises on geometry
    mismatches (shards run identical code, so a mismatch is a bug).
    """
    present = [s for s in snapshots if s]
    if not present:
        return {}
    first = present[0]
    scale, lo, hi = first["scale"], first["lo"], first["hi"]
    assert isinstance(scale, int) and isinstance(lo, int) and isinstance(hi, int)
    merged = StreamingHistogram(scale=scale, index_range=(lo, hi))
    for snap in present:
        merged.merge_snapshot(snap)
    return merged.snapshot()


def quantile_from_snapshot(snap: Mapping[str, object], q: float) -> float:
    """The q-th quantile (bucket upper bound) of a snapshot dict.

    Nearest-rank over the bucket counts; exact-value fast paths: the
    minimum for ranks in the first bucket region is not tracked per
    bucket, so the result is always the bucket's upper boundary — a
    deterministic, merge-stable over-estimate within one bucket width.
    Returns 0.0 on an empty snapshot.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not snap:
        return 0.0
    count = snap.get("count")
    buckets = snap.get("buckets")
    scale = snap.get("scale")
    if not isinstance(count, int) or count <= 0:
        return 0.0
    assert isinstance(buckets, Mapping) and isinstance(scale, int)
    rank = max(1, math.ceil(q * count))
    seen = 0
    indexes: List[int] = sorted(int(key) for key in buckets)
    for index in indexes:
        n = buckets[str(index)]
        assert isinstance(n, int)
        seen += n
        if seen >= rank:
            lo = snap.get("lo")
            if isinstance(lo, int) and index < lo:
                return 0.0  # the non-positive-values bucket
            return bucket_upper_bound(index, scale)
    return bucket_upper_bound(indexes[-1], scale) if indexes else 0.0

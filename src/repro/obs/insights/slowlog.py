"""A bounded slow-query log: top-K latency outliers plus every event.

Two retention policies share one structure:

* **outliers** — per template, the K slowest queries by wall-clock
  latency (a min-heap on latency, so admission is O(log K) and the
  *decision* — :meth:`SlowQueryLog.qualifies` — is an O(1) threshold
  check, letting callers defer expensive capture work (EXPLAIN text,
  span subtrees) until a query is known to qualify);
* **events** — every typed-error and degradation event, in arrival
  order, bounded by ``max_events`` (oldest dropped first), because a
  regression's first symptom is usually an error burst, not a latency
  tail.

Entries are plain dicts of primitives (pickle-/JSON-safe), so snapshots
cross the shard process boundary unchanged and merge by re-ranking.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.analysis.lockwitness import make_lock

__all__ = ["SlowQueryLog", "merge_slow_entries"]

Entry = Dict[str, object]


class SlowQueryLog:
    """Bounded per-template top-K outliers + a bounded event ring.

    Args:
        top_k: slowest entries retained per template.
        max_events: error/degradation events retained (newest win).
    """

    def __init__(self, top_k: int = 8, max_events: int = 256) -> None:
        if top_k < 1:
            raise ValueError("slow log needs top_k >= 1")
        self.top_k = top_k
        self.max_events = max_events
        self._lock = make_lock("SlowQueryLog._lock")
        # template -> min-heap of (seconds, tiebreak, entry)
        self._outliers: Dict[str, List[Tuple[float, int, Entry]]] = {}
        self._events: Deque[Entry] = deque(maxlen=max_events)
        self._tiebreak = itertools.count()

    # -- outliers --------------------------------------------------------

    def qualifies(self, template: str, seconds: float) -> bool:
        """Would a query this slow enter the template's top-K? (cheap)"""
        with self._lock:
            heap = self._outliers.get(template)
            if heap is None or len(heap) < self.top_k:
                return True
            return seconds > heap[0][0]

    def offer(
        self,
        template: str,
        seconds: float,
        payload: Callable[[], Entry],
    ) -> bool:
        """Admit a query if it ranks; ``payload`` runs only on admission.

        Returns True when the entry was retained.  The payload callable
        builds the (potentially expensive) capture — plan text, span
        subtree — so queries that do not rank cost nothing beyond the
        threshold check.
        """
        if not self.qualifies(template, seconds):
            return False
        entry = dict(payload())
        entry["seconds"] = round(seconds, 9)
        entry["template"] = template
        with self._lock:
            heap = self._outliers.setdefault(template, [])
            item = (seconds, next(self._tiebreak), entry)
            if len(heap) < self.top_k:
                heapq.heappush(heap, item)
                return True
            if seconds > heap[0][0]:
                heapq.heapreplace(heap, item)
                return True
        return False

    # -- events ----------------------------------------------------------

    def record_event(
        self,
        template: str,
        kind: str,
        detail: Optional[Mapping[str, object]] = None,
    ) -> None:
        """One typed-error or degradation event (bounded, newest win)."""
        entry: Entry = {"template": template, "kind": kind}
        if detail:
            entry.update(detail)
        with self._lock:
            self._events.append(entry)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """``{"outliers": {template: [entry...]}, "events": [entry...]}``.

        Outliers are sorted slowest-first; everything is plain data.
        """
        with self._lock:
            outliers = {
                template: [
                    dict(entry)
                    for _, _, entry in sorted(
                        heap, key=lambda item: (-item[0], item[1])
                    )
                ]
                for template, heap in sorted(self._outliers.items())
            }
            events = [dict(entry) for entry in self._events]
        return {"outliers": outliers, "events": events}


def merge_slow_entries(
    per_source: List[List[Entry]], top_k: int
) -> List[Entry]:
    """Merge per-shard outlier lists for one template: re-rank, truncate.

    Entries carry their own ``seconds``; the merged list is the global
    top-K, slowest first — exactly what a single process would retain.
    """
    merged: List[Entry] = [
        entry for entries in per_source for entry in entries
    ]

    def latency(entry: Entry) -> float:
        seconds = entry.get("seconds", 0.0)
        return float(seconds) if isinstance(seconds, (int, float)) else 0.0

    merged.sort(key=latency, reverse=True)
    return merged[:top_k]

"""``hdqo report`` — offline trace analytics over exported span JSONL.

The post-hoc twin of the live registry: given a ``spans.jsonl`` exported
by the Tracer (the CI serving artifact, or any ad-hoc capture), the
analyzer reconstructs the per-template latency/work distributions the
live :class:`~repro.obs.insights.registry.InsightsRegistry` would have
held — by feeding the span durations and work-unit deltas through the
**same** :class:`~repro.obs.insights.histogram.StreamingHistogram` — and
checks two things:

* **consistency** — the records pass
  :func:`repro.obs.tracing.validate_span_records`, parse as JSON, and
  the serving spans carry template attribution; any problem here is a
  broken trace pipeline and fails the CI step;
* **regressions** — with ``--baseline BENCH_*.json``, deterministic
  signals from the trace are compared against the recorded bench
  trajectory: an error burst where the baseline recorded none, lost
  plan-cache amortization, and a p99 blow-up beyond a generous tolerance
  factor (wall-clock comparisons across machines need slack; the factor
  is configurable and sized so an honest run never trips it while a
  seeded regression — a 10×+ tail — always does).

Phase attribution: ``serve.plan`` spans are the **decompose** phase
(work = the ``plan_units`` tag, the deterministic search effort),
``decompose.optimize`` spans roll up to the enclosing ``serve.plan``'s
template as the **optimize** phase, and ``serve.execute`` spans are the
**execute** phase (work = the span's meter delta).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.insights.histogram import (
    LATENCY_RANGE,
    WORK_RANGE,
    StreamingHistogram,
    quantile_from_snapshot,
)
from repro.obs.tracing import validate_span_records

__all__ = [
    "load_span_records",
    "analyze_spans",
    "check_baseline",
    "render_report",
    "DEFAULT_TOLERANCE",
]

#: Allowed ratio between the trace's reconstructed p99 and the baseline's
#: recorded p99 before a latency regression is flagged.  Wall-clock
#: numbers cross machines here, so the bar is deliberately loose — an
#: honest run sits far under it, a seeded tail blows far past it.
DEFAULT_TOLERANCE = 10.0

Record = Dict[str, Any]


def load_span_records(path: str) -> Tuple[List[Record], List[str]]:
    """Parse a span JSONL file; returns ``(records, problems)``."""
    records: List[Record] = []
    problems: List[str] = []
    try:
        with open(path) as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    problems.append(f"line {number}: invalid JSON ({exc})")
                    continue
                if not isinstance(record, dict) or "span_id" not in record:
                    problems.append(f"line {number}: not a span record")
                    continue
                records.append(record)
    except OSError as exc:
        problems.append(f"cannot read {path}: {exc}")
    return records, problems


def _template_of(record: Record) -> Optional[str]:
    tags = record.get("tags")
    if isinstance(tags, dict):
        template = tags.get("template")
        if isinstance(template, str) and template:
            return template
        query = tags.get("query")
        if isinstance(query, str) and query:
            return query
    return None


class _Phase:
    def __init__(self) -> None:
        self.latency = StreamingHistogram(index_range=LATENCY_RANGE)
        self.work = StreamingHistogram(index_range=WORK_RANGE)


class _Template:
    def __init__(self) -> None:
        self.phases: Dict[str, _Phase] = {}
        self.queries = 0
        self.errors = 0
        self.cache_hits = 0
        self.plans = 0

    def phase(self, name: str) -> _Phase:
        found = self.phases.get(name)
        if found is None:
            found = self.phases[name] = _Phase()
        return found


def analyze_spans(records: List[Record]) -> Dict[str, Any]:
    """Reconstruct per-template phase distributions from span records.

    Returns ``{"templates": {template: {"queries", "errors",
    "cache_hits", "plans", "phases": {phase: {"latency", "work"}}}},
    "spans", "problems"}`` — the phase entries are
    :class:`StreamingHistogram` snapshots, directly comparable (and
    mergeable) with live registry exports.
    """
    # An offline file carries no retention metadata, so an unknown parent
    # may be a legitimately dropped span — dropped=1 keeps every other
    # check (duplicates, negative durations/work) while skipping that one.
    problems = list(validate_span_records(records, dropped=1))
    by_id = {record.get("span_id"): record for record in records}
    templates: Dict[str, _Template] = {}

    def state(template: str) -> _Template:
        found = templates.get(template)
        if found is None:
            found = templates[template] = _Template()
        return found

    def ancestor_template(record: Record) -> Optional[str]:
        seen = 0
        current: Optional[Record] = record
        while current is not None and seen < 64:
            seen += 1
            if current.get("name") in ("serve.plan", "serve.execute"):
                return _template_of(current)
            parent_id = current.get("parent_id")
            current = by_id.get(parent_id) if parent_id is not None else None
        return None

    serving = [
        record
        for record in records
        if record.get("name") in ("serve.plan", "serve.execute")
    ]
    untagged = sum(1 for record in serving if _template_of(record) is None)
    if serving and untagged:
        problems.append(
            f"{untagged} of {len(serving)} serving span(s) lack template "
            f"attribution (no 'template'/'query' tag)"
        )

    for record in records:
        name = record.get("name")
        duration = record.get("duration")
        work_units = record.get("work_units")
        duration = float(duration) if isinstance(duration, (int, float)) else 0.0
        work = int(work_units) if isinstance(work_units, int) else 0
        tags = record.get("tags")
        tags = tags if isinstance(tags, dict) else {}
        if name == "serve.plan":
            template = _template_of(record)
            if template is None:
                continue
            entry = state(template)
            plan_units = tags.get("plan_units")
            phase = entry.phase("decompose")
            phase.latency.observe(duration)
            phase.work.observe(
                int(plan_units) if isinstance(plan_units, int) else 0
            )
            entry.plans += 1
            if tags.get("cache_hit") is True:
                entry.cache_hits += 1
            if "error" in tags:
                entry.errors += 1
        elif name == "serve.execute":
            template = _template_of(record)
            if template is None:
                continue
            entry = state(template)
            phase = entry.phase("execute")
            phase.latency.observe(duration)
            phase.work.observe(work)
            entry.queries += 1
            if "error" in tags:
                entry.errors += 1
        elif name == "decompose.optimize":
            template = ancestor_template(record)
            if template is None:
                continue
            phase = state(template).phase("optimize")
            phase.latency.observe(duration)
            phase.work.observe(work)

    return {
        "spans": len(records),
        "problems": problems,
        "templates": {
            template: {
                "queries": entry.queries,
                "errors": entry.errors,
                "cache_hits": entry.cache_hits,
                "plans": entry.plans,
                "phases": {
                    phase_name: {
                        "latency": phase.latency.snapshot(),
                        "work": phase.work.snapshot(),
                    }
                    for phase_name, phase in sorted(entry.phases.items())
                },
            }
            for template, entry in sorted(templates.items())
        },
    }


def _overall_quantile(
    analysis: Mapping[str, Any], phase: str, q: float
) -> float:
    """The q-th quantile of one phase's latency across all templates."""
    from repro.obs.insights.histogram import merge_snapshots

    snapshots: List[Mapping[str, object]] = []
    templates = analysis.get("templates")
    if isinstance(templates, Mapping):
        for entry in templates.values():
            if not isinstance(entry, Mapping):
                continue
            phases = entry.get("phases")
            if not isinstance(phases, Mapping):
                continue
            data = phases.get(phase)
            if isinstance(data, Mapping):
                latency = data.get("latency")
                if isinstance(latency, Mapping) and latency:
                    snapshots.append(latency)
    merged = merge_snapshots(snapshots)
    return quantile_from_snapshot(merged, q) if merged else 0.0


def check_baseline(
    analysis: Mapping[str, Any],
    baseline: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Regression flags (and non-fatal warnings) vs a bench record.

    Returns ``(flags, warnings)``.  Flags are regressions; warnings note
    baseline-side quirks (unstamped record, unhealthy baseline run).
    """
    from repro.bench.record import validate_record

    flags: List[str] = []
    warnings: List[str] = []

    schema_problems = validate_record(baseline, require_stamp=False)
    if schema_problems:
        warnings.extend(f"baseline schema: {p}" for p in schema_problems)
    if "recorded_at" not in baseline or "git_sha" not in baseline:
        warnings.append(
            "baseline record is unstamped (no git_sha/recorded_at); "
            "re-record with scripts/bench_record.py"
        )

    templates = analysis.get("templates")
    templates = templates if isinstance(templates, Mapping) else {}
    total_queries = sum(
        entry.get("queries", 0)
        for entry in templates.values()
        if isinstance(entry, Mapping)
    )
    total_errors = sum(
        entry.get("errors", 0)
        for entry in templates.values()
        if isinstance(entry, Mapping)
    )
    total_hits = sum(
        entry.get("cache_hits", 0)
        for entry in templates.values()
        if isinstance(entry, Mapping)
    )

    sharded = baseline.get("sharded")
    sharded = sharded if isinstance(sharded, Mapping) else {}
    baseline_errors = sharded.get("errors")
    if (
        isinstance(baseline_errors, int)
        and baseline_errors == 0
        and isinstance(total_errors, int)
        and total_errors > 0
    ):
        flags.append(
            f"error regression: trace has {total_errors} errored serving "
            f"span(s); baseline recorded 0 errors"
        )

    baseline_hits = sharded.get("cache_hits_total")
    if (
        isinstance(baseline_hits, int)
        and baseline_hits > 0
        and isinstance(total_queries, int)
        and total_queries > 0
        and total_hits == 0
    ):
        flags.append(
            "cache amortization lost: baseline recorded "
            f"{baseline_hits} plan-cache hits; trace shows none"
        )

    baseline_p99_ms = sharded.get("latency_p99_ms")
    if isinstance(baseline_p99_ms, (int, float)) and baseline_p99_ms > 0:
        trace_p99_ms = _overall_quantile(analysis, "execute", 0.99) * 1000.0
        if trace_p99_ms > tolerance * float(baseline_p99_ms):
            flags.append(
                f"latency regression: execute p99 {trace_p99_ms:.1f} ms "
                f"exceeds {tolerance:g}x the baseline p99 "
                f"{float(baseline_p99_ms):.1f} ms"
            )

    parity = baseline.get("parity")
    if isinstance(parity, Mapping) and parity.get("identical") is False:
        warnings.append("baseline run itself failed parity; comparisons weak")
    return flags, warnings


def render_report(
    analysis: Mapping[str, Any],
    flags: Optional[List[str]] = None,
    warnings: Optional[List[str]] = None,
) -> str:
    """Human-readable report text for an analysis (+ baseline results)."""
    template_count = analysis.get("templates")
    template_count = (
        len(template_count) if isinstance(template_count, Mapping) else 0
    )
    lines = [
        f"hdqo report — {analysis.get('spans', 0)} span(s), "
        f"{template_count} template(s)",
        "",
        f"{'TEMPLATE':<25} {'PHASE':<10} {'N':>6} {'P50(ms)':>9} "
        f"{'P99(ms)':>9} {'WORK-P50':>9} {'WORK-TOT':>10}",
    ]
    templates = analysis.get("templates")
    templates = templates if isinstance(templates, Mapping) else {}
    for template in sorted(str(key) for key in templates):
        entry = templates[template]
        if not isinstance(entry, Mapping):
            continue
        phases = entry.get("phases")
        phases = phases if isinstance(phases, Mapping) else {}
        shown = template if len(template) <= 24 else template[:23] + "…"
        for phase_name in sorted(str(p) for p in phases):
            data = phases[phase_name]
            if not isinstance(data, Mapping):
                continue
            latency = data.get("latency")
            work = data.get("work")
            latency = latency if isinstance(latency, Mapping) else {}
            work = work if isinstance(work, Mapping) else {}
            count = latency.get("count")
            count = count if isinstance(count, int) else 0
            work_total = work.get("total")
            work_total = (
                float(work_total)
                if isinstance(work_total, (int, float))
                else 0.0
            )
            lines.append(
                f"{shown:<25} {phase_name:<10} {count:>6} "
                f"{quantile_from_snapshot(latency, 0.5) * 1000:>9.2f} "
                f"{quantile_from_snapshot(latency, 0.99) * 1000:>9.2f} "
                f"{quantile_from_snapshot(work, 0.5):>9.0f} "
                f"{work_total:>10.0f}"
            )
            shown = ""
    problems = analysis.get("problems")
    if isinstance(problems, list) and problems:
        lines.append("")
        lines.append("TRACE PROBLEMS:")
        lines.extend(f"  {problem}" for problem in problems)
    if warnings:
        lines.append("")
        lines.extend(f"warning: {warning}" for warning in warnings)
    if flags:
        lines.append("")
        lines.append("REGRESSIONS FLAGGED:")
        lines.extend(f"  {flag}" for flag in flags)
    elif flags is not None:
        lines.append("")
        lines.append("baseline comparison: clean")
    return "\n".join(lines)

"""The per-template insights registry: histograms + slow log + SLO.

One :class:`InsightsRegistry` per serving process collects, keyed by the
**canonical template fingerprint** (the plan-cache/routing key, so every
insight lines up with cache and shard behaviour) and by **phase**
(``decompose`` / ``optimize`` / ``execute``):

* a latency :class:`~repro.obs.insights.histogram.StreamingHistogram`
  and a work-unit histogram per (template, phase) — fixed memory,
  exactly mergeable across shards;
* per-template query/error counters and degradation-event counts;
* the bounded :class:`~repro.obs.insights.slowlog.SlowQueryLog`;
* a per-template :class:`~repro.obs.insights.slo.SLOTracker` with
  fast/slow burn-rate windows.

**Zero cost when disabled** (the PR 2 contract): the process default is
:data:`NULL_INSIGHTS`, whose every method is a constant no-op — no
allocation, no locking, no clock reads, and never a work-unit charge
(the registry never touches a :class:`~repro.metering.WorkMeter` at
all).  Instrumented code holds one reference and branches on
``insights.enabled`` exactly once per call site.

Snapshots are plain nested dicts of primitives — pickle-safe — merged
across shard processes by :func:`merge_insights_snapshots`, which is
exact for histograms and counters (sums), re-ranks the slow log, and is
conservative (worst-shard) for windowed burn rates.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.lockwitness import make_lock
from repro.obs.insights.histogram import (
    LATENCY_RANGE,
    WORK_RANGE,
    StreamingHistogram,
    merge_snapshots,
    quantile_from_snapshot,
)
from repro.obs.insights.slo import (
    DEFAULT_SLO,
    Clock,
    SLOPolicy,
    SLOTracker,
    merge_slo_snapshots,
)
from repro.obs.insights.slowlog import Entry, SlowQueryLog, merge_slow_entries

__all__ = [
    "InsightsRegistry",
    "NullInsights",
    "NULL_INSIGHTS",
    "PHASES",
    "merge_insights_snapshots",
    "render_insights_prometheus",
]

#: The canonical phase keys (free-form keys are accepted too).
PHASES: Tuple[str, ...] = ("decompose", "optimize", "execute")

#: Bound on distinct templates tracked; beyond it, new templates fold
#: into one overflow key so memory stays fixed under template churn.
_MAX_TEMPLATES = 512

_OVERFLOW_KEY = "(overflow)"


class _TemplateState:
    """Everything tracked for one template (created lazily)."""

    def __init__(self, policy: SLOPolicy, clock: Clock) -> None:
        self.phase_latency: Dict[str, StreamingHistogram] = {}
        self.phase_work: Dict[str, StreamingHistogram] = {}
        self.queries = 0
        self.errors = 0
        self.events: Dict[str, int] = {}
        self.slo = SLOTracker(policy, clock=clock)


class InsightsRegistry:
    """Per-template streaming telemetry for one serving process.

    Args:
        slow_k: slowest queries retained per template.
        max_events: error/degradation events retained.
        slo: the SLO policy applied to every template.
        clock: monotonic clock injected into the SLO windows (tests
            pass a fake; production uses :func:`time.monotonic`).
        max_templates: distinct templates tracked before folding into
            an overflow bucket.
    """

    enabled = True

    def __init__(
        self,
        slow_k: int = 8,
        max_events: int = 256,
        slo: SLOPolicy = DEFAULT_SLO,
        clock: Clock = time.monotonic,
        max_templates: int = _MAX_TEMPLATES,
    ) -> None:
        self.slow_k = slow_k
        self.slo_policy = slo
        self._clock = clock
        self.max_templates = max_templates
        self.slow_log = SlowQueryLog(top_k=slow_k, max_events=max_events)
        self._lock = make_lock("InsightsRegistry._lock")
        self._templates: Dict[str, _TemplateState] = {}

    # -- template bookkeeping -------------------------------------------

    def _state(self, template: str) -> _TemplateState:
        """The template's state (caller holds no lock; we take it)."""
        with self._lock:
            state = self._templates.get(template)
            if state is None:
                if (
                    len(self._templates) >= self.max_templates
                    and template != _OVERFLOW_KEY
                ):
                    return self._state_overflow_locked()
                state = _TemplateState(self.slo_policy, self._clock)
                self._templates[template] = state
            return state

    def _state_overflow_locked(self) -> _TemplateState:
        state = self._templates.get(_OVERFLOW_KEY)
        if state is None:
            state = _TemplateState(self.slo_policy, self._clock)
            self._templates[_OVERFLOW_KEY] = state
        return state

    # -- recording -------------------------------------------------------

    def record_phase(
        self, template: str, phase: str, seconds: float, work: int = 0
    ) -> None:
        """One phase observation: wall-clock seconds + work units."""
        state = self._state(template)
        with self._lock:
            latency = state.phase_latency.get(phase)
            if latency is None:
                latency = StreamingHistogram(index_range=LATENCY_RANGE)
                state.phase_latency[phase] = latency
            work_hist = state.phase_work.get(phase)
            if work_hist is None:
                work_hist = StreamingHistogram(index_range=WORK_RANGE)
                state.phase_work[phase] = work_hist
        latency.observe(seconds)
        work_hist.observe(work)

    def record_outcome(
        self, template: str, seconds: float, ok: bool
    ) -> None:
        """One finished query: feeds counters and the SLO windows."""
        state = self._state(template)
        with self._lock:
            state.queries += 1
            if not ok:
                state.errors += 1
        state.slo.record(seconds, ok)

    def record_event(
        self,
        template: str,
        kind: str,
        detail: Optional[Mapping[str, object]] = None,
    ) -> None:
        """One degradation/typed-error event (counted + slow-logged)."""
        state = self._state(template)
        with self._lock:
            state.events[kind] = state.events.get(kind, 0) + 1
        self.slow_log.record_event(template, kind, detail)

    def qualifies_slow(self, template: str, seconds: float) -> bool:
        """Cheap pre-check before building an expensive slow capture."""
        return self.slow_log.qualifies(template, seconds)

    def record_slow(
        self, template: str, seconds: float, payload: Entry
    ) -> bool:
        """Offer a fully-built capture to the template's top-K."""
        return self.slow_log.offer(template, seconds, lambda: payload)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The full registry as a picklable nested dict.

        ``{"slow_k", "templates": {key: {"queries", "errors", "events",
        "phases": {phase: {"latency", "work"}}, "slo"}}, "slow_log"}``
        """
        with self._lock:
            items = sorted(self._templates.items())
        templates: Dict[str, object] = {}
        for template, state in items:
            with self._lock:
                phases = sorted(
                    set(state.phase_latency) | set(state.phase_work)
                )
                queries, errors = state.queries, state.errors
                events = dict(state.events)
            templates[template] = {
                "queries": queries,
                "errors": errors,
                "events": events,
                "phases": {
                    phase: {
                        "latency": (
                            state.phase_latency[phase].snapshot()
                            if phase in state.phase_latency
                            else {}
                        ),
                        "work": (
                            state.phase_work[phase].snapshot()
                            if phase in state.phase_work
                            else {}
                        ),
                    }
                    for phase in phases
                },
                "slo": state.slo.snapshot(),
            }
        return {
            "slow_k": self.slow_k,
            "templates": templates,
            "slow_log": self.slow_log.snapshot(),
        }


class NullInsights:
    """The disabled registry: every call is a constant-time no-op."""

    enabled = False

    def record_phase(
        self, template: str, phase: str, seconds: float, work: int = 0
    ) -> None:
        return None

    def record_outcome(
        self, template: str, seconds: float, ok: bool
    ) -> None:
        return None

    def record_event(
        self,
        template: str,
        kind: str,
        detail: Optional[Mapping[str, object]] = None,
    ) -> None:
        return None

    def qualifies_slow(self, template: str, seconds: float) -> bool:
        return False

    def record_slow(
        self, template: str, seconds: float, payload: Entry
    ) -> bool:
        return False

    def snapshot(self) -> Dict[str, object]:
        return {}


NULL_INSIGHTS = NullInsights()
"""Shared disabled registry — pass where insights are off."""


# ---------------------------------------------------------------------------
# Cross-shard merging
# ---------------------------------------------------------------------------


def merge_insights_snapshots(
    snapshots: Sequence[Mapping[str, object]],
) -> Dict[str, object]:
    """One cluster insights snapshot from N per-shard snapshots.

    Histogram buckets and counters add **exactly** (each template lives
    on one shard under fingerprint routing, so this is usually a
    disjoint union — but overlapping keys merge correctly too, which is
    what makes the operation associative and commutative).  Slow-log
    outliers re-rank to the global top-K; windowed burn rates take the
    worst shard.
    """
    present = [s for s in snapshots if s]
    if not present:
        return {}
    slow_k = 8
    for snap in present:
        k = snap.get("slow_k")
        if isinstance(k, int):
            slow_k = k
            break
    template_keys: List[str] = []
    for snap in present:
        templates = snap.get("templates")
        if isinstance(templates, Mapping):
            for key in templates:
                if key not in template_keys:
                    template_keys.append(str(key))
    merged_templates: Dict[str, object] = {}
    for key in sorted(template_keys):
        sources = [
            t[key]
            for snap in present
            if isinstance(t := snap.get("templates"), Mapping) and key in t
        ]
        merged_templates[key] = _merge_template(
            [s for s in sources if isinstance(s, Mapping)]
        )
    return {
        "slow_k": slow_k,
        "templates": merged_templates,
        "slow_log": _merge_slow_logs(present, slow_k),
    }


def _merge_template(sources: List[Mapping[str, object]]) -> Dict[str, object]:
    events: Dict[str, int] = {}
    for source in sources:
        source_events = source.get("events")
        if isinstance(source_events, Mapping):
            for kind, n in source_events.items():
                if isinstance(n, int):
                    events[str(kind)] = events.get(str(kind), 0) + n
    phase_keys: List[str] = []
    for source in sources:
        phases = source.get("phases")
        if isinstance(phases, Mapping):
            for phase in phases:
                if phase not in phase_keys:
                    phase_keys.append(str(phase))
    merged_phases: Dict[str, object] = {}
    for phase in sorted(phase_keys):
        latency_snaps: List[Mapping[str, object]] = []
        work_snaps: List[Mapping[str, object]] = []
        for source in sources:
            phases = source.get("phases")
            if not isinstance(phases, Mapping) or phase not in phases:
                continue
            entry = phases[phase]
            if not isinstance(entry, Mapping):
                continue
            latency = entry.get("latency")
            work = entry.get("work")
            if isinstance(latency, Mapping) and latency:
                latency_snaps.append(latency)
            if isinstance(work, Mapping) and work:
                work_snaps.append(work)
        merged_phases[phase] = {
            "latency": merge_snapshots(latency_snaps),
            "work": merge_snapshots(work_snaps),
        }
    slo_snaps = [
        dict(slo)
        for source in sources
        if isinstance(slo := source.get("slo"), Mapping)
    ]
    return {
        "queries": sum(_int(source.get("queries")) for source in sources),
        "errors": sum(_int(source.get("errors")) for source in sources),
        "events": {kind: events[kind] for kind in sorted(events)},
        "phases": merged_phases,
        "slo": merge_slo_snapshots(slo_snaps),
    }


def _merge_slow_logs(
    snapshots: Sequence[Mapping[str, object]], slow_k: int
) -> Dict[str, object]:
    per_template: Dict[str, List[List[Entry]]] = {}
    events: List[Entry] = []
    for snap in snapshots:
        log = snap.get("slow_log")
        if not isinstance(log, Mapping):
            continue
        outliers = log.get("outliers")
        if isinstance(outliers, Mapping):
            for template, entries in outliers.items():
                if isinstance(entries, list):
                    per_template.setdefault(str(template), []).append(
                        [dict(e) for e in entries if isinstance(e, Mapping)]
                    )
        log_events = log.get("events")
        if isinstance(log_events, list):
            events.extend(
                dict(e) for e in log_events if isinstance(e, Mapping)
            )
    return {
        "outliers": {
            template: merge_slow_entries(per_template[template], slow_k)
            for template in sorted(per_template)
        },
        "events": events,
    }


def _int(value: object) -> int:
    return value if isinstance(value, int) else 0


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


def render_insights_prometheus(snapshot: Mapping[str, object]) -> str:
    """Labelled Prometheus lines for a (merged) insights snapshot.

    Per template: query/error totals, SLO good/bad totals, fast/slow
    burn-rate gauges, and per-phase p50/p99 latency gauges — the
    exposition the ISSUE's burn-rate alerting consumes.
    """
    lines: List[str] = [
        "# HELP hdqo_template_queries_total Queries observed per template",
        "# TYPE hdqo_template_queries_total counter",
        "# HELP hdqo_template_errors_total Typed errors per template",
        "# TYPE hdqo_template_errors_total counter",
        "# HELP hdqo_slo_burn_rate Error-budget burn rate per window",
        "# TYPE hdqo_slo_burn_rate gauge",
        "# HELP hdqo_phase_latency_seconds Phase latency quantiles",
        "# TYPE hdqo_phase_latency_seconds gauge",
    ]
    templates = snapshot.get("templates")
    if not isinstance(templates, Mapping):
        return "\n".join(lines)
    for template in sorted(str(key) for key in templates):
        entry = templates[template]
        if not isinstance(entry, Mapping):
            continue
        label = template.replace("\\", "\\\\").replace('"', '\\"')
        lines.append(
            f'hdqo_template_queries_total{{template="{label}"}} '
            f"{_int(entry.get('queries'))}"
        )
        lines.append(
            f'hdqo_template_errors_total{{template="{label}"}} '
            f"{_int(entry.get('errors'))}"
        )
        slo = entry.get("slo")
        if isinstance(slo, Mapping):
            for window in ("fast", "slow"):
                rate = slo.get(f"{window}_burn_rate")
                if isinstance(rate, (int, float)):
                    lines.append(
                        f'hdqo_slo_burn_rate{{template="{label}",'
                        f'window="{window}"}} {rate}'
                    )
        phases = entry.get("phases")
        if isinstance(phases, Mapping):
            for phase in sorted(str(p) for p in phases):
                data = phases[phase]
                if not isinstance(data, Mapping):
                    continue
                latency = data.get("latency")
                if not isinstance(latency, Mapping) or not latency:
                    continue
                for q_name, q in (("p50", 0.50), ("p99", 0.99)):
                    lines.append(
                        f'hdqo_phase_latency_seconds{{template="{label}",'
                        f'phase="{phase}",quantile="{q_name}"}} '
                        f"{quantile_from_snapshot(latency, q)}"
                    )
    return "\n".join(lines)

"""Hierarchical tracing: spans over the decomposition/execution pipeline.

A :class:`Tracer` produces :class:`Span` records — named, tagged intervals
with wall-clock duration and *work-unit deltas* read from the
:class:`repro.metering.WorkMeter` a span is attached to.  Spans nest: each
thread keeps its own stack of open spans, so the executor pool's workers
trace concurrently without interleaving each other's hierarchies.

Tracing is **zero-cost when disabled**: the process-wide default tracer is
:data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns one shared
no-op span — no allocation, no locking, no timestamps, and (crucially) no
work-unit charges, so a run with tracing disabled is bit-identical to one
on a build without tracing at all.

Usage::

    from repro.obs import tracing

    with tracing.tracing() as tracer:           # enable for a block
        run_query(...)                          # instrumented code traces
    tracer.export_jsonl("spans.jsonl")

Instrumented code does::

    tracer = tracing.current_tracer()
    with tracer.span("exec.join", meter=meter) as span:
        ...
        span.tag(rows_out=len(result))
"""

from __future__ import annotations

import contextlib
import itertools
import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union

from repro.analysis.lockwitness import make_lock
from repro.metering import WorkMeter

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "tracing",
    "validate_span_records",
]


def validate_span_records(
    records: List[Dict[str, Any]],
    *,
    dropped: int = 0,
    open_count: int = 0,
    require_shard_tag: bool = False,
) -> List[str]:
    """Consistency problems in exported span records.

    The record-level twin of :meth:`Tracer.validate`, usable where no
    live tracer exists — most importantly on a **merged cross-process
    trace**, where the spans of N shard workers have been re-identified
    into one timeline and every record must carry a ``shard`` tag
    (``require_shard_tag=True``) so a span can be attributed to the
    process that produced it.

    Args:
        records: span records in :meth:`Span.to_record` shape.
        dropped: spans lost to retention caps; when positive, unknown
            parents are not reported (the parent may be a dropped span).
        open_count: spans still open when the export was taken.
        require_shard_tag: demand an integer ``shard`` tag on every span
            (the merged-trace contract of
            :func:`repro.shard.aggregate.merge_span_records`).

    Returns:
        Human-readable problem descriptions; empty when consistent.
    """
    problems: List[str] = []
    if open_count != 0:
        problems.append(
            f"{open_count} span(s) still open (unmatched open/close)"
        )
    known = {record["span_id"] for record in records}
    if len(known) != len(records):
        problems.append(
            f"{len(records) - len(known)} duplicate span id(s) "
            f"(cross-process merge without re-identification?)"
        )
    for record in records:
        span_id, name = record["span_id"], record.get("name")
        if record.get("duration", 0) < 0:
            problems.append(
                f"span {span_id} ({name}) has negative "
                f"duration {record['duration']}"
            )
        if record.get("work_units", 0) < 0:
            problems.append(
                f"span {span_id} ({name}) has negative "
                f"work delta {record['work_units']}"
            )
        parent_id = record.get("parent_id")
        if parent_id is not None and parent_id not in known and dropped == 0:
            problems.append(
                f"span {span_id} ({name}) references "
                f"unknown parent {parent_id}"
            )
        if require_shard_tag:
            shard = (record.get("tags") or {}).get("shard")
            if not isinstance(shard, int) or isinstance(shard, bool):
                problems.append(
                    f"span {span_id} ({name}) lacks an integer "
                    f"'shard' tag"
                )
    return problems


class Span:
    """One traced interval: name, tags, duration, and a work-unit delta.

    Spans are context managers: entering records the start, exiting records
    the end and hands the finished span to its tracer.  ``start`` is the
    offset (seconds) from the tracer's epoch, so spans from different
    threads order on one timeline.

    Attributes:
        span_id: unique id within the tracer.
        parent_id: enclosing span's id in the same thread (None at a root).
        name: dotted span name (see the taxonomy in docs/ARCHITECTURE.md).
        thread: name of the thread that ran the span.
        tags: free-form key → value annotations.
        work_units: meter delta between enter and exit (0 without a meter).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "thread",
        "tags",
        "start",
        "duration",
        "work_units",
        "_tracer",
        "_meter",
        "_work_start",
        "_t0",
        "_pinned_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        meter: Optional[WorkMeter],
        tags: Dict[str, Any],
        pinned_parent: bool = False,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self._pinned_parent = pinned_parent
        self.name = name
        self.thread = threading.current_thread().name
        self.tags = tags
        self.start = 0.0
        self.duration = 0.0
        self.work_units = 0
        self._tracer = tracer
        self._meter = meter
        self._work_start = 0
        self._t0 = 0.0

    # -- annotation ------------------------------------------------------

    def tag(self, **tags: Any) -> "Span":
        """Attach (or overwrite) tag values; returns self for chaining."""
        self.tags.update(tags)
        return self

    # -- context management ---------------------------------------------

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        self.start = self._t0 - self._tracer.epoch
        if self._meter is not None:
            self._work_start = self._meter.total
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._t0
        if self._meter is not None:
            self.work_units = self._meter.total - self._work_start
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    # -- export ----------------------------------------------------------

    def to_record(self) -> Dict[str, Any]:
        """The span as a plain JSON-serializable dict (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "thread": self.thread,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
            "work_units": self.work_units,
            "tags": {k: _jsonable(v) for k, v in self.tags.items()},
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"work={self.work_units}, {self.duration * 1000:.2f}ms)"
        )


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, (set, tuple)):
        return list(value)
    return str(value)


class Tracer:
    """Collects finished spans; thread-safe, per-thread span nesting.

    Args:
        max_spans: retention cap — beyond it, new spans are still timed and
            returned (so instrumented code never branches) but dropped from
            the record, and ``dropped`` counts them.  Bounds memory under
            long serving runs.
    """

    enabled = True

    def __init__(self, max_spans: int = 100_000):
        self.epoch = time.perf_counter()
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: List[Span] = []
        self._counter = itertools.count(1)
        self._open = 0
        self._lock = make_lock("Tracer._lock")
        self._local = threading.local()

    # -- span lifecycle --------------------------------------------------

    def span(
        self,
        name: str,
        meter: Optional[WorkMeter] = None,
        parent_id: Optional[int] = None,
        **tags: Any,
    ) -> Span:
        """Create a span; use as a context manager to time it.

        ``parent_id`` pins the span under an explicit parent — the hook for
        cross-thread parenting: a worker thread has an empty span stack of
        its own, so a span it opens would otherwise become a root even
        though it logically belongs under the span that submitted the work.
        """
        with self._lock:
            span_id = next(self._counter)
        if parent_id is not None:
            return Span(self, span_id, parent_id, name, meter, tags, pinned_parent=True)
        return Span(self, span_id, self._current_parent_id(), name, meter, tags)

    def _current_parent_id(self) -> Optional[int]:
        stack = getattr(self._local, "stack", None)
        return stack[-1].span_id if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        # Re-resolve the parent at enter time: the span may have been
        # created before sibling spans opened/closed on this thread.  A
        # pinned parent (cross-thread parenting) is never overwritten.
        if not span._pinned_parent:
            span.parent_id = stack[-1].span_id if stack else None
        stack.append(span)
        with self._lock:
            self._open += 1

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # mispaired exit: unwind to the span
            while stack and stack.pop() is not span:
                pass
        with self._lock:
            self._open -= 1
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
            else:
                self.dropped += 1

    # -- introspection ---------------------------------------------------

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans (in completion order), optionally filtered by name."""
        with self._lock:
            spans = list(self._spans)
        if name is not None:
            spans = [s for s in spans if s.name == name]
        return spans

    @property
    def open_spans(self) -> int:
        """Number of spans entered but not yet exited."""
        with self._lock:
            return self._open

    def validate(self) -> List[str]:
        """Consistency problems: negative durations, unmatched open/close,
        or a parent reference to a span that was never recorded.

        Delegates to :func:`validate_span_records`, the record-level
        validator also applied to merged cross-process traces.
        """
        with self._lock:
            spans = list(self._spans)
            open_count = self._open
            dropped = self.dropped
        return validate_span_records(
            [span.to_record() for span in spans],
            dropped=dropped,
            open_count=open_count,
        )

    # -- export ----------------------------------------------------------

    def to_records(self) -> List[Dict[str, Any]]:
        return [span.to_record() for span in self.spans()]

    def export_jsonl(self, target: Union[str, TextIO]) -> int:
        """Write one JSON object per span; returns the number written."""
        records = self.to_records()
        if hasattr(target, "write"):
            for record in records:
                target.write(json.dumps(record) + "\n")  # type: ignore[union-attr]
        else:
            with open(target, "w") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
        return len(records)

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans())} spans, {self.open_spans} open)"


class _NullSpan:
    """The shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()

    span_id = 0
    parent_id = None
    name = ""
    tags: Dict[str, Any] = {}
    work_units = 0
    duration = 0.0

    def tag(self, **tags: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class NullTracer:
    """The disabled tracer: every call is a constant-time no-op."""

    enabled = False
    dropped = 0

    def span(
        self,
        name: str,
        meter: Optional[WorkMeter] = None,
        parent_id: Optional[int] = None,
        **tags: Any,
    ) -> _NullSpan:
        return _NULL_SPAN

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []

    @property
    def open_spans(self) -> int:
        return 0

    def validate(self) -> List[str]:
        return []

    def to_records(self) -> List[Dict[str, Any]]:
        return []

    def export_jsonl(self, target: Union[str, TextIO]) -> int:
        return 0


_NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()
"""Shared disabled tracer — the process-wide default."""

_current: Union[Tracer, NullTracer] = NULL_TRACER
_current_lock = make_lock("tracing._current")


def current_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the disabled :data:`NULL_TRACER` by default)."""
    return _current


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> None:
    """Install ``tracer`` as the process-wide active tracer (None disables)."""
    global _current
    with _current_lock:
        _current = tracer if tracer is not None else NULL_TRACER


@contextlib.contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Enable tracing for a block; yields the (new or given) tracer.

    The previous tracer is restored on exit, so blocks nest safely.
    """
    active = tracer if tracer is not None else Tracer()
    previous = current_tracer()
    set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)

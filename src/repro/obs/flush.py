"""Registered flushers: subsystem flush-on-exit with exactly-once runs.

``hdqo serve`` has three ways out — SIGINT, SIGTERM, and a normal
end-of-input drain — and before this module each subsystem that needed a
final flush (tracer export, metrics print, insights snapshot) had to be
wired into every path by hand; the insights sink made a fourth caller
and the duplication a bug farm.  A :class:`FlushRegistry` inverts that:
subsystems register a callback once, and whichever exit path runs first
calls :meth:`FlushRegistry.flush` — **exactly once per callback**, no
matter how many paths fire (a SIGTERM during a SIGINT drain is real).

Callbacks run in registration order (FIFO — a later sink may depend on
an earlier one having flushed).  A failing callback is recorded, not
raised: one broken sink must not stop the others from flushing on the
way down.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.lockwitness import make_lock

__all__ = ["FlushRegistry"]

Flusher = Callable[[], None]


class FlushRegistry:
    """An ordered, exactly-once set of shutdown flush callbacks."""

    def __init__(self) -> None:
        self._lock = make_lock("FlushRegistry._lock")
        self._flushers: List[Tuple[str, Flusher]] = []
        self._flushed = False
        self.errors: List[str] = []

    def register(self, name: str, flusher: Flusher) -> None:
        """Add a callback; raises if the registry already flushed.

        Registering after the flush would silently never run — failing
        loudly turns a wiring bug into a test failure instead.
        """
        with self._lock:
            if self._flushed:
                raise RuntimeError(
                    f"cannot register flusher {name!r}: already flushed"
                )
            self._flushers.append((name, flusher))

    @property
    def flushed(self) -> bool:
        with self._lock:
            return self._flushed

    def flush(self) -> int:
        """Run every callback once, FIFO; subsequent calls are no-ops.

        Returns the number of callbacks run on this call (0 on every
        call after the first).  Exceptions from callbacks are collected
        into :attr:`errors` as ``"name: message"`` strings.
        """
        with self._lock:
            if self._flushed:
                return 0
            self._flushed = True
            flushers = list(self._flushers)
        ran = 0
        for name, flusher in flushers:
            try:
                flusher()
            except Exception as exc:  # hdqo: ignore[error-swallowing] — shutdown path; one broken sink must not stop the rest, failures surface via .errors
                self.errors.append(f"{name}: {exc}")
            ran += 1
        return ran

"""A unified metrics registry: counters, gauges, and fixed-bucket histograms.

One process-wide :class:`MetricsRegistry` (see :func:`get_registry`)
replaces the ad-hoc lock-guarded counter classes that used to live in each
subsystem: the serving layer's :class:`~repro.service.metrics.ServiceMetrics`
is now a thin façade over instruments registered here, and anything else —
the bench harness, the CLI, user code — can register its own instruments
and read one consistent snapshot.

Design points:

* **thread-safe** — instruments take one lock per update; registration is
  idempotent (asking for an existing name returns the same instrument,
  asking for it with a different type raises).
* **fixed buckets** — histograms count observations into cumulative
  ``le``-style buckets chosen at registration, so snapshots are bounded
  and mergeable; min/max/sum/count ride along.
* **no ``inf`` leaks** — empty summaries snapshot ``min``/``max`` as 0.0
  and expose ``minimum = None``, so JSON export never sees ``Infinity``.
* **text or JSON** — :meth:`MetricsRegistry.snapshot` is a plain dict;
  :meth:`MetricsRegistry.render_text` is a Prometheus-flavoured exposition
  (``name{label="v"} value`` lines) for the CLI's metrics output.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union
from repro.analysis.lockwitness import make_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_WORK_BUCKETS",
]

Number = Union[int, float]

DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0
)
"""Seconds-scale buckets for wall-clock latency histograms."""

DEFAULT_WORK_BUCKETS: Tuple[float, ...] = (
    100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000
)
"""Work-unit-scale buckets (tuples touched per query)."""


class _Instrument:
    """Common base: name, help text, and the update lock."""

    kind = "instrument"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = make_lock("Instrument._lock")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Counter(_Instrument):
    """A monotonically increasing value (ints or floats)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def snapshot(self) -> Number:
        value = self.value
        return round(value, 6) if isinstance(value, float) else value


class Gauge(_Instrument):
    """A value that can go up and down (queue depths, cache sizes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value: Number = 0

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Number = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Number:
        with self._lock:
            return self._value

    def snapshot(self) -> Number:
        value = self.value
        return round(value, 6) if isinstance(value, float) else value


class Histogram(_Instrument):
    """Fixed-bucket distribution summary (cumulative ``le`` buckets).

    Tracks count/sum/min/max plus one counter per bucket boundary; an
    implicit ``+inf`` bucket equals ``count``.  ``minimum`` is ``None``
    until the first observation — never ``inf`` — so merging and JSON
    export are always safe.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[Number] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ):
        super().__init__(name, help)
        if not buckets:
            raise ValueError("histogram needs at least one bucket boundary")
        ordered = tuple(sorted(float(b) for b in buckets))
        if len(set(ordered)) != len(ordered):
            raise ValueError("histogram bucket boundaries must be distinct")
        self.buckets = ordered
        self._counts = [0] * len(ordered)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
            for index, boundary in enumerate(self.buckets):
                if value <= boundary:
                    self._counts[index] += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same buckets) into this one."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        with other._lock:
            counts = list(other._counts)
            count, total = other.count, other.total
            minimum, maximum = other.minimum, other.maximum
        with self._lock:
            self.count += count
            self.total += total
            for index, n in enumerate(counts):
                self._counts[index] += n
            if minimum is not None and (self.minimum is None or minimum < self.minimum):
                self.minimum = minimum
            if maximum is not None and (self.maximum is None or maximum > self.maximum):
                self.maximum = maximum

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "total": round(self.total, 6),
                "mean": round(self.total / self.count, 6) if self.count else 0.0,
                "min": round(self.minimum, 6) if self.minimum is not None else 0.0,
                "max": round(self.maximum, 6) if self.maximum is not None else 0.0,
                "buckets": {
                    _boundary_label(b): n
                    for b, n in zip(self.buckets, self._counts)
                },
            }


def _boundary_label(boundary: float) -> str:
    return f"le_{boundary:g}"


class MetricsRegistry:
    """A named collection of instruments with one consistent snapshot.

    Registration is idempotent: ``counter("x")`` twice returns the same
    :class:`Counter`; registering an existing name as a different
    instrument type raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    # -- registration ----------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Sequence[Number] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._register(
            name, Histogram, lambda: Histogram(name, buckets, help)
        )

    def _register(self, name: str, kind: type, factory) -> Any:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind.__name__.lower()}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def unregister(self, name: str) -> None:
        """Drop one instrument (tests and scoped registries)."""
        with self._lock:
            self._instruments.pop(name, None)

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """``{name: value-or-histogram-dict}`` for every instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(instruments.items())
        }

    def render_text(self) -> str:
        """Prometheus-flavoured exposition of every instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        lines: List[str] = []
        for name, instrument in sorted(instruments.items()):
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            snap = instrument.snapshot()
            if isinstance(snap, dict):  # histogram
                for boundary, count in snap["buckets"].items():
                    le = boundary[len("le_"):]
                    lines.append(f'{name}_bucket{{le="{le}"}} {count}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
                lines.append(f"{name}_sum {snap['total']}")
                lines.append(f"{name}_count {snap['count']}")
            else:
                lines.append(f"{name} {snap}")
        return "\n".join(lines)


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL_REGISTRY

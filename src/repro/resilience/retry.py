"""Deadline-aware retry budgets and seeded jittered backoff.

Two small primitives shared by the shard supervision layer (and usable by
any caller that replays idempotent work):

* :class:`RetryPolicy` / :class:`RetryBudget` — a bounded number of
  re-dispatch attempts that must also fit inside the *original* request
  deadline.  Deadlines never stretch: a retry inherits whatever remains
  of the first dispatch's wall-clock budget, so a query retried across a
  worker crash can finish late-but-inside-deadline or fail explicitly —
  never silently later than the caller asked for.
* :func:`jittered_backoff` — capped exponential backoff with full jitter
  drawn from a *caller-seeded* :class:`random.Random`, so a supervised
  cluster restarts workers on a reproducible schedule (the repo-wide
  determinism rule: randomness is fine, wall-clock entropy is not).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How many times idempotent work may be re-dispatched.

    Args:
        max_retries: re-dispatch attempts *after* the original (0
            disables retries entirely).
    """

    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def budget(
        self,
        deadline_at: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "RetryBudget":
        """A fresh per-request budget anchored at ``deadline_at``."""
        return RetryBudget(self, deadline_at=deadline_at, clock=clock)


class RetryBudget:
    """Mutable per-request retry state: attempts left + deadline anchor.

    Not thread-safe by itself — the shard router mutates it under its own
    state lock.

    Args:
        policy: the governing :class:`RetryPolicy`.
        deadline_at: absolute monotonic instant the *original* request
            must resolve by, or None for no deadline.
        clock: injectable monotonic clock (tests).
    """

    def __init__(
        self,
        policy: RetryPolicy,
        deadline_at: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self.deadline_at = deadline_at
        self._clock = clock
        self.attempts = 1  # the original dispatch
        self.retries_left = policy.max_retries

    def remaining_seconds(self) -> Optional[float]:
        """Seconds left on the original deadline (None = unbounded)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - self._clock()

    def admit(self) -> Optional[float]:
        """Consume one retry; returns the remaining deadline budget.

        The return value is the seconds a retry may still spend (None
        when the request never had a deadline).  Call only after
        :meth:`admissible` returned None — an exhausted budget raises
        :class:`RuntimeError` to catch caller bugs loudly.
        """
        remaining = self.remaining_seconds()
        if self.retries_left <= 0:
            raise RuntimeError("retry budget exhausted")
        if remaining is not None and remaining <= 0:
            raise RuntimeError("deadline exhausted")
        self.retries_left -= 1
        self.attempts += 1
        return remaining

    def admissible(self) -> Optional[str]:
        """None when a retry may proceed, else which budget ran out
        (``"retry-budget"`` or ``"deadline"``)."""
        if self.retries_left <= 0:
            return "retry-budget"
        remaining = self.remaining_seconds()
        if remaining is not None and remaining <= 0:
            return "deadline"
        return None


def jittered_backoff(
    attempt: int,
    *,
    base_seconds: float,
    cap_seconds: float,
    rng: random.Random,
) -> float:
    """Capped exponential backoff with full jitter, seeded by the caller.

    ``attempt`` is 0-based (the first restart waits around
    ``base_seconds``).  The draw is uniform over ``(0, span]`` where
    ``span = min(cap, base * 2**attempt)`` — AWS-style full jitter, which
    decorrelates simultaneous restarts — but floored at ``span / 2`` so a
    crash-looping worker cannot hot-spin on a near-zero draw.
    """
    if base_seconds < 0 or cap_seconds < 0:
        raise ValueError("backoff bounds must be non-negative")
    span = min(cap_seconds, base_seconds * (2.0 ** max(0, attempt)))
    return span * (0.5 + 0.5 * rng.random())

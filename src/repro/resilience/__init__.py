"""repro.resilience — deadlines, cancellation, resource guards, chaos.

The serving stack's third leg (after :mod:`repro.service` and
:mod:`repro.obs`): cooperative per-query abort primitives threaded through
the cost-k-decomp search, view generation, and every physical operator's
row loop, so one pathological query can never wedge a worker or OOM the
process — plus deterministic fault injection and a circuit breaker backing
the service handler's degradation ladder.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import MemoryBudget
from repro.resilience.context import (
    NULL_CONTEXT,
    CancellationToken,
    Deadline,
    ExecutionContext,
    NullExecutionContext,
    current_context,
    resilient,
    set_context,
)
from repro.resilience.faults import FaultInjector, FaultSpec, parse_faultspec
from repro.resilience.retry import RetryBudget, RetryPolicy, jittered_backoff

__all__ = [
    "CancellationToken",
    "CircuitBreaker",
    "Deadline",
    "ExecutionContext",
    "FaultInjector",
    "FaultSpec",
    "MemoryBudget",
    "NULL_CONTEXT",
    "NullExecutionContext",
    "RetryBudget",
    "RetryPolicy",
    "current_context",
    "jittered_backoff",
    "parse_faultspec",
    "resilient",
    "set_context",
]

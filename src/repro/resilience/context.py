"""Deadlines, cancellation, and the per-query execution context.

The cost-k-decomp search is exponential in k, and a single pathological
query can otherwise wedge a pool worker indefinitely.  This module provides
the cooperative-abort primitives the whole stack checks:

* :class:`Deadline` — an immutable monotonic-clock expiry.  Composable:
  :meth:`Deadline.earliest` combines a per-query deadline with e.g. a
  server-wide drain deadline; immutability makes it trivially thread-safe.
* :class:`CancellationToken` — a thread-safe flag a client (or the server's
  drain path) flips from *any* thread; the running query observes it at the
  next checkpoint.  Tokens compose: a token constructed with ``parents``
  reports cancelled as soon as any ancestor is.
* :class:`ExecutionContext` — bundles deadline + token + memory budget +
  fault injector for one query.  Instrumented code calls
  :meth:`ExecutionContext.checkpoint` at named sites (``decompose.search``,
  ``exec.join``, …), which raises the typed
  :class:`~repro.errors.DeadlineExceeded` / :class:`~repro.errors.QueryCancelled`
  errors and gives the fault injector its hook.

Like tracing (:mod:`repro.obs.tracing`), the context is carried in a
thread-local: :func:`current_context` returns :data:`NULL_CONTEXT` — whose
every method is a constant-time no-op — unless a context was activated with
:func:`resilient`.  A run without a context is therefore bit-identical in
work units to an uninstrumented build (the overhead guard test pins this).

Row loops amortize clock reads through :meth:`ExecutionContext.tick`, which
only performs the full checkpoint every :attr:`ExecutionContext.stride`
calls per site.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Sequence, Union

from repro.analysis.lockwitness import make_lock
from repro.errors import DeadlineExceeded, QueryCancelled

if TYPE_CHECKING:
    from repro.resilience.budget import MemoryBudget
    from repro.resilience.faults import FaultInjector

__all__ = [
    "Deadline",
    "CancellationToken",
    "ExecutionContext",
    "NullExecutionContext",
    "NULL_CONTEXT",
    "current_context",
    "set_context",
    "resilient",
    "fanout_context",
]


class Deadline:
    """An absolute monotonic-clock expiry for one query.

    Args:
        seconds: wall-clock budget from *now*.
        clock: injectable monotonic clock (tests freeze time with it).

    Instances are immutable after construction, so one deadline may be read
    from any number of threads without locking.
    """

    __slots__ = ("seconds", "_expires_at", "_clock")

    def __init__(self, seconds: float, clock=time.monotonic):
        if seconds <= 0:
            raise ValueError("deadline must be a positive number of seconds")
        self.seconds = seconds
        self._clock = clock
        self._expires_at = clock() + seconds

    @classmethod
    def after(cls, seconds: float, clock=time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now (alias of the constructor)."""
        return cls(seconds, clock=clock)

    @classmethod
    def from_ms(cls, milliseconds: float, clock=time.monotonic) -> "Deadline":
        return cls(milliseconds / 1000.0, clock=clock)

    @staticmethod
    def earliest(*deadlines: "Optional[Deadline]") -> "Optional[Deadline]":
        """Compose deadlines: the one that expires first wins.

        ``None`` entries (no bound) are ignored; all-None returns None.
        """
        live = [d for d in deadlines if d is not None]
        if not live:
            return None
        return min(live, key=lambda d: d._expires_at)

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def elapsed(self) -> float:
        """Seconds consumed so far."""
        return self.seconds - self.remaining()

    def check(self, site: str = "") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` once expired."""
        if self.expired():
            raise DeadlineExceeded(self.seconds, self.elapsed(), site=site)

    def __repr__(self) -> str:
        return f"Deadline({self.seconds}s, {self.remaining():.3f}s left)"


class CancellationToken:
    """A thread-safe cooperative-cancellation flag.

    Args:
        parents: tokens this one composes with — cancelling any ancestor
            cancels this token too (a server drain token parents every
            in-flight query token).
    """

    def __init__(self, parents: Sequence["CancellationToken"] = ()):
        self._event = threading.Event()
        self._reason = ""
        self._parents = tuple(parents)

    def cancel(self, reason: str = "") -> None:
        """Request cancellation; observed at the query's next checkpoint."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        return any(parent.cancelled for parent in self._parents)

    @property
    def reason(self) -> str:
        if self._event.is_set():
            return self._reason
        for parent in self._parents:
            if parent.cancelled:
                return parent.reason
        return ""

    def child(self) -> "CancellationToken":
        """A new token cancelled whenever this one is."""
        return CancellationToken(parents=(self,))

    def check(self, site: str = "") -> None:
        """Raise :class:`~repro.errors.QueryCancelled` once cancelled."""
        if self.cancelled:
            raise QueryCancelled(self.reason, site=site)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "live"
        return f"CancellationToken({state})"


class ExecutionContext:
    """Everything one query's cooperative-abort machinery needs.

    Args:
        deadline: wall-clock bound (None = unbounded).
        token: cancellation flag (None = not cancellable).
        memory: per-query :class:`~repro.resilience.budget.MemoryBudget`.
        faults: a :class:`~repro.resilience.faults.FaultInjector` whose
            named sites align with checkpoint sites.
        stride: row-loop amortization — :meth:`tick` performs the full
            checkpoint every ``stride`` calls per site.
    """

    #: Real contexts take the instrumented slow path; NULL_CONTEXT doesn't.
    active = True

    def __init__(
        self,
        deadline: Optional[Deadline] = None,
        token: Optional[CancellationToken] = None,
        memory: "Optional[MemoryBudget]" = None,
        faults: "Optional[FaultInjector]" = None,
        stride: int = 1024,
    ):
        if stride < 1:
            raise ValueError("stride must be at least 1")
        self.deadline = deadline
        self.token = token
        self.memory = memory
        self.faults = faults
        self.stride = stride
        self._tick_counts: Dict[str, int] = {}
        self._tick_lock = make_lock("ExecutionContext._tick_lock")

    # ------------------------------------------------------------------

    def checkpoint(self, site: str = "") -> None:
        """One cooperative abort point: cancellation, deadline, faults.

        Cancellation is checked before the deadline so an explicit client
        cancel is reported as such even when the deadline has also passed.
        """
        if self.token is not None:
            self.token.check(site)
        if self.deadline is not None:
            self.deadline.check(site)
        if self.faults is not None:
            self.faults.fire(site)

    def tick(self, site: str) -> None:
        """Amortized checkpoint for row loops (every ``stride`` calls)."""
        with self._tick_lock:
            count = self._tick_counts.get(site, 0) + 1
            self._tick_counts[site] = count
        if count % self.stride == 0:
            self.checkpoint(site)

    def account(self, rows: int, row_width: int, site: str = "") -> None:
        """Charge one materialized intermediate to the memory budget."""
        if self.memory is not None:
            self.memory.account(rows, row_width, site)

    def release(self, rows: int, row_width: int) -> None:
        """Return a freed intermediate's cells to the memory budget."""
        if self.memory is not None:
            self.memory.release(rows, row_width)

    def __repr__(self) -> str:
        parts = []
        if self.deadline is not None:
            parts.append(repr(self.deadline))
        if self.token is not None:
            parts.append(repr(self.token))
        if self.memory is not None:
            parts.append(repr(self.memory))
        if self.faults is not None:
            parts.append(repr(self.faults))
        return f"ExecutionContext({', '.join(parts) or 'unbounded'})"


class NullExecutionContext:
    """The disabled context: every method is a constant-time no-op."""

    active = False
    deadline = None
    token = None
    memory = None
    faults = None

    __slots__ = ()

    def checkpoint(self, site: str = "") -> None:
        return None

    def tick(self, site: str) -> None:
        return None

    def account(self, rows: int, row_width: int, site: str = "") -> None:
        return None

    def release(self, rows: int, row_width: int) -> None:
        return None


NULL_CONTEXT = NullExecutionContext()
"""Shared disabled context — the process-wide default."""

_local = threading.local()


def current_context() -> Union[ExecutionContext, NullExecutionContext]:
    """The active context of *this thread* (:data:`NULL_CONTEXT` default)."""
    return getattr(_local, "context", NULL_CONTEXT)


def set_context(
    context: Optional[Union[ExecutionContext, NullExecutionContext]],
) -> None:
    """Install ``context`` as this thread's active context (None clears)."""
    _local.context = context if context is not None else NULL_CONTEXT


def fanout_context(
    base: Union[ExecutionContext, NullExecutionContext],
) -> "tuple[ExecutionContext, CancellationToken]":
    """A context for a fan-out of worker threads.

    Returns ``(worker_context, fanout_token)``: the worker context carries
    the same deadline/memory/fault bounds as ``base`` plus a fresh
    cancellation token parented on ``base``'s (when it has one).  The
    coordinator cancels ``fanout_token`` the moment any worker fails, so
    every sibling still running stops at its next checkpoint instead of
    finishing work whose result is already doomed.

    An inactive ``base`` (:data:`NULL_CONTEXT`) still yields a real
    context: the fan-out must be cancellable even when the query itself
    runs unbounded.
    """
    parents = (base.token,) if base.token is not None else ()
    token = CancellationToken(parents=parents)
    if not base.active:
        return ExecutionContext(token=token), token
    worker = ExecutionContext(
        deadline=base.deadline,
        token=token,
        memory=base.memory,
        faults=base.faults,
        stride=base.stride,
    )
    return worker, token


@contextlib.contextmanager
def resilient(
    context: Optional[ExecutionContext] = None,
    **kwargs,
) -> Iterator[ExecutionContext]:
    """Activate an execution context for a block (this thread only).

    Either pass a ready :class:`ExecutionContext` or keyword arguments for
    one (``deadline=…, token=…, memory=…, faults=…``).  The previous
    context is restored on exit, so blocks nest safely.
    """
    active = context if context is not None else ExecutionContext(**kwargs)
    previous = current_context()
    set_context(active)
    try:
        yield active
    finally:
        set_context(previous)

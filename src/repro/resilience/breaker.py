"""A per-key circuit breaker for the planning path.

A query template whose cost-k-decomp search keeps failing (deadline, work
budget, no width-≤k decomposition after a statistics change, injected
chaos) should not pay the failing search on every repetition — the
degradation ladder already lands it on the built-in planner, so the
breaker's job is to skip straight there for a while.

Standard three-state breaker, keyed by template fingerprint:

* **closed** — searches run normally; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the key is
  skipped entirely (``allow`` returns False) until ``cooldown_seconds``
  pass.
* **half-open** — after the cooldown one trial search is admitted; success
  closes the breaker, failure re-opens it for another cooldown.

The clock is injectable so tests drive the state machine without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict
from repro.analysis.lockwitness import make_lock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class _KeyState:
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0


class CircuitBreaker:
    """Per-key consecutive-failure breaker with cooldown + half-open trial.

    Args:
        failure_threshold: consecutive failures that open the breaker.
        cooldown_seconds: how long an open key is skipped before a trial.
        clock: injectable monotonic clock.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._keys: Dict[str, _KeyState] = {}
        self._lock = make_lock("CircuitBreaker._lock")
        self.skips = 0
        self.trips = 0

    # ------------------------------------------------------------------

    def allow(self, key: str) -> bool:
        """May a search run for ``key`` now?  (False = skip to fallback.)

        An open key whose cooldown has elapsed transitions to half-open and
        admits exactly one trial; concurrent callers during the trial are
        still skipped.
        """
        with self._lock:
            state = self._keys.get(key)
            if state is None or state.state == CLOSED:
                return True
            if state.state == OPEN:
                if self._clock() - state.opened_at >= self.cooldown_seconds:
                    state.state = HALF_OPEN
                    return True
                self.skips += 1
                return False
            # half-open: one trial is already in flight.
            self.skips += 1
            return False

    def record_success(self, key: str) -> None:
        with self._lock:
            state = self._keys.get(key)
            if state is not None:
                state.state = CLOSED
                state.consecutive_failures = 0

    def record_failure(self, key: str) -> None:
        with self._lock:
            state = self._keys.setdefault(key, _KeyState())
            state.consecutive_failures += 1
            if (
                state.state == HALF_OPEN
                or state.consecutive_failures >= self.failure_threshold
            ):
                if state.state != OPEN:
                    self.trips += 1
                state.state = OPEN
                state.opened_at = self._clock()

    # ------------------------------------------------------------------

    def state_of(self, key: str) -> str:
        with self._lock:
            state = self._keys.get(key)
            return state.state if state is not None else CLOSED

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            open_keys = sum(1 for s in self._keys.values() if s.state == OPEN)
            return {
                "keys": len(self._keys),
                "open": open_keys,
                "trips": self.trips,
                "skips": self.skips,
            }

"""Deterministic fault injection for chaos testing.

A :class:`FaultInjector` fires latency, typed exceptions, or simulated
budget exhaustion at the *named sites* the resilience checkpoints already
visit (``decompose.search``, ``exec.join``, ``plancache.get``, …).  Firing
is deterministic: each site keeps a call counter and a spec with rate *r*
fires every ``round(1/r)``-th call at a seed-derived phase offset — so a
chaos run with a fixed seed injects the same faults at the same per-site
call indices regardless of thread interleaving, and a failure reproduces.

Fault specs are written compactly for the CLI (``--inject``)::

    decompose.search:error:0.5,exec.join:latency:0.1:5,exec.scan:budget:0.05

i.e. comma-separated ``site:kind:rate[:param]`` where kind is ``latency``
(param = milliseconds to sleep), ``error`` (raise
:class:`~repro.errors.InjectedFault`), or ``budget`` (raise
:class:`~repro.errors.WorkBudgetExceeded` as if the meter tripped).
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.analysis.lockwitness import make_lock
from repro.errors import InjectedFault, WorkBudgetExceeded

KINDS = ("latency", "error", "budget")


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where, what, how often.

    Attributes:
        site: checkpoint site name the rule arms.
        kind: ``latency`` | ``error`` | ``budget``.
        rate: fraction of calls at the site that fire (0 < rate ≤ 1);
            realized deterministically as every ``round(1/rate)``-th call.
        param: kind parameter — for ``latency``, milliseconds to sleep.
    """

    site: str
    kind: str
    rate: float
    param: float = 0.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {KINDS}")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"fault rate must be in (0, 1], got {self.rate}")

    @property
    def period(self) -> int:
        return max(1, round(1.0 / self.rate))


def parse_faultspec(text: str) -> List[FaultSpec]:
    """Parse a CLI fault specification (see module docstring)."""
    specs: List[FaultSpec] = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"bad fault clause {clause!r}: expected site:kind:rate[:param]"
            )
        site, kind, rate = parts[0], parts[1], float(parts[2])
        param = float(parts[3]) if len(parts) == 4 else 0.0
        specs.append(FaultSpec(site=site, kind=kind, rate=rate, param=param))
    return specs


class FaultInjector:
    """Fires configured faults at named sites, deterministically.

    Args:
        specs: the rules, or a CLI spec string to parse.
        seed: phase seed — shifts *which* call indices fire without
            changing the rate, so two chaos runs can disagree on timing
            while each stays reproducible.
    """

    def __init__(self, specs: "Iterable[FaultSpec] | str", seed: int = 0):
        if isinstance(specs, str):
            specs = parse_faultspec(specs)
        self.seed = seed
        self._by_site: Dict[str, List[FaultSpec]] = {}
        for spec in specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._counts: Dict[str, int] = {}
        self._fired: Dict[Tuple[str, str], int] = {}
        self._lock = make_lock("FaultInjector._lock")

    def _offset(self, spec: FaultSpec) -> int:
        return (self.seed + zlib.crc32(spec.site.encode())) % spec.period

    def fire(self, site: str) -> None:
        """One call at ``site``: sleep or raise when a rule's index matches."""
        specs = self._by_site.get(site)
        if not specs:
            return
        with self._lock:
            count = self._counts.get(site, 0)
            self._counts[site] = count + 1
            due = [
                spec
                for spec in specs
                if count % spec.period == self._offset(spec)
            ]
            for spec in due:
                key = (site, spec.kind)
                self._fired[key] = self._fired.get(key, 0) + 1
        for spec in due:
            if spec.kind == "latency":
                time.sleep(spec.param / 1000.0)
            elif spec.kind == "error":
                raise InjectedFault(site)
            elif spec.kind == "budget":
                raise WorkBudgetExceeded(budget=0, spent=0, phase=site)

    def snapshot(self) -> Dict[str, object]:
        """Per-site call and fire counters (chaos-suite assertions)."""
        with self._lock:
            return {
                "calls": dict(self._counts),
                "fired": {
                    f"{site}:{kind}": count
                    for (site, kind), count in sorted(self._fired.items())
                },
            }

    def __repr__(self) -> str:
        sites = ", ".join(sorted(self._by_site))
        return f"FaultInjector({sites or 'no sites'}, seed={self.seed})"

"""Per-query memory budgeting via row-width accounting.

The evaluator materializes every intermediate (hash-join outputs, χ
projections, view bodies).  A cartesian blow-up therefore shows up as an
intermediate whose ``rows × attributes`` cell estimate explodes — and the
right failure mode is a deterministic typed error *before* the process
OOMs, not a dead worker.  :class:`MemoryBudget` implements exactly that:
operators report each materialized intermediate and the budget raises
:class:`~repro.errors.MemoryBudgetExceeded` the moment either guard trips:

* ``max_cells`` — estimated live cells (rows × row width), an allocation
  proxy that scales with tuple size the way a real buffer pool would;
* ``max_intermediate_rows`` — a flat cap on any single intermediate,
  the "no operator may produce more than N rows" guard.

Accounting is estimated, not measured: releases are best-effort (operators
release inputs they have consumed), so the live-cell figure is an upper
bound — exactly the conservative direction a guard should err in.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.analysis.lockwitness import make_lock
from repro.errors import MemoryBudgetExceeded


class MemoryBudget:
    """Thread-safe estimated-memory guard for one query.

    Args:
        max_cells: budget on estimated live cells (None = unbounded).
        max_intermediate_rows: cap on any single materialized intermediate
            (None = unbounded).

    Attributes:
        live_cells: estimated cells currently held.
        peak_cells: high-water mark of ``live_cells``.
        intermediates: number of materializations accounted.
    """

    def __init__(
        self,
        max_cells: Optional[int] = None,
        max_intermediate_rows: Optional[int] = None,
    ):
        if max_cells is not None and max_cells <= 0:
            raise ValueError("max_cells must be positive")
        if max_intermediate_rows is not None and max_intermediate_rows <= 0:
            raise ValueError("max_intermediate_rows must be positive")
        self.max_cells = max_cells
        self.max_intermediate_rows = max_intermediate_rows
        self.live_cells = 0
        self.peak_cells = 0
        self.intermediates = 0
        self._lock = make_lock("MemoryBudget._lock")

    def account(self, rows: int, row_width: int, site: str = "") -> None:
        """Charge one materialized intermediate; raises on either guard.

        The charge lands *before* the raise, so the estimate stays an upper
        bound even on the abort path.
        """
        cells = rows * max(row_width, 1)
        with self._lock:
            self.intermediates += 1
            self.live_cells += cells
            if self.live_cells > self.peak_cells:
                self.peak_cells = self.live_cells
            live = self.live_cells
        if (
            self.max_intermediate_rows is not None
            and rows > self.max_intermediate_rows
        ):
            raise MemoryBudgetExceeded(
                site, rows, row_width, live, max_rows=self.max_intermediate_rows
            )
        if self.max_cells is not None and live > self.max_cells:
            raise MemoryBudgetExceeded(
                site, rows, row_width, live, budget_cells=self.max_cells
            )

    def release(self, rows: int, row_width: int) -> None:
        """Return a consumed intermediate's cells (best-effort, floored at 0)."""
        cells = rows * max(row_width, 1)
        with self._lock:
            self.live_cells = max(self.live_cells - cells, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "live_cells": self.live_cells,
                "peak_cells": self.peak_cells,
                "intermediates": self.intermediates,
            }

    def __repr__(self) -> str:
        cap = self.max_cells if self.max_cells is not None else "∞"
        return f"MemoryBudget({self.live_cells}/{cap} cells)"

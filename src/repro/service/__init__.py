"""The serving layer: concurrent query execution with a structural plan cache.

Turns the library into a serving stack (the ROADMAP's production north
star):

* :mod:`repro.service.fingerprint` — canonical, parameter-insensitive
  query-template fingerprints (the cache key);
* :mod:`repro.service.plancache` — thread-safe LRU+TTL plan cache with
  statistics-version invalidation;
* :mod:`repro.service.executor_pool` — bounded worker pool with
  reject-on-saturation admission control;
* :mod:`repro.service.server` — :class:`QueryService`, the façade;
* :mod:`repro.service.metrics` — latency / work-unit / cache counters.
"""

from repro.service.fingerprint import (
    QueryFingerprint,
    fingerprint_translation,
    rename_hypertree,
    schema_digest,
)
from repro.service.plancache import CachedPlan, CacheStats, PlanCache
from repro.service.executor_pool import ExecutorPool
from repro.service.metrics import (
    LatencyStat,
    ServiceMetrics,
    SupervisorMetrics,
    render_snapshot,
)
from repro.service.server import QueryService

__all__ = [
    "QueryFingerprint",
    "fingerprint_translation",
    "rename_hypertree",
    "schema_digest",
    "CachedPlan",
    "CacheStats",
    "PlanCache",
    "ExecutorPool",
    "LatencyStat",
    "ServiceMetrics",
    "SupervisorMetrics",
    "render_snapshot",
    "QueryService",
]

"""Canonical, parameter-insensitive query-template fingerprints.

The serving layer's economic argument (§6.1 of the paper) is that the
structural plan is built once per *template*: two executions of the same
query shape — same join structure, same output, same filter shapes, but
different constants or different FROM-clause aliases — must share a plan.
The fingerprint computed here is the cache key that makes that sharing
sound:

* it is **canonical**: isomorphic renamings (aliases, variable order,
  atom order) map to the same fingerprint, via colour refinement with
  individualization over the atom-variable incidence structure;
* it is **parameter-insensitive**: filter *shapes* (column, operator)
  participate, constant values do not — `r_name = 'ASIA'` and
  `r_name = 'EUROPE'` share a template, `r_name < 'ASIA'` does not;
* it embeds the **schema digest** (and the plan cache pairs it with the
  statistics version), so DDL or ANALYZE refreshes never resurrect plans
  built for a different world.

A cached decomposition is stored in *canonical* names; on a hit it is
renamed into the requesting query's names (:func:`rename_hypertree`), so a
plan built for ``FROM nation n1`` serves ``FROM nation n2`` verbatim.

Soundness does not depend on the refinement being a complete isomorphism
test: the cache compares the full canonical text on every hit, and equal
canonical texts *constructively* exhibit an isomorphism (compose the two
canonical maps).  An undetected symmetry can only cost a cache miss, never
a wrong plan.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.hypergraph.hypergraph import Hyperedge, Hypergraph
from repro.query import ast
from repro.query.translate import TranslationResult
from repro.relational.database import Database
from repro.core.hypertree import Hypertree, HypertreeNode


@dataclass(frozen=True)
class QueryFingerprint:
    """A canonical template fingerprint plus the renaming that produced it.

    Attributes:
        key: short stable digest of ``text`` — the cache's hash key.
        text: the full canonical form; compared on every cache hit so hash
            collisions are harmless.
        var_map: original variable name → canonical name (``v0``, ``v1``…).
        atom_map: original atom name → canonical name (``a0``, ``a1``…).
    """

    key: str
    text: str
    var_map: Mapping[str, str]
    atom_map: Mapping[str, str]

    def inverse_var_map(self) -> Dict[str, str]:
        return {canon: orig for orig, canon in self.var_map.items()}

    def inverse_atom_map(self) -> Dict[str, str]:
        return {canon: orig for orig, canon in self.atom_map.items()}


def schema_digest(database: Database) -> str:
    """A short digest of the database schema (relation names + columns).

    Part of the fingerprint context: a plan decomposes a query *against a
    schema*; schema changes must not reuse old templates.
    """
    parts = []
    for relation, columns in sorted(database.schema.as_mapping().items()):
        parts.append(f"{relation}({','.join(columns)})")
    return hashlib.sha256(";".join(parts).encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Filter shapes (parameter-insensitive)
# ---------------------------------------------------------------------------


def _expression_shape(expression: ast.Expression) -> str:
    """Render an expression with every constant masked to ``?``."""
    if isinstance(expression, ast.ColumnRef):
        return expression.column.lower()
    if isinstance(expression, ast.Literal):
        return "?"
    if isinstance(expression, ast.BinaryOp):
        return (
            f"({_expression_shape(expression.left)}{expression.op}"
            f"{_expression_shape(expression.right)})"
        )
    if isinstance(expression, ast.FuncCall):
        inner = ",".join(_expression_shape(a) for a in expression.args)
        return f"{expression.name.lower()}({inner})"
    if isinstance(expression, ast.Star):
        return "*"
    return f"<{type(expression).__name__}>"


def _predicate_shape(predicate: object) -> str:
    """The parameter-insensitive shape of one base-scan filter predicate."""
    if isinstance(predicate, ast.Comparison):
        return (
            f"cmp[{predicate.op}]"
            f"({_expression_shape(predicate.left)},"
            f"{_expression_shape(predicate.right)})"
        )
    if isinstance(predicate, ast.BetweenPredicate):
        return f"between({_expression_shape(predicate.expr)})"
    if isinstance(predicate, ast.InList):
        return f"in({_expression_shape(predicate.expr)})"
    # Unknown predicate kinds keep their column references and type, so two
    # different constructs never share a shape by accident.
    refs = ",".join(
        ref.column.lower()
        for ref in ast.column_refs(getattr(predicate, "left", ast.Star()))
    )
    return f"{type(predicate).__name__.lower()}({refs})"


# ---------------------------------------------------------------------------
# Canonicalization: colour refinement with individualization
# ---------------------------------------------------------------------------


def _compress(colors: Dict[str, object]) -> Dict[str, int]:
    """Rank-compress arbitrary (orderable) colour values to small ints."""
    ranking = {color: rank for rank, color in enumerate(sorted(set(map(repr, colors.values()))))}
    return {item: ranking[repr(color)] for item, color in colors.items()}


def _refine(
    var_colors: Dict[str, int],
    atom_colors: Dict[str, int],
    var_adj: Dict[str, List[Tuple[str, str]]],
    atom_adj: Dict[str, List[Tuple[str, str]]],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Iterate 1-WL over the variable/atom incidence until the partition is stable."""
    while True:
        new_var = {
            v: (var_colors[v], tuple(sorted((atom_colors[a], col) for a, col in adj)))
            for v, adj in var_adj.items()
        }
        new_atom = {
            a: (atom_colors[a], tuple(sorted((var_colors[v], col) for v, col in adj)))
            for a, adj in atom_adj.items()
        }
        next_var = _compress(new_var)
        next_atom = _compress(new_atom)
        if (
            len(set(next_var.values())) == len(set(var_colors.values()))
            and len(set(next_atom.values())) == len(set(atom_colors.values()))
        ):
            return next_var, next_atom
        var_colors, atom_colors = next_var, next_atom


def fingerprint_translation(
    translation: TranslationResult,
    context: str = "",
) -> QueryFingerprint:
    """Fingerprint a translated query template.

    Args:
        translation: the SQL → CQ translation of the query.
        context: free-form serving context folded into the fingerprint —
            schema digest, width bound, optimizer flags.  Anything that
            changes the *meaning* of a cached plan belongs here.

    Returns:
        The canonical :class:`QueryFingerprint`; equal fingerprints (by
        ``text``) certify that the underlying templates are isomorphic.
    """
    query = translation.query

    # Incidence: (variable, atom, column) triples.  column_variables has the
    # complete picture (including columns merged by intra-atom equalities);
    # variable_bindings fills in hand-built translations.
    incidence = set()
    for (alias, column), variable in translation.column_variables.items():
        incidence.add((variable, alias, column.lower()))
    for variable, bindings in translation.variable_bindings.items():
        for alias, column in bindings.items():
            incidence.add((variable, alias, column.lower()))

    relation_of = {atom.name: atom.relation.lower() for atom in query.atoms}
    var_adj: Dict[str, List[Tuple[str, str]]] = {v: [] for v in query.variables}
    atom_adj: Dict[str, List[Tuple[str, str]]] = {a.name: [] for a in query.atoms}
    for variable, alias, column in sorted(incidence):
        if variable in var_adj and alias in atom_adj:
            var_adj[variable].append((alias, column))
            atom_adj[alias].append((variable, column))

    output_pos = {variable: i for i, variable in enumerate(query.output)}
    filter_shapes = {
        atom.name: tuple(
            sorted(
                _predicate_shape(p)
                for p in translation.atom_filters.get(atom.name, ())
            )
        )
        for atom in query.atoms
    }
    intra_shapes = {
        atom.name: tuple(
            sorted(
                tuple(sorted((a.lower(), b.lower())))
                for a, b in translation.intra_atom_equalities.get(atom.name, ())
            )
        )
        for atom in query.atoms
    }

    # Seed colours from renaming-invariant data only.
    var_seed = {
        v: (
            "var",
            tuple(sorted((relation_of[a], col) for a, col in var_adj[v])),
            output_pos.get(v, -1),
        )
        for v in var_adj
    }
    atom_seed = {
        a.name: ("atom", relation_of[a.name], filter_shapes[a.name], intra_shapes[a.name])
        for a in query.atoms
    }
    var_colors = _compress(var_seed)
    atom_colors = _compress(atom_seed)
    var_colors, atom_colors = _refine(var_colors, atom_colors, var_adj, atom_adj)

    # Individualization: split any non-singleton colour class and re-refine
    # until the variable partition is discrete.  Ties broken here are either
    # automorphic (any choice yields the same canonical text) or cost at
    # worst a missed unification — never an unsound reuse (see module doc).
    next_unique = len(var_adj) + len(atom_adj) + 1
    while True:
        classes: Dict[int, List[str]] = {}
        for v, color in var_colors.items():
            classes.setdefault(color, []).append(v)
        tied = sorted(
            (color, sorted(members)) for color, members in classes.items()
            if len(members) > 1
        )
        if not tied:
            break
        _, members = tied[0]
        var_colors = dict(var_colors)
        var_colors[members[0]] = next_unique
        next_unique += 1
        var_colors, atom_colors = _refine(
            var_colors, atom_colors, var_adj, atom_adj
        )

    ordered_vars = sorted(var_adj, key=lambda v: (var_colors[v], v))
    var_map = {v: f"v{i}" for i, v in enumerate(ordered_vars)}
    ordered_atoms = sorted(atom_adj, key=lambda a: (atom_colors[a], a))
    atom_map = {a: f"a{i}" for i, a in enumerate(ordered_atoms)}

    lines: List[str] = []
    for name in ordered_atoms:
        bindings = ",".join(
            f"{col}={var_map[v]}" for v, col in sorted(atom_adj[name], key=lambda p: (p[1], var_map[p[0]]))
        )
        filters = ";".join(filter_shapes[name])
        intra = ";".join("=".join(pair) for pair in intra_shapes[name])
        lines.append(
            f"{atom_map[name]}:{relation_of[name]}({bindings})|f[{filters}]|e[{intra}]"
        )
    lines.append("out=(" + ",".join(var_map[v] for v in query.output) + ")")
    if context:
        lines.append(f"ctx={context}")
    text = "\n".join(lines)
    key = hashlib.sha256(text.encode()).hexdigest()[:20]
    return QueryFingerprint(key=key, text=text, var_map=var_map, atom_map=atom_map)


# ---------------------------------------------------------------------------
# Renaming decompositions between name spaces
# ---------------------------------------------------------------------------


def rename_hypergraph(
    hypergraph: Hypergraph,
    var_map: Mapping[str, str],
    atom_map: Mapping[str, str],
) -> Hypergraph:
    """A copy of ``hypergraph`` with vertices and edge names mapped."""
    return Hypergraph(
        Hyperedge(atom_map[edge.name], (var_map[v] for v in edge.vertices))
        for edge in hypergraph
    )


def rename_hypertree(
    tree: Hypertree,
    var_map: Mapping[str, str],
    atom_map: Mapping[str, str],
    hypergraph: Optional[Hypergraph] = None,
) -> Hypertree:
    """A fresh :class:`Hypertree` with χ variables and λ atoms renamed.

    Guards are re-linked onto the copied nodes.  The source tree is never
    mutated, so a canonical tree stored in the plan cache can be renamed
    concurrently by many workers.

    Args:
        hypergraph: the hypergraph of the *target* name space; derived by
            renaming the source's hypergraph when omitted.
    """
    node_copies: Dict[int, HypertreeNode] = {}

    def rebuild(node: HypertreeNode) -> HypertreeNode:
        copy = HypertreeNode(
            chi=(var_map[v] for v in node.chi),
            lam=tuple(atom_map[a] for a in node.lam),
        )
        node_copies[id(node)] = copy
        for child in node.children:
            copy.add_child(rebuild(child))
        copy.guards = {
            atom_map[name]: node_copies[id(guard)]
            for name, guard in node.guards.items()
            if id(guard) in node_copies
        }
        return copy

    root = rebuild(tree.root)
    if hypergraph is None:
        hypergraph = rename_hypergraph(tree.hypergraph, var_map, atom_map)
    return Hypertree(root, hypergraph)

"""A bounded worker pool with admission control.

``concurrent.futures.ThreadPoolExecutor`` queues without bound — exactly
what a serving layer must not do: under sustained overload an unbounded
queue converts every client into an eventual timeout.  :class:`ExecutorPool`
keeps the stdlib :class:`~concurrent.futures.Future` contract but feeds the
workers from a *bounded* queue; when it is full, :meth:`submit` fails fast
with :class:`~repro.errors.ServiceOverloaded` so the caller can shed load or
retry with backoff (backpressure instead of collapse).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.lockwitness import make_lock
from repro.errors import ServiceClosed, ServiceOverloaded

_SENTINEL = object()


class ExecutorPool:
    """Fixed worker threads over a bounded run queue.

    Args:
        workers: number of worker threads.
        queue_capacity: maximum *waiting* tasks (running tasks excluded);
            a submit beyond it raises :class:`ServiceOverloaded`.
        name: thread-name prefix (shows up in debugger/py-spy output).
    """

    def __init__(
        self, workers: int = 4, queue_capacity: int = 32, name: str = "hdqo"
    ):
        if workers < 1:
            raise ValueError("the pool needs at least one worker")
        if queue_capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.queue_capacity = queue_capacity
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_capacity)
        self._shutdown = False
        self._lock = make_lock("ExecutorPool._lock")
        self._active = 0
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self._threads: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker, name=f"{name}-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------

    def submit(self, fn: Callable, *args, **kwargs) -> "Future":
        """Enqueue a call; rejects instead of blocking when saturated.

        Raises:
            ServiceOverloaded: the waiting queue is at capacity.
            ServiceClosed: the pool has been shut down.
        """
        if self._shutdown:
            raise ServiceClosed("executor pool is shut down")
        future: Future = Future()
        try:
            self._queue.put_nowait((future, fn, args, kwargs))
        except queue.Full:
            with self._lock:
                self.rejected += 1
            raise ServiceOverloaded(
                queued=self._queue.qsize(), capacity=self.queue_capacity
            ) from None
        with self._lock:
            self.submitted += 1
        return future

    def submit_blocking(self, fn: Callable, *args, **kwargs) -> "Future":
        """Enqueue a call, *waiting* for queue room (benchmark drivers)."""
        if self._shutdown:
            raise ServiceClosed("executor pool is shut down")
        future: Future = Future()
        self._queue.put((future, fn, args, kwargs))
        with self._lock:
            self.submitted += 1
        return future

    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                self._queue.task_done()
                return
            future, fn, args, kwargs = item  # type: ignore[misc]
            if not future.set_running_or_notify_cancel():
                self._queue.task_done()
                continue
            with self._lock:
                self._active += 1
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # hdqo: ignore[error-swallowing] — delivered through the future
                future.set_exception(exc)
            finally:
                with self._lock:
                    self._active -= 1
                    self.completed += 1
                self._queue.task_done()

    # ------------------------------------------------------------------

    def shutdown(
        self,
        wait: bool = True,
        grace_seconds: Optional[float] = None,
        cancel_pending: bool = False,
    ) -> bool:
        """Stop accepting work; optionally join the workers.

        Args:
            wait: join the worker threads.
            grace_seconds: bound on the *total* join wait; workers still
                running when it elapses are abandoned (they are daemon
                threads) and the method returns False.
            cancel_pending: cancel queued-but-not-started futures first, so
                a drain does not wait for the backlog — only for the
                queries already running.

        Returns:
            True when every worker exited within the grace period.
        """
        if self._shutdown:
            return True
        self._shutdown = True
        if cancel_pending:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _SENTINEL:
                    future = item[0]  # type: ignore[index]
                    future.cancel()
                self._queue.task_done()
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        drained = True
        if wait:
            expires = (
                None
                if grace_seconds is None
                else time.monotonic() + grace_seconds
            )
            for thread in self._threads:
                timeout = (
                    None
                    if expires is None
                    else max(0.0, expires - time.monotonic())
                )
                thread.join(timeout)
                if thread.is_alive():
                    drained = False
        return drained

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "workers": len(self._threads),
                "active": self._active,
                "queued": self._queue.qsize(),
                "queue_capacity": self.queue_capacity,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
            }

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

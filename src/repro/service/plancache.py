"""A thread-safe structural plan cache: LRU + TTL + statistics versioning.

Maps :class:`~repro.service.fingerprint.QueryFingerprint` keys to completed
q-hypertree decompositions stored in *canonical* names (so one entry serves
every isomorphic renaming of a template).  Following the succinct-structure
caching argument (Jiang et al., PAPERS.md), the cache amortizes the
cost-k-decomp search across repeated templates; what remains per query is a
fingerprint (microseconds) plus a rename.

Invalidation is layered:

* **LRU** — bounded capacity, least-recently-used entry evicted on insert;
* **TTL** — entries older than ``ttl_seconds`` are evicted lazily on access
  and eagerly by :meth:`PlanCache.sweep`;
* **statistics version** — every entry records the
  :attr:`~repro.relational.database.Database.stats_version` it was built
  under; an ANALYZE refresh bumps the version and the next lookup lazily
  evicts the stale entry (counted as an *invalidation*, not a plain miss).

Negative results are cached too: a template for which no width-≤k
decomposition exists would otherwise re-run the full failing search on
every repetition before falling back to the built-in planner.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.analysis.lockwitness import make_lock
from repro.core.hypertree import Hypertree
from repro.service.fingerprint import QueryFingerprint


@dataclass
class CachedPlan:
    """One cache entry: a canonical decomposition (or a cached failure).

    Attributes:
        text: the canonical template text; compared on lookup so two
            templates sharing a digest can never serve each other's plans.
        tree: the decomposition in canonical names; ``None`` caches the
            *absence* of a width-≤k decomposition (the fallback path).
        stats_version: statistics version the plan was costed under.
        created: monotonic creation timestamp (drives TTL).
        hits: number of times this entry was served.
    """

    text: str
    tree: Optional[Hypertree]
    stats_version: int
    created: float
    hits: int = 0

    @property
    def failure(self) -> bool:
        """True when this entry caches ``DecompositionNotFound``."""
        return self.tree is None


@dataclass
class CacheStats:
    """Monotonic cache counters; snapshot for the metrics layer."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions_lru: int = 0
    evictions_ttl: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions_lru": self.evictions_lru,
            "evictions_ttl": self.evictions_ttl,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class PlanCache:
    """Thread-safe LRU+TTL cache of canonical structural plans.

    Args:
        capacity: maximum entries; 0 disables caching entirely (every
            lookup misses, every store is dropped) — the serving layer's
            "cold" baseline.
        ttl_seconds: entry lifetime; ``None`` = no expiry.
        clock: injectable monotonic clock (tests freeze time with it).
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._lock = make_lock("PlanCache._lock")
        self._build_locks: Dict[str, threading.Lock] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def build_lock(self, key: str) -> threading.Lock:
        """The single-flight lock for one fingerprint key.

        Concurrent misses on the same template grab the same lock, so only
        the first runs cost-k-decomp; the rest re-check the cache after it
        stores (a thundering cold-start herd builds each plan once, not
        once per worker).  The lock is dropped from the registry when the
        build completes (:meth:`store`), keeping the registry bounded by
        the number of *in-flight* builds.
        """
        with self._lock:
            lock = self._build_locks.get(key)
            if lock is None:
                lock = make_lock("PlanCache.build")
                self._build_locks[key] = lock
            return lock

    # ------------------------------------------------------------------

    def lookup(
        self, fingerprint: QueryFingerprint, stats_version: int
    ) -> Optional[CachedPlan]:
        """The live entry for a fingerprint, or None (counting a miss).

        Stale entries — expired TTL, outdated statistics version, or a
        digest collision with different canonical text — are evicted here,
        lazily, with the reason counted.
        """
        with self._lock:
            entry = self._entries.get(fingerprint.key)
            if entry is None:
                self.stats.misses += 1
                return None
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.created > self.ttl_seconds
            ):
                del self._entries[fingerprint.key]
                self.stats.evictions_ttl += 1
                self.stats.misses += 1
                return None
            if entry.stats_version != stats_version:
                del self._entries[fingerprint.key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            if entry.text != fingerprint.text:
                # sha256-prefix collision between distinct templates: do not
                # serve, do not evict — the stored template is still valid.
                self.stats.misses += 1
                return None
            self._entries.move_to_end(fingerprint.key)
            entry.hits += 1
            self.stats.hits += 1
            return entry

    def store(
        self,
        fingerprint: QueryFingerprint,
        tree: Optional[Hypertree],
        stats_version: int,
    ) -> None:
        """Insert a canonical plan (or ``None`` = cached failure)."""
        with self._lock:
            self._build_locks.pop(fingerprint.key, None)
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[fingerprint.key] = CachedPlan(
                text=fingerprint.text,
                tree=tree,
                stats_version=stats_version,
                created=self._clock(),
            )
            self._entries.move_to_end(fingerprint.key)
            self.stats.inserts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions_lru += 1

    # ------------------------------------------------------------------

    def sweep(self) -> int:
        """Eagerly evict every TTL-expired entry; returns how many."""
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        with self._lock:
            expired = [
                key
                for key, entry in self._entries.items()
                if now - entry.created > self.ttl_seconds
            ]
            for key in expired:
                del self._entries[key]
            self.stats.evictions_ttl += len(expired)
        return len(expired)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._build_locks.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict[str, float]:
        """Counters plus current occupancy (for the metrics layer)."""
        with self._lock:
            data = self.stats.snapshot()
            data["size"] = len(self._entries)
            data["capacity"] = self.capacity
        return data

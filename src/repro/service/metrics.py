"""Serving-layer metrics: latency, work units, planning effort, cache hits.

Every counter is guarded by one lock — the recording paths are called from
pool workers concurrently.  :meth:`ServiceMetrics.snapshot` returns a plain
nested dict, the stable surface the CLI (``hdqo serve`` / ``bench-serve``),
``repro.bench.serving`` and the tests consume.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class LatencyStat:
    """Streaming summary of a duration/size distribution (no samples kept)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.minimum, 6) if self.count else 0.0,
            "max": round(self.maximum, 6),
        }


class ServiceMetrics:
    """Thread-safe counters for a :class:`~repro.service.server.QueryService`.

    Three families:

    * **queries** — completed / did-not-finish / errored / rejected, with a
      wall-clock latency summary and total work units executed;
    * **planning** — structural plans built fresh vs served from the plan
      cache vs degraded to the built-in planner, with the deterministic
      ``"plan"`` work-unit effort and planning wall time;
    * **cache** — merged in from :meth:`PlanCache.snapshot` by the service.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.queries = 0
        self.finished = 0
        self.dnf = 0
        self.errors = 0
        self.rejected = 0
        self.work_units = 0
        self.latency = LatencyStat()
        self.plans_built = 0
        self.plans_cached = 0
        self.plan_fallbacks = 0
        self.planning_units = 0
        self.planning_seconds = 0.0

    # ------------------------------------------------------------------

    def record_query(
        self, *, finished: bool, work: int, seconds: float
    ) -> None:
        with self._lock:
            self.queries += 1
            if finished:
                self.finished += 1
            else:
                self.dnf += 1
            self.work_units += work
            self.latency.observe(seconds)

    def record_error(self) -> None:
        with self._lock:
            self.queries += 1
            self.errors += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_plan(
        self,
        *,
        cache_hit: bool,
        units: int = 0,
        seconds: float = 0.0,
        fallback: bool = False,
    ) -> None:
        """One planning event from the structural optimizer handler.

        Args:
            cache_hit: the decomposition came from the plan cache.
            units: deterministic ``"plan"`` work units spent by the
                cost-k-decomp search (0 on a hit).
            seconds: wall-clock planning time (fingerprint + search/rename).
            fallback: the query degraded to the built-in planner.
        """
        with self._lock:
            if cache_hit:
                self.plans_cached += 1
            else:
                self.plans_built += 1
            if fallback:
                self.plan_fallbacks += 1
            self.planning_units += units
            self.planning_seconds += seconds

    # ------------------------------------------------------------------

    def snapshot(
        self, cache: Optional[Dict[str, float]] = None
    ) -> Dict[str, object]:
        """A nested dict of every counter; pass the plan cache's snapshot
        to merge it under the ``"cache"`` key."""
        with self._lock:
            data: Dict[str, object] = {
                "queries": {
                    "submitted": self.queries,
                    "finished": self.finished,
                    "dnf": self.dnf,
                    "errors": self.errors,
                    "rejected": self.rejected,
                    "work_units": self.work_units,
                },
                "latency_seconds": self.latency.snapshot(),
                "planning": {
                    "built": self.plans_built,
                    "cache_hits": self.plans_cached,
                    "fallbacks": self.plan_fallbacks,
                    "work_units": self.planning_units,
                    "seconds": round(self.planning_seconds, 6),
                },
            }
        if cache is not None:
            data["cache"] = cache
        return data


def render_snapshot(snapshot: Dict[str, object], indent: str = "") -> str:
    """Human-readable multi-line rendering of a metrics snapshot."""
    lines = []
    for key, value in snapshot.items():
        if isinstance(value, dict):
            lines.append(f"{indent}{key}:")
            lines.append(render_snapshot(value, indent + "  "))
        else:
            lines.append(f"{indent}{key}: {value}")
    return "\n".join(lines)

"""Serving-layer metrics: latency, work units, planning effort, cache hits.

:class:`ServiceMetrics` is a façade over a per-instance
:class:`repro.obs.metrics.MetricsRegistry` — each counter/histogram is a
registered instrument (``service_*`` names), so the same numbers are
available three ways:

* :meth:`ServiceMetrics.snapshot` — the stable nested dict the CLI
  (``hdqo serve`` / ``bench-serve``), :mod:`repro.bench.serving` and the
  tests consume (unchanged shape);
* :meth:`ServiceMetrics.render_text` — Prometheus-flavoured exposition via
  the registry;
* ``ServiceMetrics().registry`` — direct instrument access for anything
  else.

The registry is per-instance (not the process-global one) so concurrent
services — and tests — never share counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.lockwitness import make_lock
from repro.obs.insights.histogram import (
    LATENCY_RANGE,
    StreamingHistogram,
    quantile_from_snapshot,
)
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry


@dataclass
class LatencyStat:
    """Streaming summary of a duration/size distribution (no samples kept).

    ``minimum`` is ``None`` until the first observation — never ``inf`` —
    so merging summaries and exporting snapshots to JSON is always safe.
    Quantiles come from an embedded log-bucketed
    :class:`~repro.obs.insights.histogram.StreamingHistogram`, so they
    stay exact under :meth:`merge` (pool-worker / cross-shard
    aggregation) instead of drifting like sampled percentiles would.
    """

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: float = 0.0
    hdr: StreamingHistogram = field(
        default_factory=lambda: StreamingHistogram(index_range=LATENCY_RANGE),
        repr=False,
        compare=False,
    )

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.hdr.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-th quantile (log-bucket upper bound) of the stream."""
        return self.hdr.quantile(q)

    def merge(self, other: "LatencyStat") -> None:
        """Fold another summary into this one (pool-worker aggregation)."""
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        self.hdr.merge(other.hdr)

    def snapshot(self) -> Dict[str, object]:
        hdr = self.hdr.snapshot()
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.minimum, 6) if self.minimum is not None else 0.0,
            "max": round(self.maximum, 6),
            "p50": quantile_from_snapshot(hdr, 0.50),
            "p90": quantile_from_snapshot(hdr, 0.90),
            "p99": quantile_from_snapshot(hdr, 0.99),
            # The histogram rides along so cross-shard merges recompute
            # the quantiles from merged buckets instead of summing them.
            "hdr": hdr,
        }


class ServiceMetrics:
    """Thread-safe counters for a :class:`~repro.service.server.QueryService`.

    Three families:

    * **queries** — completed / did-not-finish / errored / rejected, with a
      wall-clock latency summary and total work units executed;
    * **planning** — structural plans built fresh vs served from the plan
      cache vs degraded to the built-in planner, with the deterministic
      ``"plan"`` work-unit effort and planning wall time;
    * **cache** — merged in from :meth:`PlanCache.snapshot` by the service.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        # One outer lock keeps multi-instrument updates (and snapshots)
        # mutually consistent; the instruments' own locks make each safe
        # for direct use too.
        self._lock = make_lock("ServiceMetrics._lock")
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._queries = reg.counter(
            "service_queries_submitted_total", help="Queries accepted"
        )
        self._finished = reg.counter(
            "service_queries_finished_total", help="Queries that completed"
        )
        self._dnf = reg.counter(
            "service_queries_dnf_total", help="Queries that exhausted the budget"
        )
        self._errors = reg.counter(
            "service_queries_errors_total", help="Queries that raised"
        )
        self._rejected = reg.counter(
            "service_queries_rejected_total", help="Queries rejected at admission"
        )
        self._work_units = reg.counter(
            "service_work_units_total", help="Execution work units charged"
        )
        self._latency = reg.histogram(
            "service_latency_seconds",
            buckets=DEFAULT_LATENCY_BUCKETS,
            help="Per-query wall-clock latency",
        )
        # Fine-grained log-bucketed twin of the fixed-bucket histogram:
        # the source of the p50/p90/p99 fields and of exact cross-shard
        # quantile merging (the "hdr" sub-dict in snapshots).
        self._latency_hdr = StreamingHistogram(index_range=LATENCY_RANGE)
        self._plans_built = reg.counter(
            "service_plans_built_total", help="Decompositions built fresh"
        )
        self._plans_cached = reg.counter(
            "service_plans_cached_total", help="Decompositions served from cache"
        )
        self._plan_fallbacks = reg.counter(
            "service_plan_fallbacks_total", help="Queries degraded to builtin"
        )
        self._planning_units = reg.counter(
            "service_planning_work_units_total",
            help='Deterministic "plan" work units spent searching',
        )
        self._planning_seconds = reg.counter(
            "service_planning_seconds_total", help="Wall-clock planning time"
        )
        self._degraded_lower_k = reg.counter(
            "service_degraded_lower_k_total",
            help="Queries served from a cached lower-width plan",
        )
        self._breaker_skips = reg.counter(
            "service_breaker_skips_total",
            help="Planning attempts skipped by an open circuit breaker",
        )
        self._deadline_misses = reg.counter(
            "service_deadline_misses_total",
            help="Queries aborted by an expired deadline",
        )
        self._cancellations = reg.counter(
            "service_cancellations_total", help="Queries aborted by cancellation"
        )
        self._memory_aborts = reg.counter(
            "service_memory_aborts_total",
            help="Queries aborted by the memory budget",
        )

    # -- legacy attribute surface (kept for callers and tests) -----------

    @property
    def queries(self) -> int:
        return self._queries.value

    @property
    def finished(self) -> int:
        return self._finished.value

    @property
    def dnf(self) -> int:
        return self._dnf.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def rejected(self) -> int:
        return self._rejected.value

    @property
    def work_units(self) -> int:
        return self._work_units.value

    @property
    def plans_built(self) -> int:
        return self._plans_built.value

    @property
    def plans_cached(self) -> int:
        return self._plans_cached.value

    @property
    def plan_fallbacks(self) -> int:
        return self._plan_fallbacks.value

    @property
    def planning_units(self) -> int:
        return self._planning_units.value

    @property
    def planning_seconds(self) -> float:
        return float(self._planning_seconds.value)

    @property
    def degraded_lower_k(self) -> int:
        return self._degraded_lower_k.value

    @property
    def breaker_skips(self) -> int:
        return self._breaker_skips.value

    @property
    def deadline_misses(self) -> int:
        return self._deadline_misses.value

    @property
    def cancellations(self) -> int:
        return self._cancellations.value

    @property
    def memory_aborts(self) -> int:
        return self._memory_aborts.value

    # ------------------------------------------------------------------

    def record_query(
        self, *, finished: bool, work: int, seconds: float
    ) -> None:
        with self._lock:
            self._queries.inc()
            if finished:
                self._finished.inc()
            else:
                self._dnf.inc()
            self._work_units.inc(work)
            self._latency.observe(seconds)
            self._latency_hdr.observe(seconds)

    def record_error(self) -> None:
        with self._lock:
            self._queries.inc()
            self._errors.inc()

    def record_rejection(self) -> None:
        with self._lock:
            self._rejected.inc()

    def record_plan(
        self,
        *,
        cache_hit: bool,
        units: int = 0,
        seconds: float = 0.0,
        fallback: bool = False,
    ) -> None:
        """One planning event from the structural optimizer handler.

        Args:
            cache_hit: the decomposition came from the plan cache.
            units: deterministic ``"plan"`` work units spent by the
                cost-k-decomp search (0 on a hit).
            seconds: wall-clock planning time (fingerprint + search/rename).
            fallback: the query degraded to the built-in planner.
        """
        with self._lock:
            if cache_hit:
                self._plans_cached.inc()
            else:
                self._plans_built.inc()
            if fallback:
                self._plan_fallbacks.inc()
            self._planning_units.inc(units)
            self._planning_seconds.inc(seconds)

    def record_degradation(self, step: str) -> None:
        """One degradation-ladder step taken.

        ``"lower-k"`` counts a query served from a cached plan at a smaller
        width bound; any other step name counts a builtin fallback (the
        ladder's last resort, shared with :meth:`record_plan`'s
        ``fallback``).
        """
        with self._lock:
            if step == "lower-k":
                self._degraded_lower_k.inc()
            else:
                self._plan_fallbacks.inc()

    def record_breaker_skip(self) -> None:
        with self._lock:
            self._breaker_skips.inc()

    def record_deadline_miss(self) -> None:
        with self._lock:
            self._deadline_misses.inc()

    def record_cancellation(self) -> None:
        with self._lock:
            self._cancellations.inc()

    def record_memory_abort(self) -> None:
        with self._lock:
            self._memory_aborts.inc()

    # ------------------------------------------------------------------

    def snapshot(
        self, cache: Optional[Dict[str, float]] = None
    ) -> Dict[str, object]:
        """A nested dict of every counter; pass the plan cache's snapshot
        to merge it under the ``"cache"`` key."""
        with self._lock:
            hdr = self._latency_hdr.snapshot()
            latency = dict(self._latency.snapshot())
            latency["p50"] = quantile_from_snapshot(hdr, 0.50)
            latency["p90"] = quantile_from_snapshot(hdr, 0.90)
            latency["p99"] = quantile_from_snapshot(hdr, 0.99)
            latency["hdr"] = hdr
            data: Dict[str, object] = {
                "queries": {
                    "submitted": self._queries.snapshot(),
                    "finished": self._finished.snapshot(),
                    "dnf": self._dnf.snapshot(),
                    "errors": self._errors.snapshot(),
                    "rejected": self._rejected.snapshot(),
                    "work_units": self._work_units.snapshot(),
                },
                "latency_seconds": latency,
                "planning": {
                    "built": self._plans_built.snapshot(),
                    "cache_hits": self._plans_cached.snapshot(),
                    "fallbacks": self._plan_fallbacks.snapshot(),
                    "work_units": self._planning_units.snapshot(),
                    "seconds": round(float(self._planning_seconds.value), 6),
                },
                "resilience": {
                    "deadline_misses": self._deadline_misses.snapshot(),
                    "cancellations": self._cancellations.snapshot(),
                    "memory_aborts": self._memory_aborts.snapshot(),
                    "degraded_lower_k": self._degraded_lower_k.snapshot(),
                    "breaker_skips": self._breaker_skips.snapshot(),
                },
            }
        if cache is not None:
            data["cache"] = cache
        return data

    def render_text(self) -> str:
        """Prometheus-flavoured exposition of the underlying registry."""
        return self.registry.render_text()


class SupervisorMetrics:
    """Cluster self-healing counters for a supervised shard router.

    Registry-backed like :class:`ServiceMetrics` (``shard_*`` instrument
    names), with one :class:`LatencyStat` for shard recovery times — the
    down-to-serving interval per restart — so availability reports can
    quote exact recovery percentiles even after cross-run merging.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = make_lock("SupervisorMetrics._lock")
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._worker_deaths = reg.counter(
            "shard_worker_deaths_total",
            help="Worker processes observed dead by the watchdog",
        )
        self._restarts = reg.counter(
            "shard_worker_restarts_total",
            help="Worker processes respawned by the supervisor",
        )
        self._breaker_opens = reg.counter(
            "shard_breaker_opens_total",
            help="Shard restart budgets exhausted (breaker opened)",
        )
        self._failovers = reg.counter(
            "shard_failovers_total",
            help="In-flight queries re-dispatched to a failover shard",
        )
        self._unavailable = reg.counter(
            "shard_unavailable_total",
            help="Queries failed with ShardUnavailable (budgets exhausted)",
        )
        self._ring_epochs = reg.counter(
            "shard_ring_epochs_total",
            help="Ring epoch bumps (route-LRU invalidations)",
        )
        self._recovery = LatencyStat()

    @property
    def worker_deaths(self) -> int:
        return self._worker_deaths.value

    @property
    def restarts(self) -> int:
        return self._restarts.value

    @property
    def breaker_opens(self) -> int:
        return self._breaker_opens.value

    @property
    def failovers(self) -> int:
        return self._failovers.value

    @property
    def unavailable(self) -> int:
        return self._unavailable.value

    @property
    def ring_epochs(self) -> int:
        return self._ring_epochs.value

    def record_worker_death(self) -> None:
        with self._lock:
            self._worker_deaths.inc()

    def record_restart(self) -> None:
        with self._lock:
            self._restarts.inc()

    def record_breaker_open(self) -> None:
        with self._lock:
            self._breaker_opens.inc()

    def record_failover(self) -> None:
        with self._lock:
            self._failovers.inc()

    def record_unavailable(self) -> None:
        with self._lock:
            self._unavailable.inc()

    def record_ring_epoch(self) -> None:
        with self._lock:
            self._ring_epochs.inc()

    def observe_recovery(self, seconds: float) -> None:
        with self._lock:
            self._recovery.observe(seconds)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "worker_deaths": self._worker_deaths.snapshot(),
                "restarts": self._restarts.snapshot(),
                "breaker_opens": self._breaker_opens.snapshot(),
                "failovers": self._failovers.snapshot(),
                "unavailable": self._unavailable.snapshot(),
                "ring_epochs": self._ring_epochs.snapshot(),
                "recovery_seconds": self._recovery.snapshot(),
            }

    def render_text(self) -> str:
        """Prometheus-flavoured exposition of the underlying registry."""
        return self.registry.render_text()


def render_snapshot(snapshot: Dict[str, object], indent: str = "") -> str:
    """Human-readable multi-line rendering of a metrics snapshot."""
    lines = []
    for key, value in snapshot.items():
        if isinstance(value, dict):
            lines.append(f"{indent}{key}:")
            lines.append(render_snapshot(value, indent + "  "))
        else:
            lines.append(f"{indent}{key}: {value}")
    return "\n".join(lines)

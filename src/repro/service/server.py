"""``QueryService``: concurrent SQL serving over the structural optimizer.

The production shape the ROADMAP asks for: a :class:`QueryService` owns a
:class:`~repro.engine.dbms.SimulatedDBMS` coupled to the structural
optimizer (:func:`~repro.core.integration.install_structural_optimizer`),
fronted by

* a **plan cache** — repeated query templates skip cost-k-decomp entirely
  (the paper's millisecond, data-size-independent structural plan, built
  once per template instead of once per query);
* an **executor pool** — a fixed number of workers over a *bounded* queue;
  saturation rejects with :class:`~repro.errors.ServiceOverloaded`
  (backpressure) instead of queueing without bound;
* **per-query work budgets** — every admitted query runs under its own
  :class:`~repro.metering.WorkMeter` budget, so one pathological query
  becomes a DNF result, not a stuck worker;
* **graceful degradation** — templates with no width-≤k decomposition fall
  back to the engine's built-in planner (and the failure itself is cached,
  so repetitions skip the failing search).

Queries are read-only, so concurrent executions over the shared database
need no further coordination; all mutable serving state (caches, metrics,
meters) is lock-guarded.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Union

from repro.engine.dbms import DBMSResult, SimulatedDBMS
from repro.obs.insights.registry import (
    NULL_INSIGHTS,
    InsightsRegistry,
    NullInsights,
)
from repro.errors import (
    DeadlineExceeded,
    MemoryBudgetExceeded,
    QueryCancelled,
    ReproError,
)
from repro.query import ast
from repro.core.integration import install_structural_optimizer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import MemoryBudget
from repro.resilience.context import (
    CancellationToken,
    Deadline,
    ExecutionContext,
    resilient,
)
from repro.resilience.faults import FaultInjector
from repro.service.executor_pool import ExecutorPool
from repro.service.metrics import ServiceMetrics
from repro.service.plancache import PlanCache


class QueryService:
    """A concurrent query-serving layer over one simulated DBMS.

    Args:
        dbms: the engine to serve from; its optimizer handler is replaced
            (and restored on :meth:`close`).
        max_width: width bound k for cost-k-decomp.
        workers: pool worker threads.
        queue_capacity: maximum queries waiting for a worker; beyond it,
            :meth:`submit` rejects with ``ServiceOverloaded``.
        cache_capacity: plan cache entries (0 disables plan caching).
        cache_ttl_seconds: plan cache entry lifetime (None = no expiry).
        work_budget: default per-query work-unit budget (None = unlimited).
        fallback_to_builtin: degrade to the built-in planner when no
            width-≤k decomposition exists.
        optimize: run Procedure Optimize on fresh decompositions.
        deadline_seconds: default per-query wall-clock deadline; expiry
            aborts the query at its next cooperative checkpoint with
            :class:`~repro.errors.DeadlineExceeded`.
        memory_budget_cells: per-query cap on live materialized cells
            (rows × width); exceeding it raises
            :class:`~repro.errors.MemoryBudgetExceeded` deterministically
            instead of OOM-ing the process.
        max_intermediate_rows: per-query cap on any single materialized
            intermediate's row count.
        fault_injector: a deterministic
            :class:`~repro.resilience.faults.FaultInjector` threaded into
            every query's execution context (chaos testing).
        breaker: the per-template :class:`CircuitBreaker` backing the
            degradation ladder; pass one explicitly to share or configure
            it, or leave the default (3 failures, 30 s cooldown).
        parallel_workers: ``>= 2`` evaluates each query's decomposition
            tree *intra-query parallel* on that many
            :class:`repro.parallel.SubtreePool` workers (results identical
            to serial, rows and order); ``0``/``1`` keeps the serial
            evaluator.  Orthogonal to ``workers``, which bounds how many
            *queries* run concurrently.
        insights: a per-template
            :class:`~repro.obs.insights.registry.InsightsRegistry`
            receiving phase histograms, SLO outcomes, and slow-query
            captures from the optimizer handler; None (the default)
            installs the zero-cost :data:`NULL_INSIGHTS` no-op.
    """

    def __init__(
        self,
        dbms: SimulatedDBMS,
        *,
        max_width: int = 4,
        workers: int = 4,
        queue_capacity: int = 32,
        cache_capacity: int = 128,
        cache_ttl_seconds: Optional[float] = None,
        work_budget: Optional[int] = None,
        fallback_to_builtin: bool = True,
        optimize: bool = True,
        deadline_seconds: Optional[float] = None,
        memory_budget_cells: Optional[int] = None,
        max_intermediate_rows: Optional[int] = None,
        fault_injector: Optional[FaultInjector] = None,
        breaker: Optional[CircuitBreaker] = None,
        parallel_workers: int = 0,
        insights: "Optional[Union[InsightsRegistry, NullInsights]]" = None,
    ):
        self.dbms = dbms
        self.work_budget = work_budget
        self.deadline_seconds = deadline_seconds
        self.memory_budget_cells = memory_budget_cells
        self.max_intermediate_rows = max_intermediate_rows
        self.fault_injector = fault_injector
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: Parent token of every in-flight query; :meth:`drain` cancels it.
        self.drain_token = CancellationToken()
        self.metrics = ServiceMetrics()
        self.plan_cache = PlanCache(
            capacity=cache_capacity, ttl_seconds=cache_ttl_seconds
        )
        self.parallel_workers = parallel_workers
        #: Per-template insights sink; the disabled NULL_INSIGHTS (every
        #: call a constant no-op, zero work-unit cost) unless one is given.
        self.insights = insights if insights is not None else NULL_INSIGHTS
        self._handler = install_structural_optimizer(
            dbms,
            max_width=max_width,
            fallback_to_builtin=fallback_to_builtin,
            optimize=optimize,
            plan_cache=self.plan_cache,
            metrics=self.metrics,
            breaker=self.breaker,
            parallel_workers=parallel_workers,
            insights=self.insights,
        )
        self.pool = ExecutorPool(
            workers=workers, queue_capacity=queue_capacity, name="hdqo-serve"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------

    def execute(
        self,
        sql: Union[str, ast.SelectQuery],
        work_budget: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        token: Optional[CancellationToken] = None,
    ) -> DBMSResult:
        """Run one query synchronously in the calling thread.

        The same planning/caching/metrics path as pooled execution — used
        for warm-up and serial baselines.
        """
        return self._run(sql, work_budget, deadline_seconds, token)

    def submit(
        self,
        sql: Union[str, ast.SelectQuery],
        work_budget: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        token: Optional[CancellationToken] = None,
    ) -> "Future[DBMSResult]":
        """Admit one query to the pool; rejects when saturated.

        Raises:
            ServiceOverloaded: the waiting queue is at capacity; the
                rejection is counted in the metrics.
            ServiceClosed: the service has been closed.
        """
        from repro.errors import ServiceOverloaded

        try:
            return self.pool.submit(
                self._run, sql, work_budget, deadline_seconds, token
            )
        except ServiceOverloaded:
            self.metrics.record_rejection()
            raise

    def run_all(
        self,
        queries: Sequence[Union[str, ast.SelectQuery]],
        work_budget: Optional[int] = None,
        return_exceptions: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> "List[Union[DBMSResult, Exception]]":
        """Run a batch through the pool, blocking for queue room (never
        rejecting), and return results in submission order.

        With ``return_exceptions``, a query that raises a library error
        (a syntax error, a missed deadline, a blown budget) yields its
        exception object in place of a result instead of aborting the
        whole batch — the CLI's behaviour.  Cancellation is different: a
        :class:`~repro.errors.QueryCancelled` means the *caller* asked to
        stop, so it always propagates and aborts the batch.  Anything
        outside :class:`~repro.errors.ReproError` is a bug, not a query
        outcome, and propagates too.
        """
        futures = [
            self.pool.submit_blocking(
                self._run, sql, work_budget, deadline_seconds
            )
            for sql in queries
        ]
        results: List[Union[DBMSResult, Exception]] = []
        for future in futures:
            try:
                results.append(future.result())
            except QueryCancelled:
                raise
            except ReproError as exc:
                if not return_exceptions:
                    raise
                results.append(exc)
        return results

    def warm_up(
        self, queries: Sequence[Union[str, ast.SelectQuery]]
    ) -> int:
        """Plan (and run) each query once to populate the plan cache.

        Returns the number of plan-cache entries after warm-up.
        """
        for sql in queries:
            self._run(sql, self.work_budget)
        return len(self.plan_cache)

    # ------------------------------------------------------------------

    def _make_context(
        self,
        deadline_seconds: Optional[float],
        token: Optional[CancellationToken],
    ) -> Optional[ExecutionContext]:
        """The per-query resilience context, or None when nothing is bounded."""
        seconds = (
            deadline_seconds
            if deadline_seconds is not None
            else self.deadline_seconds
        )
        deadline = Deadline.after(seconds) if seconds is not None else None
        memory = None
        if (
            self.memory_budget_cells is not None
            or self.max_intermediate_rows is not None
        ):
            memory = MemoryBudget(
                max_cells=self.memory_budget_cells,
                max_intermediate_rows=self.max_intermediate_rows,
            )
        query_token = CancellationToken(
            parents=(self.drain_token,) + ((token,) if token is not None else ())
        )
        if (
            deadline is None
            and token is None
            and memory is None
            and self.fault_injector is None
            and not self.drain_token.cancelled
        ):
            # Nothing to enforce: skip the context entirely so the hot
            # path's checkpoints stay no-ops (the ≤2 % overhead guarantee).
            return None
        return ExecutionContext(
            deadline=deadline,
            token=query_token,
            memory=memory,
            faults=self.fault_injector,
        )

    def _run(
        self,
        sql: Union[str, ast.SelectQuery],
        work_budget: Optional[int],
        deadline_seconds: Optional[float] = None,
        token: Optional[CancellationToken] = None,
    ) -> DBMSResult:
        budget = work_budget if work_budget is not None else self.work_budget
        context = self._make_context(deadline_seconds, token)
        started = time.perf_counter()
        try:
            if context is None:
                result = self.dbms.run_sql(sql, work_budget=budget)
            else:
                with resilient(context):
                    result = self.dbms.run_sql(sql, work_budget=budget)
        except DeadlineExceeded:
            self.metrics.record_error()
            self.metrics.record_deadline_miss()
            raise
        except QueryCancelled:
            self.metrics.record_error()
            self.metrics.record_cancellation()
            raise
        except MemoryBudgetExceeded:
            self.metrics.record_error()
            self.metrics.record_memory_abort()
            raise
        except ReproError:
            self.metrics.record_error()
            raise
        self.metrics.record_query(
            finished=result.finished,
            work=result.work,
            seconds=time.perf_counter() - started,
        )
        return result

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Full serving snapshot: metrics + plan cache + pool."""
        data = self.metrics.snapshot(cache=self.plan_cache.snapshot())
        data["pool"] = self.pool.snapshot()
        if self.insights.enabled:
            data["insights"] = self.insights.snapshot()
        return data

    def drain(self, grace_seconds: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admitting, cancel, bounded wait.

        Cancels every queued-but-not-started query, flips the drain token
        (in-flight queries with an active context abort at their next
        checkpoint with :class:`~repro.errors.QueryCancelled`), and joins
        the workers for at most ``grace_seconds``.

        Returns:
            True when every worker exited within the grace period.
        """
        self._closed = True
        self.drain_token.cancel("service draining")
        drained = self.pool.shutdown(
            wait=True, grace_seconds=grace_seconds, cancel_pending=True
        )
        if self.dbms.optimizer_handler is self._handler:
            self.dbms.set_optimizer_handler(None)
        self._close_parallel_pool()
        return drained

    def close(self) -> None:
        """Drain the pool and restore the engine's built-in planner."""
        if self._closed:
            return
        self._closed = True
        self.pool.shutdown(wait=True)
        if self.dbms.optimizer_handler is self._handler:
            self.dbms.set_optimizer_handler(None)
        self._close_parallel_pool()

    def _close_parallel_pool(self) -> None:
        parallel_pool = getattr(self._handler, "parallel_pool", None)
        if parallel_pool is not None:
            parallel_pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

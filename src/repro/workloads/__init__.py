"""Benchmark workloads of §6 of the paper.

* :mod:`repro.workloads.tpch` — a dbgen-equivalent generator for the
  TPC-H schema (all eight tables, key relationships, realistic value
  domains) with a ``size_mb`` knob mapped to scaled row counts;
* :mod:`repro.workloads.tpch_queries` — Q5 and Q8 (plus extra TPC-H-style
  queries) in the library's SQL subset;
* :mod:`repro.workloads.synthetic` — the acyclic-line and chain query
  families with cardinality and selectivity knobs, plus their uniform
  random data generator.
"""

from repro.workloads.tpch import (
    TPCH_SCHEMA,
    generate_tpch_database,
    tpch_row_counts,
)
from repro.workloads.tpch_queries import (
    TPCH_QUERIES,
    query_q3,
    query_q5,
    query_q7,
    query_q8,
    query_q9,
    query_q10,
)
from repro.workloads.synthetic import (
    StarConfig,
    SyntheticConfig,
    generate_star_database,
    generate_synthetic_database,
    star_query_sql,
    synthetic_query_sql,
)

__all__ = [
    "TPCH_SCHEMA",
    "generate_tpch_database",
    "tpch_row_counts",
    "TPCH_QUERIES",
    "query_q3",
    "query_q5",
    "query_q7",
    "query_q8",
    "query_q9",
    "query_q10",
    "StarConfig",
    "SyntheticConfig",
    "generate_star_database",
    "generate_synthetic_database",
    "star_query_sql",
    "synthetic_query_sql",
]

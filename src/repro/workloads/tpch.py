"""TPC-H schema and a dbgen-equivalent scaled data generator.

The paper evaluates on databases produced by TPC's ``dbgen`` tool at sizes
200 MB–1000 MB.  This module reproduces the *schema* faithfully (all eight
tables, the key relationships, the fixed region/nation hierarchy, realistic
value domains for the columns the benchmark queries touch) and maps the
paper's ``size_mb`` axis onto row counts scaled for an in-memory Python
engine:

    rows(table) = dbgen_rows(table, SF = size_mb / 1000) × scale_shrink

With the default ``scale_shrink = 0.01`` a "1000 MB" database holds 60 000
lineitem rows — small enough to run every figure in minutes, while the
relative growth across the 200 → 1000 sweep (what Fig. 8 plots) is exactly
dbgen's.

Only columns irrelevant to any benchmark query (comments, addresses,
phones) are omitted; everything the queries and the statistics layer need
is present.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.relational.database import Database
from repro.relational.schema import AttributeType, DatabaseSchema, RelationSchema

# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------

I = AttributeType.INT
F = AttributeType.FLOAT
S = AttributeType.STRING
D = AttributeType.DATE

TPCH_SCHEMA = DatabaseSchema(
    [
        RelationSchema.of(
            "region",
            [("r_regionkey", I), ("r_name", S)],
            key=["r_regionkey"],
        ),
        RelationSchema.of(
            "nation",
            [("n_nationkey", I), ("n_name", S), ("n_regionkey", I)],
            key=["n_nationkey"],
        ),
        RelationSchema.of(
            "supplier",
            [
                ("s_suppkey", I),
                ("s_name", S),
                ("s_nationkey", I),
                ("s_acctbal", F),
            ],
            key=["s_suppkey"],
        ),
        RelationSchema.of(
            "customer",
            [
                ("c_custkey", I),
                ("c_name", S),
                ("c_nationkey", I),
                ("c_acctbal", F),
                ("c_mktsegment", S),
            ],
            key=["c_custkey"],
        ),
        RelationSchema.of(
            "part",
            [
                ("p_partkey", I),
                ("p_name", S),
                ("p_mfgr", S),
                ("p_brand", S),
                ("p_type", S),
                ("p_size", I),
                ("p_retailprice", F),
            ],
            key=["p_partkey"],
        ),
        RelationSchema.of(
            "partsupp",
            [
                ("ps_partkey", I),
                ("ps_suppkey", I),
                ("ps_availqty", I),
                ("ps_supplycost", F),
            ],
            key=["ps_partkey", "ps_suppkey"],
        ),
        RelationSchema.of(
            "orders",
            [
                ("o_orderkey", I),
                ("o_custkey", I),
                ("o_orderstatus", S),
                ("o_totalprice", F),
                ("o_orderdate", D),
                ("o_orderpriority", S),
            ],
            key=["o_orderkey"],
        ),
        RelationSchema.of(
            "lineitem",
            [
                ("l_orderkey", I),
                ("l_partkey", I),
                ("l_suppkey", I),
                ("l_linenumber", I),
                ("l_quantity", F),
                ("l_extendedprice", F),
                ("l_discount", F),
                ("l_returnflag", S),
                ("l_shipdate", D),
            ],
            key=["l_orderkey", "l_linenumber"],
        ),
    ]
)

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

# (nation name, region index) — dbgen's fixed 25-nation table.
NATIONS: Tuple[Tuple[str, int], ...] = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")
PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
PART_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark",
    "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
    "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
    "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light",
    "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
    "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
    "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
    "purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
    "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel",
    "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
)
MANUFACTURERS = tuple(f"Manufacturer#{i}" for i in range(1, 6))
BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))

# dbgen base row counts at scale factor 1.
_DBGEN_SF1 = {
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

MIN_ORDER_DATE = "1992-01-01"
MAX_ORDER_DATE = "1998-08-02"


def tpch_row_counts(size_mb: float, scale_shrink: float = 0.01) -> Dict[str, int]:
    """Row counts of the scaled database of a given nominal size.

    region/nation have fixed sizes (5 and 25, as in dbgen); the other
    tables scale linearly with ``size_mb``.
    """
    scale = max(size_mb, 1.0) / 1000.0 * scale_shrink
    counts = {"region": len(REGIONS), "nation": len(NATIONS)}
    for table, base in _DBGEN_SF1.items():
        counts[table] = max(int(round(base * scale)), 10)
    return counts


def _random_date(rng: random.Random, lo: str = MIN_ORDER_DATE, hi: str = MAX_ORDER_DATE) -> str:
    """Uniform ISO date in [lo, hi]."""
    import datetime

    lo_date = datetime.date.fromisoformat(lo)
    hi_date = datetime.date.fromisoformat(hi)
    span = (hi_date - lo_date).days
    return (lo_date + datetime.timedelta(days=rng.randrange(span + 1))).isoformat()


def generate_tpch_database(
    size_mb: float = 100.0,
    seed: int = 0,
    scale_shrink: float = 0.01,
    analyze: bool = False,
) -> Database:
    """Generate a scaled TPC-H database.

    Args:
        size_mb: nominal size on the paper's 200–1000 MB axis.
        seed: RNG seed — identical seeds give identical databases.
        scale_shrink: in-memory scale-down factor (see module docstring).
        analyze: gather statistics after loading (equivalent to running
            ANALYZE; costs a full scan, which the overhead experiment
            measures separately).
    """
    rng = random.Random(seed)
    counts = tpch_row_counts(size_mb, scale_shrink)
    db = Database(f"tpch_{int(size_mb)}mb")

    db.create_table(
        TPCH_SCHEMA.relation("region"),
        [(i, name) for i, name in enumerate(REGIONS)],
    )
    db.create_table(
        TPCH_SCHEMA.relation("nation"),
        [(i, name, region) for i, (name, region) in enumerate(NATIONS)],
    )

    n_supplier = counts["supplier"]
    db.create_table(
        TPCH_SCHEMA.relation("supplier"),
        [
            (
                k,
                f"Supplier#{k:09d}",
                rng.randrange(len(NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
            for k in range(1, n_supplier + 1)
        ],
    )

    n_customer = counts["customer"]
    db.create_table(
        TPCH_SCHEMA.relation("customer"),
        [
            (
                k,
                f"Customer#{k:09d}",
                rng.randrange(len(NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(SEGMENTS),
            )
            for k in range(1, n_customer + 1)
        ],
    )

    n_part = counts["part"]
    db.create_table(
        TPCH_SCHEMA.relation("part"),
        [
            (
                k,
                " ".join(rng.sample(PART_NAME_WORDS, 5)),
                rng.choice(MANUFACTURERS),
                rng.choice(BRANDS),
                " ".join(
                    (
                        rng.choice(TYPE_SYLLABLE_1),
                        rng.choice(TYPE_SYLLABLE_2),
                        rng.choice(TYPE_SYLLABLE_3),
                    )
                ),
                rng.randrange(1, 51),
                round(900 + k % 1000 + rng.uniform(0, 100), 2),
            )
            for k in range(1, n_part + 1)
        ],
    )

    n_partsupp = counts["partsupp"]
    partsupp_rows: List[Tuple[object, ...]] = []
    seen_ps = set()
    while len(partsupp_rows) < n_partsupp:
        pk = rng.randrange(1, n_part + 1)
        sk = rng.randrange(1, n_supplier + 1)
        if (pk, sk) in seen_ps:
            continue
        seen_ps.add((pk, sk))
        partsupp_rows.append(
            (pk, sk, rng.randrange(1, 10_000), round(rng.uniform(1.0, 1000.0), 2))
        )
    db.create_table(TPCH_SCHEMA.relation("partsupp"), partsupp_rows)

    n_orders = counts["orders"]
    db.create_table(
        TPCH_SCHEMA.relation("orders"),
        [
            (
                k,
                rng.randrange(1, n_customer + 1),
                rng.choice("OFP"),
                round(rng.uniform(1000.0, 500_000.0), 2),
                _random_date(rng),
                rng.choice(PRIORITIES),
            )
            for k in range(1, n_orders + 1)
        ],
    )

    n_lineitem = counts["lineitem"]
    lineitem_rows: List[Tuple[object, ...]] = []
    line_number: Dict[int, int] = {}
    for _ in range(n_lineitem):
        ok = rng.randrange(1, n_orders + 1)
        line_number[ok] = line_number.get(ok, 0) + 1
        quantity = float(rng.randrange(1, 51))
        extended = round(quantity * rng.uniform(900.0, 2000.0), 2)
        lineitem_rows.append(
            (
                ok,
                rng.randrange(1, n_part + 1),
                rng.randrange(1, n_supplier + 1),
                line_number[ok],
                quantity,
                extended,
                round(rng.choice([0.0, 0.01, 0.02, 0.04, 0.05, 0.06, 0.08, 0.1]), 2),
                rng.choice("ARN"),
                _random_date(rng),
            )
        )
    db.create_table(TPCH_SCHEMA.relation("lineitem"), lineitem_rows)

    if analyze:
        db.analyze()
    return db

"""Synthetic acyclic-line and chain workloads (§6 of the paper).

*Acyclic* queries are lines:  q(y) ← p₁(x₁), …, p_n(x_n) with
x_i ∩ x_{i+1} ≠ ∅ and non-adjacent atoms disjoint.  *Chain* queries close
the line into a cycle (x₁ ∩ x_n ≠ ∅) — the simplest cyclic variation,
hypertree width 2.

Data is generated "randomly by using an uniform distribution over a fixed
range of values, setting the desired values for the cardinality of each
relation and the selectivity of each attribute".  Selectivity ``s`` is the
percentage of distinct values per attribute: an attribute of a relation
with cardinality N and selectivity s draws uniformly from
``V = max(1, round(N·s/100))`` values.  Lower selectivity ⇒ fewer distinct
values ⇒ larger joins ⇒ bigger advantage for the structural method, which
is the ordering Fig. 7 shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import QueryError
from repro.relational.database import Database
from repro.relational.schema import AttributeType, RelationSchema


@dataclass(frozen=True)
class SyntheticConfig:
    """One synthetic experiment point.

    Attributes:
        n_atoms: number of body atoms (the paper sweeps 2–10).
        cardinality: tuples per relation (450 / 500 / 750 / 1000 in §6).
        selectivity: percent distinct values per attribute (30 / 60 / 90).
        cyclic: False = acyclic line query, True = chain query.
        seed: RNG seed for the data generator.
    """

    n_atoms: int
    cardinality: int = 500
    selectivity: int = 60
    cyclic: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_atoms < 2:
            raise QueryError("synthetic queries need at least 2 atoms")
        if not (1 <= self.selectivity <= 100):
            raise QueryError("selectivity is a percentage in [1, 100]")
        if self.cardinality < 1:
            raise QueryError("cardinality must be positive")

    @property
    def distinct_values(self) -> int:
        """V: distinct values per attribute at this cardinality/selectivity."""
        return max(1, round(self.cardinality * self.selectivity / 100))

    @property
    def label(self) -> str:
        kind = "chain" if self.cyclic else "acyclic"
        return (
            f"{kind}-n{self.n_atoms}-card{self.cardinality}"
            f"-sel{self.selectivity}"
        )


def generate_synthetic_database(config: SyntheticConfig) -> Database:
    """Generate the relations rel0 … rel{n-1} for a synthetic query.

    Relation ``rel_i`` has two attributes ``x{i}`` and ``y{i}``; the query
    equates ``y{i} = x{i+1}`` (and ``y{n-1} = x0`` when cyclic).  Values
    are uniform over ``range(V)``.
    """
    rng = random.Random(config.seed)
    db = Database(config.label)
    v = config.distinct_values
    for i in range(config.n_atoms):
        schema = RelationSchema.of(
            f"rel{i}",
            [(f"x{i}", AttributeType.INT), (f"y{i}", AttributeType.INT)],
        )
        rows = [
            (rng.randrange(v), rng.randrange(v))
            for _ in range(config.cardinality)
        ]
        db.create_table(schema, rows)
    return db


def synthetic_query_sql(config: SyntheticConfig) -> str:
    """The SQL text of the line/chain query for a configuration.

    Output variables: the first atom's attributes (``q(y)`` with y = x₁ in
    the paper's notation).  A small head taken from one atom keeps the
    answer linear in the data — the regime where decomposition-based
    evaluation enjoys its polynomial guarantee while binary join plans
    still materialize the exponentially-growing intermediate joins.
    """
    n = config.n_atoms
    tables = ", ".join(f"rel{i}" for i in range(n))
    conditions: List[str] = [
        f"rel{i}.y{i} = rel{i + 1}.x{i + 1}" for i in range(n - 1)
    ]
    if config.cyclic:
        conditions.append(f"rel{n - 1}.y{n - 1} = rel0.x0")
    where = " AND ".join(conditions)
    return f"SELECT rel0.x0, rel0.y0 FROM {tables} WHERE {where}"


def synthetic_workload(
    config: SyntheticConfig,
) -> Tuple[Database, str]:
    """Convenience: ``(database, sql)`` for one experiment point."""
    return generate_synthetic_database(config), synthetic_query_sql(config)


# ---------------------------------------------------------------------------
# Star-schema family (acyclic, wide fact atom)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StarConfig:
    """A star join: one fact relation keyed to ``n_dimensions`` dimensions.

    Not in the paper's §6 sweep, but the canonical *wide-atom* case its
    introduction argues for: the fact atom's arity equals the number of
    dimensions, so the primal graph is a clique (treewidth = n) while the
    hypergraph is acyclic (hypertree width 1).

    Attributes:
        n_dimensions: dimension tables (fact arity = n_dimensions + 1).
        fact_rows / dimension_rows: cardinalities.
        selectivity: percent distinct values for dimension payloads.
        seed: RNG seed.
    """

    n_dimensions: int
    fact_rows: int = 1000
    dimension_rows: int = 50
    selectivity: int = 60
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_dimensions < 1:
            raise QueryError("a star needs at least one dimension")
        if self.fact_rows < 1 or self.dimension_rows < 1:
            raise QueryError("cardinalities must be positive")


def generate_star_database(config: StarConfig) -> Database:
    """Generate ``fact(m, k0..k{d-1})`` plus ``dim{i}(k{i}, payload{i})``."""
    rng = random.Random(config.seed)
    db = Database(f"star-d{config.n_dimensions}")
    v = max(1, round(config.dimension_rows * config.selectivity / 100))

    fact_schema = RelationSchema.of(
        "fact",
        [("measure", AttributeType.INT)]
        + [(f"k{i}", AttributeType.INT) for i in range(config.n_dimensions)],
    )
    db.create_table(
        fact_schema,
        [
            tuple(
                [rng.randrange(1000)]
                + [rng.randrange(config.dimension_rows) for _ in range(config.n_dimensions)]
            )
            for _ in range(config.fact_rows)
        ],
    )
    for i in range(config.n_dimensions):
        schema = RelationSchema.of(
            f"dim{i}",
            [(f"k{i}", AttributeType.INT), (f"payload{i}", AttributeType.INT)],
        )
        db.create_table(
            schema,
            [(key, rng.randrange(v)) for key in range(config.dimension_rows)],
        )
    return db


def star_query_sql(config: StarConfig) -> str:
    """``SELECT payload0, sum(measure) … GROUP BY payload0`` over the star."""
    tables = ["fact"] + [f"dim{i}" for i in range(config.n_dimensions)]
    conditions = [
        f"fact.k{i} = dim{i}.k{i}" for i in range(config.n_dimensions)
    ]
    return (
        "SELECT dim0.payload0, sum(fact.measure) AS total FROM "
        + ", ".join(tables)
        + " WHERE "
        + " AND ".join(conditions)
        + " GROUP BY dim0.payload0"
    )

"""TPC-H benchmark queries in the library's SQL subset.

Q5 is verbatim from the paper's introduction (modulo parameter values).
Q8's official text wraps the 8-relation join core in a derived table with a
CASE expression; the library's conjunctive subset has neither, so
:func:`query_q8` keeps the *join core* — the 8-way cyclic join (hypertree
width 2, nation referenced twice) whose structure is what the paper's
Fig. 8(b) measures — and aggregates revenue by supplier nation.  Q3 and Q10
(both acyclic) are included as additional workloads.
"""

from __future__ import annotations

from typing import Callable, Dict


def query_q5(region: str = "ASIA", date_from: str = "1994-01-01") -> str:
    """TPC-H Q5 — local supplier volume (hypertree width 2)."""
    return f"""
    SELECT n_name,
           sum(l_extendedprice * (1 - l_discount)) AS revenue
    FROM customer, orders, lineitem, supplier, nation, region
    WHERE c_custkey = o_custkey
      AND l_orderkey = o_orderkey
      AND l_suppkey = s_suppkey
      AND c_nationkey = s_nationkey
      AND s_nationkey = n_nationkey
      AND n_regionkey = r_regionkey
      AND r_name = '{region}'
      AND o_orderdate >= date '{date_from}'
      AND o_orderdate < date '{date_from}' + interval '1' year
    GROUP BY n_name
    ORDER BY revenue DESC
    """


def query_q8(
    region: str = "AMERICA",
    part_type: str = "ECONOMY ANODIZED STEEL",
    date_from: str = "1995-01-01",
    date_to: str = "1996-12-31",
) -> str:
    """TPC-H Q8 join core — national market share (hypertree width 2).

    Eight relations with nation referenced twice (customer side and
    supplier side); the official CASE/derived-table shell is replaced by a
    GROUP BY over the supplier nation (see module docstring).
    """
    return f"""
    SELECT n2.n_name,
           sum(l_extendedprice * (1 - l_discount)) AS volume
    FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region
    WHERE p_partkey = l_partkey
      AND s_suppkey = l_suppkey
      AND l_orderkey = o_orderkey
      AND o_custkey = c_custkey
      AND c_nationkey = n1.n_nationkey
      AND n1.n_regionkey = r_regionkey
      AND r_name = '{region}'
      AND s_nationkey = n2.n_nationkey
      AND o_orderdate BETWEEN date '{date_from}' AND date '{date_to}'
      AND p_type = '{part_type}'
    GROUP BY n2.n_name
    ORDER BY volume DESC
    """


def query_q3(segment: str = "BUILDING", date: str = "1995-03-15") -> str:
    """TPC-H Q3 — shipping priority (acyclic, 3 relations)."""
    return f"""
    SELECT l_orderkey,
           sum(l_extendedprice * (1 - l_discount)) AS revenue,
           o_orderdate
    FROM customer, orders, lineitem
    WHERE c_mktsegment = '{segment}'
      AND c_custkey = o_custkey
      AND l_orderkey = o_orderkey
      AND o_orderdate < date '{date}'
      AND l_shipdate > date '{date}'
    GROUP BY l_orderkey, o_orderdate
    ORDER BY revenue DESC
    LIMIT 10
    """


def query_q10(date_from: str = "1993-10-01") -> str:
    """TPC-H Q10 — returned item reporting (acyclic, 4 relations)."""
    return f"""
    SELECT c_custkey, c_name,
           sum(l_extendedprice * (1 - l_discount)) AS revenue,
           n_name
    FROM customer, orders, lineitem, nation
    WHERE c_custkey = o_custkey
      AND l_orderkey = o_orderkey
      AND o_orderdate >= date '{date_from}'
      AND o_orderdate < date '{date_from}' + interval '3' month
      AND l_returnflag = 'R'
      AND c_nationkey = n_nationkey
    GROUP BY c_custkey, c_name, n_name
    ORDER BY revenue DESC
    LIMIT 20
    """


def query_q7(
    nation1: str = "FRANCE",
    nation2: str = "GERMANY",
    date_from: str = "1995-01-01",
    date_to: str = "1996-12-31",
) -> str:
    """TPC-H Q7 join core — volume shipping (nation referenced twice).

    The official query filters on a disjunction of the two nation pairings;
    the conjunctive subset keeps one direction (supplier nation = nation1,
    customer nation = nation2), which preserves the 6-relation join shape
    with the double nation reference.
    """
    return f"""
    SELECT n1.n_name, n2.n_name,
           sum(l_extendedprice * (1 - l_discount)) AS revenue
    FROM supplier, lineitem, orders, customer, nation n1, nation n2
    WHERE s_suppkey = l_suppkey
      AND o_orderkey = l_orderkey
      AND c_custkey = o_custkey
      AND s_nationkey = n1.n_nationkey
      AND c_nationkey = n2.n_nationkey
      AND n1.n_name = '{nation1}'
      AND n2.n_name = '{nation2}'
      AND l_shipdate BETWEEN date '{date_from}' AND date '{date_to}'
    GROUP BY n1.n_name, n2.n_name
    ORDER BY revenue DESC
    """


def query_q9(color: str = "green") -> str:
    """TPC-H Q9 join core — product-type profit.

    The official query aggregates profit (revenue − supply cost) per nation
    over a 6-relation join including partsupp, whose (partkey, suppkey)
    pair links twice into lineitem; the official ``p_name LIKE '%color%'``
    filter is kept verbatim.
    """
    return f"""
    SELECT n_name,
           sum(l_extendedprice * (1 - l_discount)) AS profit
    FROM part, supplier, lineitem, partsupp, orders, nation
    WHERE s_suppkey = l_suppkey
      AND ps_suppkey = l_suppkey
      AND ps_partkey = l_partkey
      AND p_partkey = l_partkey
      AND o_orderkey = l_orderkey
      AND s_nationkey = n_nationkey
      AND p_name LIKE '%{color}%'
    GROUP BY n_name
    ORDER BY profit DESC
    """


TPCH_QUERIES: Dict[str, Callable[..., str]] = {
    "q3": query_q3,
    "q5": query_q5,
    "q7": query_q7,
    "q8": query_q8,
    "q9": query_q9,
    "q10": query_q10,
}

"""Command-line interface: ``hdqo`` (or ``python -m repro``).

Subcommands:

* ``decompose`` — parse a SQL query (against the TPC-H schema or a named
  workload), print its hypergraph and q-hypertree decomposition;
* ``run`` — execute a TPC-H query on a generated database with every
  configured system and print the comparison;
* ``experiment`` — reproduce a paper figure (fig7a…fig10, overhead) and
  print its series table;
* ``explain`` — show the engine join plan vs the decomposition plan;
* ``serve`` — run queries (stdin, one per line) through a concurrent
  :class:`~repro.service.server.QueryService` and print per-query results
  plus the serving metrics snapshot (``--insights`` adds the per-template
  insights registry: streaming histograms, slow-query log, SLO burn
  rates);
* ``top`` — live terminal view over a published insights snapshot;
* ``report`` — offline per-template analytics over exported span JSONL,
  with optional regression checks against a ``BENCH_*.json`` baseline;
* ``bench-serve`` — the repeated-template serving benchmark (plan cache
  cold vs warm).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.reporting import render_series_table
from repro.core.integration import install_structural_optimizer
from repro.core.optimizer import HybridOptimizer
from repro.engine.dbms import COMMDB_PROFILE, POSTGRES_PROFILE, SimulatedDBMS
from repro.errors import DecompositionError, OptimizationError
from repro.workloads.tpch import TPCH_SCHEMA, generate_tpch_database
from repro.workloads.tpch_queries import TPCH_QUERIES


def _query_text(args: argparse.Namespace) -> str:
    if args.query in TPCH_QUERIES:
        return TPCH_QUERIES[args.query]()
    if args.query == "-":
        return sys.stdin.read()
    return args.query


def cmd_decompose(args: argparse.Namespace) -> int:
    database = generate_tpch_database(size_mb=args.size_mb, seed=args.seed, analyze=True)
    optimizer = HybridOptimizer(database, max_width=args.width)
    sql = _query_text(args)
    translation = optimizer.translate(sql)
    print("Conjunctive query:")
    print(f"  {translation.query}")
    hypergraph = translation.query.hypergraph()
    print(f"Hypergraph: {len(hypergraph)} edges, {len(hypergraph.vertices)} variables")
    plan = optimizer.optimize(translation)
    print(f"q-hypertree decomposition (width {plan.width}, "
          f"{plan.decomposition_seconds * 1000:.1f} ms):")
    print(plan.explain())
    if args.views:
        print()
        print("Stand-alone SQL views:")
        print(plan.to_sql_views().render())
    if args.dot:
        from repro.hypergraph.dot import decomposition_to_dot, hypergraph_to_dot

        print()
        print(hypergraph_to_dot(
            hypergraph, highlight_vertices=set(translation.query.output_variables)
        ))
        print()
        print(decomposition_to_dot(plan.decomposition))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    database = generate_tpch_database(size_mb=args.size_mb, seed=args.seed, analyze=True)
    sql = _query_text(args)
    dbms = SimulatedDBMS(database, COMMDB_PROFILE)
    budget = args.budget

    rows = []
    result = dbms.run_sql(sql, use_statistics=True, work_budget=budget)
    rows.append(("commdb+stats", result))
    result = dbms.run_sql(sql, optimizer_enabled=False, work_budget=budget)
    rows.append(("commdb-no-opt", result))

    plan = HybridOptimizer(database, max_width=args.width).optimize(sql)
    qhd = plan.execute(work_budget=budget, spill=dbms.spill_model)
    rows.append(("q-hd", qhd))
    if args.parallel >= 2:
        qhd_par = plan.execute(
            work_budget=budget,
            spill=dbms.spill_model,
            parallel_workers=args.parallel,
        )
        rows.append((f"q-hd(par={args.parallel})", qhd_par))

    coupled = SimulatedDBMS(database, POSTGRES_PROFILE)
    install_structural_optimizer(
        coupled, max_width=args.width, parallel_workers=args.parallel
    )
    rows.append(("postgres+q-hd", coupled.run_sql(sql, work_budget=budget)))

    print(f"{'system':<16} {'work':>12} {'rows':>8} {'wall(s)':>9}")
    for name, res in rows:
        work = str(res.work) if res.finished else "DNF"
        count = str(len(res.relation)) if res.relation is not None else "-"
        print(f"{name:<16} {work:>12} {count:>8} {res.elapsed_seconds:>9.3f}")
    finished = [res.relation for _name, res in rows if res.relation is not None]
    if len(finished) > 1:
        agree = all(finished[0].same_content(rel) for rel in finished[1:])
        print(f"answers agree: {agree}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.hypergraph.treedecomp import structural_summary

    database = generate_tpch_database(size_mb=args.size_mb, seed=args.seed, analyze=True)
    optimizer = HybridOptimizer(database, max_width=args.width)
    sql = _query_text(args)
    translation = optimizer.translate(sql)
    hypergraph = translation.query.hypergraph()
    summary = structural_summary(hypergraph)
    print(f"query: {translation.query.name}")
    print(f"  atoms:               {summary['edges']}")
    print(f"  variables:           {summary['variables']}")
    print(f"  acyclic:             {summary['acyclic']}")
    print(f"  hypertree width:     {summary['hypertree_width']}")
    print(f"  treewidth (minfill): {summary.get('treewidth_min_fill', '-')}")
    print(f"  biconnected width:   {summary['biconnected_width']}")
    print(f"  hinge degree:        {summary['hinge_degree']}")
    out = sorted(translation.query.output_variables)
    print(f"  output variables:    {len(out)} ({', '.join(out)})")
    try:
        plan = optimizer.optimize(translation)
        print(f"  q-hypertree width:   {plan.width} (k ≤ {args.width})")
    except (DecompositionError, OptimizationError) as exc:
        print(f"  q-hypertree width:   failure at k = {args.width} ({exc})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the domain static-analysis battery over the repro sources.

    With no paths, lints the installed ``repro`` package itself — the
    self-clean gate CI enforces.  ``--interproc`` adds the whole-program
    rule group (lock-order, races, codec, determinism), sharing one
    parsed AST per file with the per-file battery.  Exits 1 when any
    error-severity finding survives suppression and the baseline (or a
    ``--select``-ed rule id is unknown).
    """
    import os.path

    import repro
    from repro.analysis import run_analysis, render_json, render_text
    from repro.analysis.driver import SourceCache
    from repro.analysis.interproc import (
        all_analyses,
        find_baseline,
        run_interproc,
        write_graphs,
    )
    from repro.analysis.rules import ALL_RULES

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id} ({rule.severity}): {rule.description}")
        for analysis in all_analyses():
            print(
                f"{analysis.rule_id} ({analysis.severity}) [interproc]: "
                f"{analysis.description}"
            )
        return 0
    paths = args.paths or [os.path.dirname(repro.__file__)]
    select = (
        [name.strip() for name in args.select.split(",")] if args.select
        else None
    )
    interproc_ids = {str(a.rule_id) for a in all_analyses()}
    file_select = select
    interproc_select = None
    if select is not None and args.interproc:
        # Partition the selection between the two rule groups.
        interproc_select = [s for s in select if s in interproc_ids]
        file_select = [s for s in select if s not in interproc_ids]
    cache = SourceCache()
    try:
        if file_select is not None and not file_select:
            report = run_analysis(paths, rules=[], jobs=args.jobs, cache=cache)
        else:
            report = run_analysis(
                paths, select=file_select, jobs=args.jobs, cache=cache
            )
        if args.interproc:
            baseline = (
                args.baseline
                if args.baseline is not None
                else find_baseline(paths)
            )
            interproc = run_interproc(
                paths,
                cache=cache,
                select=interproc_select,
                baseline_path=baseline,
            )
            report.findings.extend(interproc.findings)
            report.findings.sort(key=lambda f: f.sort_key())
            report.suppressed += interproc.suppressed
            report.baselined = len(interproc.baselined)
            if args.graphs_out:
                for path in write_graphs(interproc, args.graphs_out):
                    print(f"wrote {path}", file=sys.stderr)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.id, scale=args.scale)
    print(render_series_table(result, metric=args.metric, point_label="x"))
    if args.chart:
        from repro.bench.plotting import render_ascii_chart

        print()
        print(render_ascii_chart(result, metric=args.metric))
    return 0


def _single_process_payload(service, insights) -> dict:
    """The ``hdqo top`` snapshot payload for a single-process service."""
    metrics = service.metrics
    hits = metrics.plans_cached
    plans = hits + metrics.plans_built
    return {
        "service": {
            "queries": metrics.queries,
            "cache_hit_rate": hits / plans if plans else 0.0,
            "saturation": None,
            "shards": 1,
        },
        "insights": insights.snapshot() if insights is not None else {},
    }


def _cluster_payload(snapshot, saturation: float, shards: int) -> dict:
    """The ``hdqo top`` snapshot payload from a (merged) router snapshot."""
    merged = snapshot.get("merged") or {}
    planning = merged.get("planning") or {}
    hits = planning.get("cache_hits", 0)
    plans = hits + planning.get("built", 0)
    return {
        "service": {
            "queries": (merged.get("queries") or {}).get("submitted", 0),
            "cache_hit_rate": hits / plans if plans else 0.0,
            "saturation": saturation,
            "shards": shards,
        },
        "insights": merged.get("insights") or {},
    }


def _start_insights_publisher(args, flushers, payload, final_payload=None):
    """Publish the insights snapshot file periodically + once on flush.

    Returns the publisher's stop event (or None when not publishing).
    The final publish is a registered flusher, so whichever exit path
    runs — SIGINT, SIGTERM, normal drain — writes the last snapshot
    exactly once.  ``final_payload`` overrides the periodic payload for
    that flush-time write (the sharded path reads worker-exit snapshots
    there, the live poll path being closed by then).
    """
    if not getattr(args, "insights", False) or not args.insights_snapshot:
        return None
    import threading

    from repro.obs.insights.top import publish_snapshot_file

    path = args.insights_snapshot
    last = final_payload if final_payload is not None else payload
    flushers.register(
        "insights-snapshot", lambda: publish_snapshot_file(path, last())
    )
    stop = threading.Event()

    def _loop() -> None:
        while not stop.wait(args.insights_interval):
            try:
                publish_snapshot_file(path, payload())
            except Exception:  # hdqo: ignore[error-swallowing] — a failed periodic publish must not kill serving; the flush-time publish reports errors
                pass

    threading.Thread(
        target=_loop, name="hdqo-insights-publisher", daemon=True
    ).start()
    return stop


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve queries read from stdin (one per line) through a QueryService.

    Lines are TPC-H query names (``q5``) or inline SQL; blank lines and
    ``#`` comments are skipped.  Repeated templates exercise the plan
    cache — the point of the serving layer.

    ``--trace FILE`` turns end-to-end tracing on for the whole batch and
    exports every span (``serve.plan``, ``serve.execute``, ``qhd.node``,
    ``exec.*``) as JSONL; ``--metrics-format`` picks the final snapshot
    rendering (human text, JSON, or Prometheus exposition).

    SIGINT/SIGTERM trigger a graceful drain: no new queries start, queued
    queries are cancelled, in-flight queries get ``--grace`` seconds to
    finish, and the trace/metrics snapshot is still flushed before exit
    (exit status 130).
    """
    import contextlib
    import json as json_module
    import signal

    from repro.obs.flush import FlushRegistry
    from repro.obs.tracing import tracing
    from repro.resilience.faults import FaultInjector
    from repro.service.metrics import render_snapshot
    from repro.service.server import QueryService

    database = generate_tpch_database(
        size_mb=args.size_mb, seed=args.seed, analyze=True
    )
    queries: List[str] = []
    for line in sys.stdin:
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        queries.append(TPCH_QUERIES[text]() if text in TPCH_QUERIES else text)
    if not queries:
        print("no queries on stdin", file=sys.stderr)
        return 1
    if args.shards >= 2:
        return _serve_sharded(args, database, queries)

    insights = None
    if args.insights:
        from repro.obs.insights.registry import InsightsRegistry

        insights = InsightsRegistry()
    injector = (
        FaultInjector(args.inject, seed=args.seed) if args.inject else None
    )
    service = QueryService(
        SimulatedDBMS(database, COMMDB_PROFILE),
        max_width=args.width,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        cache_capacity=args.cache_capacity,
        work_budget=args.budget,
        deadline_seconds=(
            args.deadline_ms / 1000.0 if args.deadline_ms else None
        ),
        fault_injector=injector,
        parallel_workers=args.parallel,
        insights=insights,
    )
    # Every exit path (SIGINT, SIGTERM, normal end-of-input) funnels
    # through one FlushRegistry: each registered flusher runs exactly once.
    flushers = FlushRegistry()
    stop_publisher = _start_insights_publisher(
        args, flushers, lambda: _single_process_payload(service, insights)
    )
    exit_code = 0
    tracer = None
    trace_scope = tracing() if args.trace else contextlib.nullcontext(None)

    def _on_signal(signum, frame):  # pragma: no cover - exercised via tests
        raise KeyboardInterrupt

    old_handlers = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            old_handlers[sig] = signal.signal(sig, _on_signal)
        except (ValueError, OSError):
            pass  # not the main thread (tests) or unsupported platform
    try:
        with trace_scope as active_tracer:
            tracer = active_tracer
            print(f"{'#':>3} {'optimizer':<16} {'work':>12} {'rows':>8} {'wall(s)':>9}")
            try:
                outcomes = service.run_all(queries, return_exceptions=True)
            except KeyboardInterrupt:
                exit_code = 130
                print(
                    "\ninterrupted: draining in-flight queries "
                    f"(grace {args.grace:.1f}s)...",
                    file=sys.stderr,
                )
                outcomes = []
            for index, result in enumerate(outcomes, 1):
                if isinstance(result, Exception):
                    print(f"{index:>3} error: {result}")
                    exit_code = 2
                    continue
                work = str(result.work) if result.finished else "DNF"
                count = str(len(result.relation)) if result.relation is not None else "-"
                print(
                    f"{index:>3} {result.optimizer:<16} {work:>12} "
                    f"{count:>8} {result.elapsed_seconds:>9.3f}"
                )
                if not result.finished:
                    exit_code = 2
    finally:
        for sig, handler in old_handlers.items():
            signal.signal(sig, handler)
        # Stop accepting work and drain before flushing observability, so
        # the exported trace and metrics cover every query that ran.
        if exit_code == 130:
            drained = service.drain(grace_seconds=args.grace)
            if not drained:
                print(
                    "warning: some workers did not finish within the grace "
                    "period",
                    file=sys.stderr,
                )
        else:
            service.close()
        if tracer is not None:
            exported = tracer.export_jsonl(args.trace)
            problems = tracer.validate()
            print()
            print(f"trace: {exported} spans -> {args.trace}")
            for problem in problems:
                print(f"trace problem: {problem}", file=sys.stderr)
                if exit_code == 0:
                    exit_code = 2
        if stop_publisher is not None:
            stop_publisher.set()
        flushers.flush()
        for error in flushers.errors:
            print(f"flush error: {error}", file=sys.stderr)
            if exit_code == 0:
                exit_code = 2
        print()
        snapshot = service.snapshot()
        if args.metrics_format == "json":
            print(json_module.dumps(snapshot, indent=2, sort_keys=True))
        elif args.metrics_format == "prom":
            print(service.metrics.render_text())
            if insights is not None:
                from repro.obs.insights.registry import (
                    render_insights_prometheus,
                )

                print(render_insights_prometheus(insights.snapshot()))
        else:
            insights_snap = snapshot.pop("insights", None)
            print(render_snapshot(snapshot))
            if insights_snap is not None:
                from repro.obs.insights.top import render_top

                print()
                print(
                    render_top(
                        _single_process_payload(service, insights)
                    )
                )
    return exit_code


def _serve_sharded(args: argparse.Namespace, database, queries: List[str]) -> int:
    """The ``serve --shards N`` path: one router, N worker processes.

    Same contract as the single-process path — per-query result lines,
    graceful SIGINT/SIGTERM drain (exit 130), observability flushed last
    — but the metrics snapshot is the *merged* cluster view (plus
    per-shard detail) and the exported trace is the merged, shard-tagged
    cross-process timeline, validated before exit.
    """
    import json as json_module
    import signal

    from repro.errors import ReproError
    from repro.obs.flush import FlushRegistry
    from repro.obs.tracing import validate_span_records
    from repro.service.metrics import render_snapshot
    from repro.shard import ShardConfig, ShardRouter, SupervisorPolicy

    config = ShardConfig(
        database=database,
        max_width=args.width,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        cache_capacity=args.cache_capacity,
        work_budget=args.budget,
        deadline_seconds=(
            args.deadline_ms / 1000.0 if args.deadline_ms else None
        ),
        fault_spec=args.inject,
        seed=args.seed,
        parallel_workers=args.parallel,
        trace=bool(args.trace),
        insights=bool(args.insights),
    )
    policy = (
        SupervisorPolicy(max_restarts=args.max_restarts, seed=args.seed)
        if args.supervise
        else None
    )
    router = ShardRouter(config, shards=args.shards, supervise=policy)

    def _live_payload() -> dict:
        try:
            snapshot = router.snapshot()
        except ReproError:  # closing/draining: keep the last published file
            raise RuntimeError("router is draining")
        return _cluster_payload(snapshot, router.saturation(), args.shards)

    def _final_payload() -> dict:
        return _cluster_payload(
            router.final_snapshot(), router.saturation(), args.shards
        )

    flushers = FlushRegistry()
    stop_publisher = _start_insights_publisher(
        args, flushers, _live_payload, final_payload=_final_payload
    )
    exit_code = 0

    def _on_signal(signum, frame):  # pragma: no cover - exercised via tests
        raise KeyboardInterrupt

    old_handlers = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            old_handlers[sig] = signal.signal(sig, _on_signal)
        except (ValueError, OSError):
            pass  # not the main thread (tests) or unsupported platform
    try:
        print(f"{'#':>3} {'optimizer':<16} {'work':>12} {'rows':>8} {'wall(s)':>9}")
        try:
            outcomes = router.run_all(queries, return_exceptions=True)
        except KeyboardInterrupt:
            exit_code = 130
            print(
                f"\ninterrupted: draining {args.shards} shards "
                f"(grace {args.grace:.1f}s)...",
                file=sys.stderr,
            )
            outcomes = []
        for index, result in enumerate(outcomes, 1):
            if isinstance(result, Exception):
                print(f"{index:>3} error: {result}")
                exit_code = 2
                continue
            work = str(result.work) if result.finished else "DNF"
            count = (
                str(len(result.relation))
                if result.relation is not None
                else "-"
            )
            print(
                f"{index:>3} {result.optimizer:<16} {work:>12} "
                f"{count:>8} {result.elapsed_seconds:>9.3f}"
            )
            if not result.finished:
                exit_code = 2
    finally:
        for sig, handler in old_handlers.items():
            signal.signal(sig, handler)
        # Drain every shard before flushing observability, so the merged
        # trace and metrics cover every query that ran on any shard.
        drained = router.drain(grace_seconds=args.grace)
        if not drained and exit_code == 130:
            print(
                "warning: some shards did not drain within the grace "
                "period",
                file=sys.stderr,
            )
        if args.trace:
            records = router.span_records()
            with open(args.trace, "w") as handle:
                for record in records:
                    handle.write(json_module.dumps(record) + "\n")
            problems = validate_span_records(
                records,
                dropped=router.spans_dropped(),
                open_count=router.open_spans(),
                require_shard_tag=True,
            )
            print()
            print(
                f"trace: {len(records)} spans from {args.shards} shards "
                f"-> {args.trace}"
            )
            for problem in problems:
                print(f"trace problem: {problem}", file=sys.stderr)
                if exit_code == 0:
                    exit_code = 2
        violations = router.lock_violations()
        for shard_id, violation in sorted(violations.items()):
            print(
                f"lock-order violation on shard {shard_id}: {violation}",
                file=sys.stderr,
            )
            if exit_code == 0:
                exit_code = 2
        if stop_publisher is not None:
            stop_publisher.set()
        flushers.flush()
        for error in flushers.errors:
            print(f"flush error: {error}", file=sys.stderr)
            if exit_code == 0:
                exit_code = 2
        print()
        snapshot = router.final_snapshot()
        if args.metrics_format == "json":
            print(json_module.dumps(snapshot, indent=2, sort_keys=True))
        elif args.metrics_format == "prom":
            print(router.render_prometheus())
            merged_insights = (snapshot.get("merged") or {}).get("insights")
            if args.insights and merged_insights:
                from repro.obs.insights.registry import (
                    render_insights_prometheus,
                )

                print(render_insights_prometheus(merged_insights))
        else:
            merged = dict(snapshot["merged"])
            merged_insights = merged.pop("insights", None)
            print("merged cluster metrics:")
            print(render_snapshot(merged, indent="  "))
            print("per-shard cache hit rates:")
            for shard_id, rate in sorted(
                snapshot["cache_hit_rates"].items()
            ):
                shown = f"{rate:.2%}" if rate is not None else "-"
                print(f"  shard {shard_id}: {shown}")
            supervisor_view = snapshot.get("supervisor")
            if supervisor_view is not None:
                sup = supervisor_view["metrics"]
                print(
                    "supervision: "
                    f"deaths={sup['worker_deaths']}  "
                    f"restarts={sup['restarts']}  "
                    f"failovers={sup['failovers']}  "
                    f"breaker opens={sup['breaker_opens']}"
                )
            if merged_insights is not None:
                from repro.obs.insights.top import render_top

                print()
                print(
                    render_top(
                        _cluster_payload(
                            snapshot, router.saturation(), args.shards
                        )
                    )
                )
    return exit_code


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.bench.serving import run_serving_throughput

    if args.shards >= 2:
        return _bench_serve_sharded(args)
    result = run_serving_throughput(
        scale=args.scale,
        workers=args.workers,
        repetitions=args.repetitions,
        deadline_ms=args.deadline_ms,
        inject=args.inject,
        insights=args.insights,
    )
    print(render_series_table(result, metric="work", point_label="repetitions"))
    cold = result.series("cold")[-1]
    warm = result.series("warm")[-1]
    print()
    print(
        f"planning work: cold={cold.work}  warm={warm.work}  "
        f"({cold.work / warm.work:.1f}× amortization)"
        if warm.work
        else f"planning work: cold={cold.work}  warm={warm.work}"
    )
    print(
        f"plans built:   cold={cold.extra['plans_built']}  "
        f"warm={warm.extra['plans_built']} "
        f"(+{warm.extra['cache_hits']} cache hits)"
    )
    print(
        f"throughput:    cold={cold.extra['throughput_qps']} q/s  "
        f"warm={warm.extra['throughput_qps']} q/s"
    )
    print(
        f"fallbacks:     cold={cold.extra['fallbacks']}  "
        f"warm={warm.extra['fallbacks']}  "
        f"(lower-k: cold={cold.extra['degraded_lower_k']} "
        f"warm={warm.extra['degraded_lower_k']})"
    )
    if args.deadline_ms is not None or args.inject:
        print(
            f"deadline miss: cold={cold.extra['deadline_miss_rate']:.2%} "
            f"({cold.extra['deadline_misses']})  "
            f"warm={warm.extra['deadline_miss_rate']:.2%} "
            f"({warm.extra['deadline_misses']})"
        )
        print(
            f"errors:        cold={cold.extra['errors']}  "
            f"warm={warm.extra['errors']}"
        )
    if cold.phase_work and warm.phase_work:
        print(
            "phase work:    "
            f"cold decompose={cold.phase_work['decompose']} "
            f"execute={cold.phase_work['execute']}  |  "
            f"warm decompose={warm.phase_work['decompose']} "
            f"execute={warm.phase_work['execute']}"
        )
    print(
        f"latency:       cold p99={cold.extra['latency_p99_ms']}ms  "
        f"warm p99={warm.extra['latency_p99_ms']}ms"
    )
    if args.insights:
        print(
            f"insights:      cold templates={cold.extra['insight_templates']} "
            f"warm templates={warm.extra['insight_templates']}  "
            f"(slow outliers: cold={cold.extra['slow_outliers']} "
            f"warm={warm.extra['slow_outliers']})"
        )
    return 0


def _bench_serve_sharded(args: argparse.Namespace) -> int:
    """``bench-serve --shards N``: the multi-tenant cluster benchmark."""
    import json as json_module

    from repro.bench.serving import run_sharded_serving

    report = run_sharded_serving(
        scale=args.scale,
        shards=args.shards,
        workers=args.workers,
        repetitions=args.repetitions,
        deadline_ms=args.deadline_ms,
        inject=args.inject,
        insights=args.insights,
        kill_rate=args.kill_rate,
        supervise=args.supervise or args.kill_rate > 0,
    )
    base, shard = report["baseline"], report["sharded"]
    print(
        f"sharded serving: {report['queries']} queries "
        f"({report['tenants']} tenants × {report['repetitions']} reps) "
        f"over {report['shards']} shards × {report['workers_per_shard']} workers"
    )
    print(
        f"throughput:  baseline={base['throughput_qps']} q/s  "
        f"sharded={shard['throughput_qps']} q/s"
    )
    print(
        f"latency:     p50={shard['latency_p50_ms']}ms  "
        f"p99={shard['latency_p99_ms']}ms  "
        f"max={shard['latency_max_ms']}ms  "
        f"saturation={shard['saturation']:.2f}"
    )
    rates = ", ".join(
        f"{shard_id}:{rate:.2%}" if rate is not None else f"{shard_id}:-"
        for shard_id, rate in shard["per_shard_cache_hit_rates"].items()
    )
    print(
        f"cache:       baseline={base['cache_hit_rate']:.2%}  "
        f"per-shard [{rates}]"
    )
    parity = report["parity"]
    if parity["checked"]:
        print(
            f"parity:      identical={parity['identical']} "
            f"({parity['compared']} queries, {parity['rows']} rows)"
        )
    print(
        f"hit-rate:    every shard ≥ baseline: {report['hit_rate_ok']}  "
        f"drain clean: {shard['drained_clean']}"
    )
    resilience = report.get("resilience")
    if resilience is not None:
        print(
            f"resilience:  availability={resilience['availability']:.2%}  "
            f"kills={resilience['kills']}  "
            f"restarts={resilience['restarts']}  "
            f"failovers={resilience['failovers']}  "
            f"recovered={resilience['recovered_to_full']}"
        )
        print(
            f"recovery:    p50={resilience['recovery_p50_ms']}ms  "
            f"p99={resilience['recovery_p99_ms']}ms"
        )
    if args.insights and "insights" in shard:
        templates = shard["insights"]["templates"]
        worst = max(
            (entry["latency_p99_ms"] for entry in templates.values()),
            default=0.0,
        )
        print(
            f"insights:    {len(templates)} template(s), "
            f"worst p99={worst}ms"
        )
    if args.record:
        # Same envelope scripts/bench_record.py --benchmark serving writes,
        # so BENCH_serving.json is one format wherever it was produced.
        import platform

        report = dict(report)
        report["python"] = platform.python_version()
        report["machine"] = platform.machine()
        with open(args.record, "w") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"recorded -> {args.record}")
    ok = (
        (report["parity"]["identical"] or not parity["checked"])
        and report["hit_rate_ok"]
        and shard["drained_clean"]
    )
    if resilience is not None:
        ok = ok and resilience["recovered_to_full"]
    return 0 if ok else 1


def cmd_top(args: argparse.Namespace) -> int:
    """Live top-style view over a published insights snapshot file.

    Point it at the ``--insights-snapshot`` file a ``hdqo serve
    --insights`` process publishes.  On a TTY the view refreshes in place
    every ``--interval`` seconds; piped/CI output degrades to one plain
    text frame.
    """
    from repro.obs.insights.top import run_top

    return run_top(
        args.snapshot,
        interval=args.interval,
        iterations=args.iterations,
    )


def cmd_report(args: argparse.Namespace) -> int:
    """Offline per-template analytics over an exported span JSONL file.

    Reconstructs the per-template/per-phase latency and work distributions
    the live insights registry would have held, validates the trace's
    internal consistency, and — with ``--baseline`` — flags regressions
    against a recorded ``BENCH_*.json`` trajectory point.  Exits 1 on any
    trace problem or flagged regression.
    """
    import json as json_module

    from repro.obs.insights.report import (
        analyze_spans,
        check_baseline,
        load_span_records,
        render_report,
    )

    records, load_problems = load_span_records(args.spans)
    analysis = analyze_spans(records)
    analysis["problems"] = load_problems + list(analysis["problems"])

    flags = None
    warnings = None
    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json_module.load(handle)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 1
        if not isinstance(baseline, dict):
            print(f"baseline {args.baseline} is not a JSON object", file=sys.stderr)
            return 1
        flags, warnings = check_baseline(
            analysis, baseline, tolerance=args.tolerance
        )

    print(render_report(analysis, flags, warnings))
    problems = analysis["problems"]
    if problems or flags:
        return 1
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Engine plan vs decomposition plan — optionally EXPLAIN ANALYZE.

    The query is translated once and one decomposition serves both
    renderings; the shared template fingerprint (the plan-cache key) is
    printed so repeated ``explain`` calls can be correlated with ``serve``
    cache behaviour.  With ``--analyze`` both plans are *executed* and each
    operator is annotated with actual rows, work units, and wall time.
    """
    from repro.service.fingerprint import fingerprint_translation

    database = generate_tpch_database(size_mb=args.size_mb, seed=args.seed, analyze=True)
    sql = _query_text(args)
    dbms = SimulatedDBMS(database, COMMDB_PROFILE)
    optimizer = HybridOptimizer(database, max_width=args.width)
    translation = optimizer.translate(sql)
    fingerprint = fingerprint_translation(translation)
    print(f"template fingerprint: {fingerprint.key}")
    print()
    if args.analyze:
        print("Engine join plan (EXPLAIN ANALYZE, with statistics):")
        print(dbms.explain_analyze(translation, work_budget=args.budget).text)
    else:
        print("Engine join plan (dp-bushy, with statistics):")
        print(dbms.explain(translation, use_statistics=True))
    print()
    plan = optimizer.optimize(translation)
    print(f"q-hypertree decomposition (width {plan.width}):")
    print(plan.explain(analyze=args.analyze, work_budget=args.budget))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hdqo",
        description="Hypertree decompositions for query optimization "
        "(ICDE 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "query",
            help="SQL text, a TPC-H query name (q3/q5/q8/q10), or '-' for stdin",
        )
        p.add_argument("--size-mb", type=float, default=100.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--width", type=int, default=4, help="width bound k")

    p = sub.add_parser("decompose", help="show the q-hypertree decomposition")
    common(p)
    p.add_argument("--views", action="store_true", help="also print SQL views")
    p.add_argument("--dot", action="store_true", help="Graphviz DOT output")
    p.set_defaults(func=cmd_decompose)

    p = sub.add_parser("run", help="run a query on every system and compare")
    common(p)
    p.add_argument("--budget", type=int, default=5_000_000)
    p.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="intra-query parallel q-HD evaluation on N workers "
        "(0/1 = serial; results are identical either way)",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("explain", help="engine plan vs decomposition plan")
    common(p)
    p.add_argument(
        "--analyze",
        action="store_true",
        help="execute both plans and annotate operators with actual "
        "rows/work/time (EXPLAIN ANALYZE)",
    )
    p.add_argument(
        "--budget", type=int, default=None, help="work budget for --analyze"
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "analyze", help="structural measures of a query (widths, acyclicity)"
    )
    common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "lint",
        help="run the domain static-analysis rules over the sources",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report rendering",
    )
    p.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel file-analysis workers (default: auto)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    p.add_argument(
        "--interproc",
        action="store_true",
        help="also run the whole-program rule group "
        "(lock-order, races, codec, determinism)",
    )
    p.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="accepted-findings baseline file "
        "(default: nearest lint-baseline.json above the linted paths)",
    )
    p.add_argument(
        "--graphs-out",
        metavar="DIR",
        default=None,
        help="write call-graph.json and lock-graph.json artifacts here "
        "(with --interproc)",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("experiment", help="reproduce a paper figure")
    p.add_argument("id", choices=sorted(EXPERIMENTS))
    p.add_argument("--scale", choices=["quick", "full"], default="quick")
    p.add_argument(
        "--metric",
        choices=["work", "simulated_seconds", "elapsed_seconds"],
        default="work",
    )
    p.add_argument("--chart", action="store_true", help="ASCII line chart")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "serve",
        help="serve queries from stdin through a concurrent QueryService",
    )
    p.add_argument("--size-mb", type=float, default=100.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--width", type=int, default=4, help="width bound k")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--queue-capacity", type=int, default=32)
    p.add_argument("--cache-capacity", type=int, default=128)
    p.add_argument(
        "--budget", type=int, default=None, help="per-query work budget"
    )
    p.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="enable tracing and export spans as JSONL to FILE",
    )
    p.add_argument(
        "--metrics-format",
        choices=["text", "json", "prom"],
        default="text",
        help="rendering of the final metrics snapshot",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query wall-clock deadline in milliseconds",
    )
    p.add_argument(
        "--inject",
        metavar="FAULTSPEC",
        default=None,
        help="deterministic fault injection: site:kind:rate[:param], "
        "comma separated (e.g. 'exec.join:error:0.1,decompose.search:latency:0.05:20')",
    )
    p.add_argument(
        "--grace",
        type=float,
        default=5.0,
        help="drain grace period (seconds) on SIGINT/SIGTERM",
    )
    p.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="intra-query parallel q-HD evaluation on N workers per query "
        "(0/1 = serial; results are identical either way)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="serve from N worker processes routed by template fingerprint "
        "(1 = the unchanged single-process path; answers are identical "
        "either way)",
    )
    p.add_argument(
        "--supervise",
        action="store_true",
        help="with --shards: self-heal the cluster — restart dead workers "
        "(seeded jittered backoff, per-shard breaker), fail traffic over "
        "to live shards, and retry crash-stranded queries within their "
        "original deadlines",
    )
    p.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        metavar="N",
        help="with --supervise: consecutive restarts per shard before its "
        "breaker opens (further restarts wait out the cooldown)",
    )
    p.add_argument(
        "--insights",
        action="store_true",
        help="record per-template query insights (streaming latency/work "
        "histograms, slow-query log, SLO burn rates); zero work-unit "
        "cost when off",
    )
    p.add_argument(
        "--insights-snapshot",
        metavar="FILE",
        default=None,
        help="with --insights: periodically publish the (merged) insights "
        "snapshot JSON to FILE for `hdqo top`",
    )
    p.add_argument(
        "--insights-interval",
        type=float,
        default=2.0,
        help="seconds between insights snapshot publishes",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "top",
        help="live terminal view over a published insights snapshot",
    )
    p.add_argument(
        "snapshot",
        help="snapshot JSON published by `hdqo serve --insights "
        "--insights-snapshot FILE`",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, help="refresh seconds (TTY)"
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="render N frames then exit (default: loop on a TTY, one "
        "frame otherwise)",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "report",
        help="offline per-template analytics over exported span JSONL",
    )
    p.add_argument("spans", help="span JSONL exported by `hdqo serve --trace`")
    p.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="BENCH_*.json record to check for regressions against",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        help="allowed p99 ratio over the baseline before flagging",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "bench-serve",
        help="repeated-template serving benchmark (plan cache cold vs warm)",
    )
    p.add_argument("--scale", choices=["quick", "full"], default="quick")
    p.add_argument("--workers", type=int, default=8)
    p.add_argument(
        "--repetitions", type=int, default=0, help="0 = scale default"
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query wall-clock deadline in milliseconds",
    )
    p.add_argument(
        "--inject",
        metavar="FAULTSPEC",
        default=None,
        help="deterministic fault injection: site:kind:rate[:param]",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="benchmark multi-tenant traffic over N shard processes "
        "(reports p50/p99 latency, saturation, per-shard cache hit rates)",
    )
    p.add_argument(
        "--kill-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="with --shards: SIGKILL a random live shard with probability "
        "R per killer tick while the workload runs (implies --supervise "
        "semantics are what is being measured: availability and recovery "
        "percentiles land in the report)",
    )
    p.add_argument(
        "--supervise",
        action="store_true",
        help="with --shards: run the cluster under the self-healing "
        "supervisor (required for a --kill-rate > 0 run to recover)",
    )
    p.add_argument(
        "--record",
        metavar="FILE",
        default=None,
        help="with --shards: also write the report JSON "
        "(BENCH_serving.json format) to FILE",
    )
    p.add_argument(
        "--insights",
        action="store_true",
        help="record per-template insights during the benchmark and "
        "report the per-template summary",
    )
    p.set_defaults(func=cmd_bench_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

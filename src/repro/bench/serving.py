"""Serving-layer benchmark: repeated-template throughput, cold vs warm.

The paper's §6.1 economics: the structural plan costs milliseconds,
independent of data size.  The serving layer pushes that one step further —
the plan is built once per *template* and amortized across every repetition
(parameter changes, alias renamings).  This experiment measures exactly
that amortization:

* **cold** — a service with plan caching disabled replans every query;
* **warm** — an identical service with the cache enabled plans each
  template once and serves the rest from the cache.

Both run the same mixed workload (TPC-H joins + synthetic chain templates,
with per-repetition parameter variation) over the same pool, and the
planning effort is the deterministic ``"plan"`` work-unit count of the
cost-k-decomp search — machine-independent, like every other figure here.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult, RunRecord
from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
from repro.relational.database import Database
from repro.service.server import QueryService
from repro.workloads.synthetic import SyntheticConfig, generate_synthetic_database
from repro.workloads.tpch import generate_tpch_database


def serving_workload(
    scale: str = "quick", seed: int = 7
) -> Tuple[Database, List[str]]:
    """A mixed database and query-template set for serving benchmarks.

    The database holds the synthetic chain relations *and* a small TPC-H
    nation/region/supplier slice side by side; the templates join across
    widths 1–2 so both the acyclic and the cyclic planner paths serve.
    """
    n_atoms = 4 if scale == "quick" else 6
    config = SyntheticConfig(
        n_atoms=n_atoms, cardinality=120, selectivity=60, cyclic=True, seed=seed
    )
    database = generate_synthetic_database(config)

    tpch = generate_tpch_database(size_mb=2.0, seed=seed, analyze=False)
    for name in ("region", "nation", "supplier", "customer"):
        database.create_table(tpch.schema.relation(name), tpch.table(name).tuples)
    database.analyze()

    tables = ", ".join(f"rel{i}" for i in range(n_atoms))
    chain_conditions = " AND ".join(
        [f"rel{i}.y{i} = rel{i + 1}.x{i + 1}" for i in range(n_atoms - 1)]
        + [f"rel{n_atoms - 1}.y{n_atoms - 1} = rel0.x0"]
    )
    templates = [
        # Cyclic chain with a parameter slot (template 1).
        f"SELECT rel0.x0, rel0.y0 FROM {tables} "
        f"WHERE {chain_conditions} AND rel0.x0 < {{p}}",
        # TPC-H star slice over nation/region (template 2).
        "SELECT n_name, r_name FROM nation, region "
        "WHERE n_regionkey = r_regionkey AND n_nationkey < {p}",
        # Three-way TPC-H join (template 3).
        "SELECT s_name, n_name FROM supplier, nation, region "
        "WHERE s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
        "AND s_suppkey < {p}",
        # Customer-nation join with a filter (template 4).
        "SELECT c_name, n_name FROM customer, nation "
        "WHERE c_nationkey = n_nationkey AND c_custkey < {p}",
    ]
    return database, templates


def instantiate(templates: Sequence[str], repetitions: int) -> List[str]:
    """Expand templates × repetitions with varying parameters.

    Every repetition binds a different constant, so a cache keyed on query
    *text* would miss — only template-level fingerprints amortize.
    """
    queries: List[str] = []
    for rep in range(repetitions):
        for template in templates:
            queries.append(template.format(p=10 + 3 * rep))
    return queries


def run_serving_throughput(
    scale: str = "quick",
    seed: int = 7,
    workers: int = 8,
    repetitions: int = 0,
    deadline_ms: "Optional[float]" = None,
    inject: "Optional[str]" = None,
    insights: bool = False,
) -> ExperimentResult:
    """Cold vs warm repeated-template serving over a mixed workload.

    One record per (system, repetition-batch): ``work`` is the *planning*
    work of that batch (the quantity the cache amortizes); wall-clock
    throughput and cache counters ride along in ``extra``.

    Args:
        deadline_ms: per-query deadline; deadline misses surface as errors
            and are counted in the ``deadline_misses`` extra.
        inject: a FAULTSPEC string (``site:kind:rate[:param]``, comma
            separated) driving a deterministic
            :class:`~repro.resilience.faults.FaultInjector`; each service
            run gets its own injector seeded from ``seed``.
        insights: attach a per-run
            :class:`~repro.obs.insights.registry.InsightsRegistry`; the
            per-template counts ride along in the record extras.
    """
    from repro.errors import ReproError
    from repro.resilience.faults import FaultInjector

    repetitions = repetitions or (8 if scale == "quick" else 20)
    database, templates = serving_workload(scale, seed)
    result = ExperimentResult(
        experiment_id="serving",
        title="Serving throughput — plan cache cold vs warm "
        f"({len(templates)} templates × {repetitions} repetitions)",
    )

    for system, cache_capacity in (("cold", 0), ("warm", 128)):
        injector = FaultInjector(inject, seed=seed) if inject else None
        sink = None
        if insights:
            from repro.obs.insights.registry import InsightsRegistry

            sink = InsightsRegistry()
        service = QueryService(
            SimulatedDBMS(database, COMMDB_PROFILE),
            max_width=3,
            workers=workers,
            queue_capacity=max(32, workers * 4),
            cache_capacity=cache_capacity,
            deadline_seconds=(
                deadline_ms / 1000.0 if deadline_ms is not None else None
            ),
            fault_injector=injector,
            insights=sink,
        )
        try:
            queries = instantiate(templates, repetitions)
            started = time.perf_counter()
            outcomes = service.run_all(queries, return_exceptions=True)
            elapsed = time.perf_counter() - started
            answers = [o for o in outcomes if not isinstance(o, Exception)]
            errors = [o for o in outcomes if isinstance(o, Exception)]
            if any(not isinstance(e, ReproError) for e in errors):
                raise next(
                    e for e in errors if not isinstance(e, ReproError)
                )
            snapshot = service.snapshot()
            planning = snapshot["planning"]
            resilience = snapshot["resilience"]
            latency = snapshot["latency_seconds"]
            deadline_misses = resilience["deadline_misses"]
            insight_extras = {}
            if sink is not None:
                insight_snapshot = sink.snapshot()
                insight_extras = {
                    "insight_templates": len(insight_snapshot["templates"]),
                    "slow_outliers": sum(
                        len(entries)
                        for entries in insight_snapshot["slow_log"][
                            "outliers"
                        ].values()
                    ),
                }
            result.add(
                RunRecord(
                    system=system,
                    point=repetitions,
                    work=planning["work_units"],
                    simulated_seconds=planning["seconds"],
                    elapsed_seconds=elapsed,
                    finished=bool(answers)
                    and all(answer.finished for answer in answers),
                    answer_rows=sum(
                        len(answer.relation)
                        for answer in answers
                        if answer.relation is not None
                    ),
                    extra={
                        "plans_built": planning["built"],
                        "cache_hits": planning["cache_hits"],
                        "fallbacks": planning["fallbacks"],
                        "queries": len(queries),
                        "throughput_qps": round(len(queries) / elapsed, 1),
                        "errors": len(errors),
                        "deadline_misses": deadline_misses,
                        "deadline_miss_rate": round(
                            deadline_misses / len(queries), 4
                        ),
                        "degraded_lower_k": resilience["degraded_lower_k"],
                        "breaker_skips": resilience["breaker_skips"],
                        "latency_p50_ms": round(latency["p50"] * 1000, 3),
                        "latency_p99_ms": round(latency["p99"] * 1000, 3),
                        **insight_extras,
                    },
                    phase_work={
                        "decompose": planning["work_units"],
                        "optimize": 0,
                        "execute": snapshot["queries"]["work_units"],
                    },
                )
            )
        finally:
            service.close()
    cold = result.record_for("cold", repetitions)
    warm = result.record_for("warm", repetitions)
    if cold is not None and warm is not None and warm.work:
        result.notes.append(
            f"planning-work amortization: {cold.work / warm.work:.1f}×"
        )
    return result


# ---------------------------------------------------------------------------
# Multi-process sharded serving
# ---------------------------------------------------------------------------


def _insights_summary(merged_insights) -> dict:
    """Compact per-template summary of a merged insights snapshot.

    Full histograms would bloat the BENCH record; the trajectory only
    needs the headline shape: per-template query/error counts and the
    execute-phase p50/p99 from the merged streaming histograms.
    """
    from repro.obs.insights.histogram import quantile_from_snapshot

    templates = {}
    if isinstance(merged_insights, dict):
        for key, entry in sorted(merged_insights.get("templates", {}).items()):
            latency = (
                entry.get("phases", {}).get("execute", {}).get("latency", {})
            )
            templates[key] = {
                "queries": entry.get("queries", 0),
                "errors": entry.get("errors", 0),
                "latency_p50_ms": round(
                    quantile_from_snapshot(latency, 0.50) * 1000, 3
                )
                if latency
                else 0.0,
                "latency_p99_ms": round(
                    quantile_from_snapshot(latency, 0.99) * 1000, 3
                )
                if latency
                else 0.0,
            }
    return {"templates": templates}


def _percentile(samples: Sequence[float], q: float) -> float:
    """Exact q-th percentile (nearest-rank) of client-observed samples."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    import math

    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _await_full_strength(router, shards: int, timeout: float) -> bool:
    """Poll until the supervisor has every shard serving again (bounded)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(router.live_shards()) == shards:
            return True
        time.sleep(0.05)
    return len(router.live_shards()) == shards


def run_sharded_serving(
    scale: str = "quick",
    seed: int = 7,
    shards: int = 4,
    workers: int = 2,
    repetitions: int = 0,
    deadline_ms: "Optional[float]" = None,
    inject: "Optional[str]" = None,
    insights: bool = False,
    kill_rate: float = 0.0,
    supervise: bool = False,
) -> dict:
    """Mixed multi-tenant traffic over a shard cluster vs one process.

    Each template plays a *tenant*: the instantiated workload interleaves
    every tenant's parameter-varied repetitions, so the router's
    consistent-hash routing partitions live template traffic across
    shards.  Two runs over identical queries:

    * **baseline** — one warm :class:`QueryService` with the same total
      worker-thread count (``shards × workers``);
    * **sharded** — a :class:`~repro.shard.router.ShardRouter` over
      ``shards`` worker processes, ``workers`` threads each.

    The report carries the acceptance-criteria numbers: byte-identical
    answers (rows *and* order, per query), client-observed p50/p99
    latency, peak saturation, and per-shard plan-cache hit rates against
    the single-process baseline.

    Fault injection (``inject``) disables the parity check — faulting
    runs produce explicit errors by design, not identical answers.

    A ``kill_rate`` > 0 turns the run into a **kill storm**: a seeded
    killer thread SIGKILLs a random live shard with probability
    ``kill_rate`` per tick while the workload runs (``supervise`` is
    implied — an unsupervised cluster cannot recover).  The report then
    carries a ``resilience`` section: availability (fraction of queries
    answered correctly rather than with a typed error), kill/restart/
    failover counts, recovery-time percentiles from the supervisor's
    streaming histogram, and whether the cluster returned to the full
    shard count before the drain.  Kill storms also disable the parity
    and hit-rate checks — crash-retried queries legitimately error when
    budgets run out, and a restarted shard's plan cache starts cold.
    """
    import os
    import random
    import signal as signal_module
    import threading

    from repro.errors import ReproError
    from repro.resilience.faults import FaultInjector
    from repro.shard import ShardConfig, ShardRouter, SupervisorPolicy

    repetitions = repetitions or (8 if scale == "quick" else 20)
    database, templates = serving_workload(scale, seed)
    queries = instantiate(templates, repetitions)
    deadline_seconds = (
        deadline_ms / 1000.0 if deadline_ms is not None else None
    )

    baseline_service = QueryService(
        SimulatedDBMS(database, COMMDB_PROFILE),
        max_width=3,
        workers=shards * workers,
        queue_capacity=max(32, shards * workers * 4),
        cache_capacity=128,
        deadline_seconds=deadline_seconds,
        fault_injector=FaultInjector(inject, seed=seed) if inject else None,
    )
    try:
        started = time.perf_counter()
        baseline_outcomes = baseline_service.run_all(
            queries, return_exceptions=True
        )
        baseline_elapsed = time.perf_counter() - started
        baseline_snapshot = baseline_service.snapshot()
    finally:
        baseline_service.close()
    # Per-query hit rate from the planning counters, the same definition
    # shard_cache_hit_rates() uses (lookup-level stats double-count
    # single-flight re-checks and so vary with thread scheduling).
    baseline_planning = baseline_snapshot["planning"]
    baseline_plans = (
        baseline_planning["cache_hits"] + baseline_planning["built"]
    )
    baseline_hit_rate = (
        round(baseline_planning["cache_hits"] / baseline_plans, 4)
        if baseline_plans
        else 0.0
    )

    config = ShardConfig(
        database=database,
        max_width=3,
        workers=workers,
        queue_capacity=max(32, workers * 4),
        cache_capacity=128,
        deadline_seconds=deadline_seconds,
        fault_spec=inject,
        seed=seed,
        insights=insights,
    )
    if not 0.0 <= kill_rate <= 1.0:
        raise ValueError("kill_rate must be within [0, 1]")
    supervise = supervise or kill_rate > 0
    policy = (
        SupervisorPolicy(
            max_restarts=max(5, shards * 4),
            backoff_base_seconds=0.02,
            backoff_cap_seconds=0.25,
            seed=seed,
        )
        if supervise
        else None
    )
    router = ShardRouter(config, shards=shards, supervise=policy)

    kills = 0
    stop_killer = threading.Event()

    def _storm() -> None:
        """SIGKILL a random live shard with p=kill_rate per 50ms tick."""
        nonlocal kills
        rng = random.Random(seed * 9176 + 11)
        while not stop_killer.wait(0.05):
            if rng.random() >= kill_rate:
                continue
            pids = {
                shard_id: pid
                for shard_id, pid in router.shard_pids().items()
                if pid is not None
            }
            if not pids:
                continue
            victim = rng.choice(sorted(pids))
            try:
                os.kill(pids[victim], signal_module.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
            kills += 1

    killer = (
        threading.Thread(target=_storm, name="hdqo-bench-killer", daemon=True)
        if kill_rate > 0
        else None
    )
    try:
        started = time.perf_counter()
        if killer is not None:
            killer.start()
        sharded_outcomes = router.run_all(queries, return_exceptions=True)
        sharded_elapsed = time.perf_counter() - started
        stop_killer.set()
        if killer is not None:
            killer.join()
        recovered_to_full = True
        if killer is not None:
            recovered_to_full = _await_full_strength(router, shards, 30.0)
        latencies = router.client_latencies()
        saturation = router.saturation()
        live_snapshot = router.snapshot()
        live_after = len(router.live_shards())
    finally:
        stop_killer.set()
        drained_clean = router.drain(grace_seconds=30.0)

    for outcomes in (baseline_outcomes, sharded_outcomes):
        bugs = [
            o
            for o in outcomes
            if isinstance(o, Exception) and not isinstance(o, ReproError)
        ]
        if bugs:
            raise bugs[0]

    identical = True
    compared = 0
    rows_total = 0
    for base, shard in zip(baseline_outcomes, sharded_outcomes):
        base_err = isinstance(base, Exception)
        shard_err = isinstance(shard, Exception)
        if base_err or shard_err:
            if inject is None and deadline_ms is None and kill_rate == 0:
                identical = False  # a fault-free run must not error
            continue
        compared += 1
        base_rel, shard_rel = base.relation, shard.relation
        if (base_rel is None) != (shard_rel is None):
            identical = False
            continue
        if base_rel is not None:
            rows_total += len(shard_rel)
            if (
                base_rel.attributes != shard_rel.attributes
                or base_rel.tuples != shard_rel.tuples
            ):
                identical = False

    hit_rates = {
        shard_id: rate
        for shard_id, rate in live_snapshot["cache_hit_rates"].items()
        if rate is not None
    }
    min_hit_rate = min(hit_rates.values()) if hit_rates else 0.0
    merged = live_snapshot["merged"]
    per_shard_view = live_snapshot["router"]["per_shard"]
    errors = sum(1 for o in sharded_outcomes if isinstance(o, Exception))

    resilience = None
    if supervise:
        supervisor_view = live_snapshot.get("supervisor") or {}
        supervisor_metrics = supervisor_view.get("metrics") or {}
        recovery = supervisor_metrics.get("recovery_seconds") or {}
        answered = len(sharded_outcomes) - errors
        resilience = {
            "kill_rate": kill_rate,
            "kills": kills,
            "availability": (
                round(answered / len(sharded_outcomes), 4)
                if sharded_outcomes
                else 1.0
            ),
            "worker_deaths": supervisor_metrics.get("worker_deaths", 0),
            "restarts": supervisor_metrics.get("restarts", 0),
            "failovers": supervisor_metrics.get("failovers", 0),
            "breaker_opens": supervisor_metrics.get("breaker_opens", 0),
            "unavailable": supervisor_metrics.get("unavailable", 0),
            "ring_epochs": supervisor_metrics.get("ring_epochs", 0),
            "recovery_count": recovery.get("count", 0),
            "recovery_p50_ms": round(
                float(recovery.get("p50", 0.0) or 0.0) * 1000, 3
            ),
            "recovery_p99_ms": round(
                float(recovery.get("p99", 0.0) or 0.0) * 1000, 3
            ),
            "recovered_to_full": recovered_to_full,
            "live_shards_after": live_after,
        }

    return {
        "benchmark": "sharded-serving",
        "scale": scale,
        "seed": seed,
        "shards": shards,
        "workers_per_shard": workers,
        "tenants": len(templates),
        "repetitions": repetitions,
        "queries": len(queries),
        "deadline_ms": deadline_ms,
        "inject": inject,
        "kill_rate": kill_rate,
        "supervise": supervise,
        "baseline": {
            "workers": shards * workers,
            "elapsed_seconds": round(baseline_elapsed, 4),
            "throughput_qps": round(len(queries) / baseline_elapsed, 1),
            "cache_hit_rate": baseline_hit_rate,
            "plans_built": baseline_snapshot["planning"]["built"],
            "cache_hits": baseline_snapshot["planning"]["cache_hits"],
        },
        "sharded": {
            "elapsed_seconds": round(sharded_elapsed, 4),
            "throughput_qps": round(len(queries) / sharded_elapsed, 1),
            "latency_p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
            "latency_p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
            "latency_max_ms": round(max(latencies) * 1000, 3)
            if latencies
            else 0.0,
            "saturation": round(saturation, 4),
            "per_shard_cache_hit_rates": {
                str(shard_id): rate
                for shard_id, rate in sorted(
                    live_snapshot["cache_hit_rates"].items()
                )
            },
            "min_shard_cache_hit_rate": min_hit_rate,
            "per_shard_dispatched": {
                str(shard_id): view["dispatched"]
                for shard_id, view in sorted(per_shard_view.items())
            },
            "plans_built_total": merged["planning"]["built"],
            "cache_hits_total": merged["planning"]["cache_hits"],
            "errors": errors,
            "drained_clean": drained_clean,
            **(
                {"insights": _insights_summary(merged.get("insights"))}
                if insights
                else {}
            ),
        },
        "parity": {
            "identical": identical,
            "compared": compared,
            "rows": rows_total,
            "checked": inject is None and kill_rate == 0,
        },
        # A restarted shard's plan cache legitimately starts cold, so the
        # hit-rate floor only binds on storm-free runs.
        "hit_rate_ok": kill_rate > 0
        or not hit_rates
        or min_hit_rate >= baseline_hit_rate,
        **({"resilience": resilience} if resilience is not None else {}),
    }

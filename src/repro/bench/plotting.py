"""ASCII line charts for experiment results.

The paper's figures are execution-time-vs-parameter line charts; this
module renders the same series in plain text (no plotting dependency), so
``hdqo experiment fig8a --chart`` and the examples can show shapes, not
just tables.  Values are plotted on a log10 scale — the only scale on which
exponential baselines and polynomial q-HD fit one frame, exactly why the
paper's own figures read best logarithmically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentResult, RunRecord

MARKERS = "ox+*#@%&"


def render_ascii_chart(
    result: ExperimentResult,
    metric: str = "work",
    height: int = 12,
    log_scale: bool = True,
) -> str:
    """Render every system's series as an ASCII line chart.

    DNF points are drawn as ``!`` pinned to the top row.  Returns a block
    of text: chart, x-axis, and a marker legend.
    """
    systems = result.systems()
    points = result.points()
    if not systems or not points:
        return "(no data)"

    def transform(value: float) -> float:
        if log_scale:
            return math.log10(max(value, 1.0))
        return value

    finite: List[float] = []
    for record in result.records:
        if record.finished:
            finite.append(transform(float(getattr(record, metric))))
    if not finite:
        return "(no finished runs)"
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0

    def row_of(value: float) -> int:
        return int(round((transform(value) - lo) / span * (height - 1)))

    # Grid: one column per x point, one marker per system.
    width = len(points)
    grid = [[" "] * width for _ in range(height)]
    for s_index, system in enumerate(systems):
        marker = MARKERS[s_index % len(MARKERS)]
        for x_index, point in enumerate(points):
            record = result.record_for(system, point)
            if record is None:
                continue
            if not record.finished:
                grid[height - 1][x_index] = "!"
                continue
            row = row_of(float(getattr(record, metric)))
            cell = grid[row][x_index]
            grid[row][x_index] = "•" if cell not in (" ", marker) else marker

    lines = [result.title]
    scale_note = "log10 " if log_scale else ""
    top_label = f"{10 ** hi:.0f}" if log_scale else f"{hi:.0f}"
    bottom_label = f"{10 ** lo:.0f}" if log_scale else f"{lo:.0f}"
    lines.append(f"{metric} ({scale_note}scale), top ≈ {top_label}, bottom ≈ {bottom_label}")
    for row in range(height - 1, -1, -1):
        lines.append("|" + " ".join(grid[row]))
    lines.append("+" + "-" * (2 * width - 1))
    lines.append(" " + " ".join(str(p)[0] for p in points))
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={system}"
        for i, system in enumerate(systems)
    )
    lines.append(f"legend: {legend}  (!=DNF, •=overlap)")
    return "\n".join(lines)

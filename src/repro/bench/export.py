"""Exporting experiment results: CSV, JSON, and Markdown.

``EXPERIMENTS.md`` is generated from real runs via
:func:`render_markdown_report`; the CSV/JSON writers make the raw series
available to external plotting tools.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.bench.harness import DNF, ExperimentResult, RunRecord

PathLike = Union[str, Path]


def result_to_rows(result: ExperimentResult) -> List[Dict[str, object]]:
    """Flatten an experiment into one dict per record."""
    rows = []
    for record in result.records:
        phases = record.phase_work
        rows.append(
            {
                "experiment": result.experiment_id,
                "system": record.system,
                "point": record.point,
                "work": record.work,
                "simulated_seconds": record.simulated_seconds,
                "elapsed_seconds": record.elapsed_seconds,
                "finished": record.finished,
                "answer_rows": record.answer_rows,
                "work_decompose": phases.get("decompose"),
                "work_optimize": phases.get("optimize"),
                "work_execute": phases.get("execute"),
            }
        )
    return rows


def write_csv(results: Sequence[ExperimentResult], path: PathLike) -> None:
    """Write all records of several experiments to one CSV file."""
    fieldnames = [
        "experiment",
        "system",
        "point",
        "work",
        "simulated_seconds",
        "elapsed_seconds",
        "finished",
        "answer_rows",
        "work_decompose",
        "work_optimize",
        "work_execute",
    ]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for result in results:
            writer.writerows(result_to_rows(result))


def write_json(results: Sequence[ExperimentResult], path: PathLike) -> None:
    """Write experiments as a JSON document (records + notes)."""
    doc = [
        {
            "experiment": result.experiment_id,
            "title": result.title,
            "notes": result.notes,
            "records": result_to_rows(result),
        }
        for result in results
    ]
    Path(path).write_text(json.dumps(doc, indent=2))


def render_markdown_table(
    result: ExperimentResult,
    metric: str = "work",
    point_label: str = "x",
) -> str:
    """One experiment as a GitHub-flavoured Markdown table."""
    systems = result.systems()
    lines = [
        "| " + " | ".join([point_label] + systems) + " |",
        "|" + "---|" * (len(systems) + 1),
    ]
    for point in result.points():
        cells = [str(point)]
        for system in systems:
            record = result.record_for(system, point)
            if record is None:
                cells.append("–")
            elif not record.finished:
                cells.append(DNF)
            else:
                value = getattr(record, metric)
                cells.append(f"{value:.3f}" if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_markdown_report(
    results: Sequence[ExperimentResult],
    paper_notes: Optional[Dict[str, str]] = None,
    metric: str = "work",
) -> str:
    """A full Markdown report: one section per experiment.

    Args:
        paper_notes: optional ``{experiment_id: text}`` describing what the
            paper's figure shows, printed above each measured table.
    """
    paper_notes = paper_notes or {}
    sections = []
    for result in results:
        sections.append(f"## {result.experiment_id} — {result.title}\n")
        note = paper_notes.get(result.experiment_id)
        if note:
            sections.append(f"**Paper:** {note}\n")
        sections.append(f"**Measured ({metric}):**\n")
        sections.append(render_markdown_table(result, metric=metric))
        if result.notes:
            sections.append("")
            sections.extend(f"*{n}*" for n in result.notes)
        sections.append("")
    return "\n".join(sections)

"""Bench-record provenance: stamping and schema validation.

Every ``BENCH_*.json`` file is one point on the repo's perf trajectory,
and a point is only comparable if it says *what code* produced it and
*when*: :func:`stamp_record` adds the git SHA and an ISO-8601 UTC
timestamp, and :func:`validate_record` checks the record's shape before
it is written — both used by ``scripts/bench_record.py`` on the write
side and by ``hdqo report --baseline`` on the read side.

The wall clock appears here deliberately: a *recorded artifact's*
provenance timestamp is metadata about the file, not measurement state —
the no-wall-clock rule governs the measured core, not the recorder.
"""

from __future__ import annotations

import datetime
import subprocess
from typing import Any, List, Mapping, Optional

__all__ = ["stamp_record", "validate_record", "git_sha"]

#: Per-benchmark required top-level keys (beyond the common ones).
_REQUIRED_KEYS = {
    "sharded-serving": (
        "scale",
        "shards",
        "baseline",
        "sharded",
        "parity",
        "hit_rate_ok",
    ),
    "parallel-qhd-evaluation": ("workloads", "repeats"),
}


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current commit SHA, or None outside a usable git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and len(sha) == 40 else None


def stamp_record(
    record: dict, cwd: Optional[str] = None, sha: Optional[str] = None
) -> dict:
    """Add provenance (``git_sha``, ``recorded_at``) to a bench record.

    Mutates and returns ``record``.  ``sha`` overrides discovery (tests);
    an undiscoverable SHA stamps ``None`` rather than omitting the key,
    so a stamped-but-dirty environment is visible in the artifact.
    """
    record["git_sha"] = sha if sha is not None else git_sha(cwd)
    record["recorded_at"] = (
        datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
        .replace("+00:00", "Z")
    )
    return record


def validate_record(
    record: Mapping[str, Any], require_stamp: bool = True
) -> List[str]:
    """Schema problems in a bench record; empty when valid.

    Args:
        require_stamp: demand the provenance stamp (the write-side
            contract; readers facing pre-stamp history pass False and
            warn instead).
    """
    problems: List[str] = []
    benchmark = record.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        problems.append("missing 'benchmark' name")
        return problems
    required = _REQUIRED_KEYS.get(benchmark)
    if required is None:
        problems.append(f"unknown benchmark kind {benchmark!r}")
        return problems
    for key in required:
        if key not in record:
            problems.append(f"missing required key {key!r}")
    if benchmark == "sharded-serving":
        for section in ("baseline", "sharded"):
            value = record.get(section)
            if section in record and not isinstance(value, Mapping):
                problems.append(f"{section!r} must be an object")
        sharded = record.get("sharded")
        if isinstance(sharded, Mapping):
            for key in ("latency_p50_ms", "latency_p99_ms", "errors"):
                if key not in sharded:
                    problems.append(f"'sharded' missing {key!r}")
        resilience = record.get("resilience")
        if resilience is not None:
            if not isinstance(resilience, Mapping):
                problems.append("'resilience' must be an object")
            else:
                for key in (
                    "availability",
                    "kills",
                    "recovered_to_full",
                    "recovery_p50_ms",
                    "recovery_p99_ms",
                ):
                    if key not in resilience:
                        problems.append(f"'resilience' missing {key!r}")
    if benchmark == "parallel-qhd-evaluation":
        workloads = record.get("workloads")
        if "workloads" in record and not isinstance(workloads, Mapping):
            problems.append("'workloads' must be an object")
    if require_stamp:
        sha = record.get("git_sha")
        if "git_sha" not in record:
            problems.append("missing provenance stamp 'git_sha'")
        elif sha is not None and not (
            isinstance(sha, str) and len(sha) == 40
        ):
            problems.append(f"'git_sha' is not a 40-char SHA: {sha!r}")
        recorded_at = record.get("recorded_at")
        if not isinstance(recorded_at, str):
            problems.append("missing provenance stamp 'recorded_at'")
        else:
            try:
                datetime.datetime.fromisoformat(
                    recorded_at.replace("Z", "+00:00")
                )
            except ValueError:
                problems.append(
                    f"'recorded_at' is not ISO-8601: {recorded_at!r}"
                )
    return problems

"""One entry point per figure of the paper's evaluation (§6).

Every ``run_figX`` function sweeps the same parameters as the paper's
figure and returns an :class:`repro.bench.harness.ExperimentResult` whose
series have the paper's systems:

=============  ==========================================================
fig7a / fig7b  acyclic / chain queries, atoms 2–10, cardinality 500,
               selectivity ∈ {30, 60, 90}; CommDB (stats) vs q-HD
fig7c / fig7d  acyclic / chain queries, selectivity 30,
               cardinality ∈ {500, 750, 1000}
fig8a / fig8b  TPC-H Q5 / Q8, database size 200–1000 (scaled MB);
               CommDB with stats vs without its optimizer vs q-HD
fig9           PostgreSQL vs PostgreSQL + q-HD coupling, acyclic & chain,
               cardinality 450, selectivity 60
fig10          Procedure Optimize ablation on the fig9 chain dataset
overhead       §6.1: ANALYZE cost vs decomposition cost across sizes
=============  ==========================================================

All experiments measure *work units* (machine-independent tuples-touched)
under a budget; budget exhaustion is recorded as DNF, the paper's
"> 10 minutes".  ``scale="quick"`` shrinks the sweeps for CI.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult, RunRecord, run_with_budget
from repro.core.detkdecomp import det_k_decomp
from repro.core.evaluator import QHDEvaluator, atom_relations
from repro.core.integration import install_structural_optimizer
from repro.core.optimizer import HybridOptimizer
from repro.core.qhd import assign_atoms, procedure_optimize
from repro.engine.dbms import (
    COMMDB_PROFILE,
    POSTGRES_PROFILE,
    SimulatedDBMS,
)
from repro.metering import WorkMeter
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    synthetic_query_sql,
)
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import query_q5, query_q8

SYNTHETIC_BUDGET = 3_000_000
TPCH_BUDGET = 500_000
MAX_WIDTH = 4


def _atoms_for(scale: str) -> List[int]:
    return [2, 4, 6, 8, 10] if scale == "quick" else list(range(2, 11))


def _sizes_for(scale: str) -> List[int]:
    return [200, 600, 1000] if scale == "quick" else [200, 400, 600, 800, 1000]


# ---------------------------------------------------------------------------
# Fig. 7 — CommDB vs q-HD on synthetic queries
# ---------------------------------------------------------------------------


def _run_synthetic_point(
    config: SyntheticConfig,
    budget: int,
) -> Tuple[RunRecord, RunRecord]:
    """Measure one (CommDB-with-stats, q-HD stand-alone) pair."""
    database = generate_synthetic_database(config)
    database.analyze()
    sql = synthetic_query_sql(config)
    dbms = SimulatedDBMS(database, COMMDB_PROFILE)

    commdb = run_with_budget(
        lambda: dbms.run_sql(sql, use_statistics=True, work_budget=budget),
        system="commdb",
        point=config.n_atoms,
    )

    optimizer = HybridOptimizer(database, max_width=MAX_WIDTH)
    started = time.perf_counter()
    plan = optimizer.optimize(sql)
    decomposition_seconds = time.perf_counter() - started
    qhd = run_with_budget(
        lambda: plan.execute(work_budget=budget, spill=dbms.spill_model),
        system="q-hd",
        point=config.n_atoms,
    )
    qhd.extra["decomposition_seconds"] = decomposition_seconds
    qhd.extra["width"] = plan.width
    # The stand-alone plan's search effort is not charged to the execution
    # meter; surface it in the decompose phase column.
    qhd.phase_work["decompose"] = plan.planning_work
    return commdb, qhd


def run_fig7(
    variant: str,
    scale: str = "quick",
    budget: int = SYNTHETIC_BUDGET,
) -> ExperimentResult:
    """Fig. 7 (a)–(d): execution time vs number of body atoms.

    Args:
        variant: ``"a"`` acyclic × selectivity sweep, ``"b"`` chain ×
            selectivity sweep, ``"c"`` acyclic × cardinality sweep,
            ``"d"`` chain × cardinality sweep.
    """
    if variant not in ("a", "b", "c", "d"):
        raise ValueError(f"unknown fig7 variant {variant!r}")
    cyclic = variant in ("b", "d")
    kind = "chain" if cyclic else "acyclic"
    if variant in ("a", "b"):
        sweeps = [("sel", s, dict(cardinality=500, selectivity=s)) for s in (30, 60, 90)]
        subtitle = "cardinality 500, selectivity ∈ {30, 60, 90}"
    else:
        sweeps = [
            ("card", c, dict(cardinality=c, selectivity=30)) for c in (500, 750, 1000)
        ]
        subtitle = "selectivity 30, cardinality ∈ {500, 750, 1000}"

    result = ExperimentResult(
        experiment_id=f"fig7{variant}",
        title=f"Fig. 7({variant}) — {kind} queries, {subtitle} (work units)",
    )
    for label, value, kwargs in sweeps:
        for n_atoms in _atoms_for(scale):
            config = SyntheticConfig(
                n_atoms=n_atoms, cyclic=cyclic, seed=n_atoms, **kwargs
            )
            commdb, qhd = _run_synthetic_point(config, budget)
            commdb.system = f"commdb-{label}{value}"
            qhd.system = f"q-hd-{label}{value}"
            commdb.extra["group"] = f"{label}{value}"
            qhd.extra["group"] = f"{label}{value}"
            result.add(commdb)
            result.add(qhd)
    if not result.consistent_answers():
        result.notes.append("WARNING: systems disagree on answer sizes")
    return result


# ---------------------------------------------------------------------------
# Fig. 8 — TPC-H Q5 / Q8 on CommDB vs q-HD, database-size sweep
# ---------------------------------------------------------------------------


def run_fig8(
    query: str = "q5",
    scale: str = "quick",
    budget: int = TPCH_BUDGET,
    seed: int = 1,
) -> ExperimentResult:
    """Fig. 8 (a) Q5 / (b) Q8: execution time vs database size.

    Systems: CommDB with statistics, CommDB without its standard optimizer
    (syntactic order, no pushdown — the paper's no-statistics baseline),
    and the stand-alone q-HD plan.  q-HD uses the purely structural cost
    model here, matching the paper's observation that statistics did not
    change the chosen decomposition for Q5/Q8.
    """
    sql_factory = {"q5": query_q5, "q8": query_q8}.get(query)
    if sql_factory is None:
        raise ValueError(f"unknown TPC-H query {query!r}")
    sql = sql_factory()
    result = ExperimentResult(
        experiment_id=f"fig8{'a' if query == 'q5' else 'b'}",
        title=f"Fig. 8 — TPC-H {query.upper()}, database size sweep (work units)",
    )
    for size in _sizes_for(scale):
        database = generate_tpch_database(size_mb=size, seed=seed, analyze=True)
        dbms = SimulatedDBMS(database, COMMDB_PROFILE)

        result.add(
            run_with_budget(
                lambda: dbms.run_sql(sql, use_statistics=True, work_budget=budget),
                system="commdb+stats",
                point=size,
            )
        )
        result.add(
            run_with_budget(
                lambda: dbms.run_sql(
                    sql, optimizer_enabled=False, work_budget=budget
                ),
                system="commdb-no-opt",
                point=size,
            )
        )
        # Purely structural q-HD (no statistics), as in the paper's Fig. 8.
        optimizer = HybridOptimizer(database, max_width=3, use_statistics=False)
        plan = optimizer.optimize(sql)
        qhd = run_with_budget(
            lambda: plan.execute(work_budget=budget, spill=dbms.spill_model),
            system="q-hd",
            point=size,
        )
        qhd.extra["decomposition_seconds"] = plan.decomposition_seconds
        qhd.extra["width"] = plan.width
        qhd.phase_work["decompose"] = plan.planning_work
        result.add(qhd)
    if not result.consistent_answers():
        result.notes.append("WARNING: systems disagree on answer sizes")
    return result


# ---------------------------------------------------------------------------
# Fig. 9 — PostgreSQL vs the tight coupling
# ---------------------------------------------------------------------------


def run_fig9(
    scale: str = "quick",
    budget: int = SYNTHETIC_BUDGET,
    cardinality: int = 450,
    selectivity: int = 60,
) -> ExperimentResult:
    """Fig. 9: stock PostgreSQL vs PostgreSQL with the structural coupling.

    Acyclic and chain queries, cardinality 450, selectivity 60 — the
    paper's synthetic dataset for the PostgreSQL experiments.
    """
    result = ExperimentResult(
        experiment_id="fig9",
        title=(
            "Fig. 9 — PostgreSQL vs PostgreSQL+q-HD, "
            f"cardinality {cardinality}, selectivity {selectivity} (work units)"
        ),
    )
    for cyclic in (False, True):
        kind = "chain" if cyclic else "acyclic"
        for n_atoms in _atoms_for(scale):
            config = SyntheticConfig(
                n_atoms=n_atoms,
                cardinality=cardinality,
                selectivity=selectivity,
                cyclic=cyclic,
                seed=n_atoms,
            )
            database = generate_synthetic_database(config)
            database.analyze()
            sql = synthetic_query_sql(config)

            stock = SimulatedDBMS(database, POSTGRES_PROFILE)
            stock_record = run_with_budget(
                lambda: stock.run_sql(sql, work_budget=budget),
                system=f"postgres-{kind}",
                point=n_atoms,
            )
            stock_record.extra["group"] = kind
            result.add(stock_record)

            coupled = SimulatedDBMS(database, POSTGRES_PROFILE)
            # The handler plans on its own meter; a ServiceMetrics instance
            # captures the deterministic planning effort per query.
            from repro.service.metrics import ServiceMetrics

            plan_metrics = ServiceMetrics()
            install_structural_optimizer(
                coupled, max_width=MAX_WIDTH, metrics=plan_metrics
            )
            coupled_record = run_with_budget(
                lambda: coupled.run_sql(sql, work_budget=budget),
                system=f"postgres+q-hd-{kind}",
                point=n_atoms,
            )
            coupled_record.extra["group"] = kind
            coupled_record.phase_work["decompose"] = plan_metrics.planning_units
            result.add(coupled_record)
    if not result.consistent_answers():
        result.notes.append("WARNING: systems disagree on answer sizes")
    return result


# ---------------------------------------------------------------------------
# Fig. 10 — impact of Procedure Optimize
# ---------------------------------------------------------------------------


def run_fig10(
    scale: str = "quick",
    budget: int = SYNTHETIC_BUDGET,
    cardinality: int = 450,
    selectivity: int = 60,
) -> ExperimentResult:
    """Fig. 10: chain queries evaluated with vs without Procedure Optimize
    (feature (b) of q-hypertree decompositions), on the fig9 dataset."""
    result = ExperimentResult(
        experiment_id="fig10",
        title=(
            "Fig. 10 — Procedure Optimize ablation on chain queries "
            f"(cardinality {cardinality}, selectivity {selectivity}; work units)"
        ),
    )
    result.notes.append(
        "baseline: first-found NF decomposition (det-k-decomp), which "
        "carries the redundant bounding atoms Procedure Optimize removes "
        "(the paper's HD₁ vs HD′₁); cost-k-decomp would optimize most of "
        "the redundancy away during the search"
    )
    for n_atoms in _atoms_for(scale):
        config = SyntheticConfig(
            n_atoms=n_atoms,
            cardinality=cardinality,
            selectivity=selectivity,
            cyclic=True,
            seed=n_atoms,
        )
        database = generate_synthetic_database(config)
        database.analyze()
        sql = synthetic_query_sql(config)
        dbms = SimulatedDBMS(database, COMMDB_PROFILE)
        translation = dbms.translate(sql)

        for optimize, label in ((True, "q-hd+optimize"), (False, "q-hd-no-optimize")):
            decomposition = det_k_decomp(
                translation.query.hypergraph(),
                2,
                required_root_cover=translation.query.output_variables,
            )
            if decomposition is None:
                continue
            assign_atoms(decomposition, translation.query)
            removed = procedure_optimize(decomposition) if optimize else 0

            def runner(decomp=decomposition):
                meter = WorkMeter(budget=budget)
                base = atom_relations(
                    translation.query, database, translation, meter
                )
                evaluator = QHDEvaluator(decomp, translation.query, meter)
                answer = evaluator.evaluate(base)
                return _SimpleResult(answer, meter)

            record = run_with_budget(runner, system=label, point=n_atoms)
            record.extra["lambda_atoms"] = sum(
                len(node.lam) for node in decomposition.root.walk()
            )
            record.extra["removed"] = removed
            result.add(record)
    if not result.consistent_answers():
        result.notes.append("WARNING: systems disagree on answer sizes")
    return result


class _SimpleResult:
    """Adapter exposing the DBMSResult fields run_with_budget reads."""

    def __init__(self, relation, meter: WorkMeter):
        self.relation = relation
        self.work = meter.total
        self.simulated_seconds = meter.total * COMMDB_PROFILE.work_time_factor
        self.elapsed_seconds = meter.elapsed_seconds
        self.finished = True
        self.optimizer = "q-hd"
        self.work_breakdown = meter.snapshot()


# ---------------------------------------------------------------------------
# §6.1 — optimization overhead: ANALYZE vs decomposition
# ---------------------------------------------------------------------------


def run_overhead(scale: str = "quick", seed: int = 1) -> ExperimentResult:
    """§6.1 overhead: statistics gathering grows with the database; the
    structural plan does not (the paper: 800 s for 1 GB vs ~1.5 s, size-
    independent)."""
    result = ExperimentResult(
        experiment_id="overhead",
        title="§6.1 — statistics gathering vs decomposition cost",
    )
    sql = query_q5()
    for size in _sizes_for(scale):
        database = generate_tpch_database(size_mb=size, seed=seed, analyze=False)
        meter = WorkMeter()
        started = time.perf_counter()
        database.analyze(meter=meter)
        analyze_elapsed = time.perf_counter() - started
        result.add(
            RunRecord(
                system="analyze",
                point=size,
                work=meter.total,
                simulated_seconds=meter.total * COMMDB_PROFILE.work_time_factor,
                elapsed_seconds=analyze_elapsed,
                finished=True,
            )
        )
        optimizer = HybridOptimizer(database, max_width=3)
        started = time.perf_counter()
        plan = optimizer.optimize(sql)
        decompose_elapsed = time.perf_counter() - started
        result.add(
            RunRecord(
                system="decompose",
                point=size,
                work=0,
                simulated_seconds=0.0,
                elapsed_seconds=decompose_elapsed,
                finished=True,
                extra={"width": plan.width},
            )
        )
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "fig7a": lambda scale="quick": run_fig7("a", scale),
    "fig7b": lambda scale="quick": run_fig7("b", scale),
    "fig7c": lambda scale="quick": run_fig7("c", scale),
    "fig7d": lambda scale="quick": run_fig7("d", scale),
    "fig8a": lambda scale="quick": run_fig8("q5", scale),
    "fig8b": lambda scale="quick": run_fig8("q8", scale),
    "fig9": lambda scale="quick": run_fig9(scale),
    "fig10": lambda scale="quick": run_fig10(scale),
    "overhead": lambda scale="quick": run_overhead(scale),
    "serving": lambda scale="quick": _run_serving(scale),
}


def _run_serving(scale: str) -> ExperimentResult:
    # Imported lazily: repro.bench.serving pulls in the serving layer,
    # which the figure experiments above do not need.
    from repro.bench.serving import run_serving_throughput

    return run_serving_throughput(scale)


def run_experiment(experiment_id: str, scale: str = "quick") -> ExperimentResult:
    """Run one experiment by id (see :data:`EXPERIMENTS`)."""
    try:
        factory = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}"
        ) from None
    return factory(scale=scale)

"""Experiment harness reproducing every figure of the paper's §6.

* :mod:`repro.bench.harness` — run records, sweep runner, DNF handling;
* :mod:`repro.bench.reporting` — ASCII series/tables in the shape of the
  paper's figures;
* :mod:`repro.bench.experiments` — one entry point per paper figure
  (fig7a–d, fig8a–b, fig9, fig10) plus the §6.1 overhead comparison.
"""

from repro.bench.harness import ExperimentResult, RunRecord, run_with_budget
from repro.bench.reporting import render_series_table, render_speedup
from repro.bench.export import (
    render_markdown_report,
    render_markdown_table,
    write_csv,
    write_json,
)
from repro.bench.tpch_suite import render_suite, run_tpch_suite
from repro.bench.experiments import (
    EXPERIMENTS,
    run_experiment,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_overhead,
)
from repro.bench.serving import run_serving_throughput, serving_workload

__all__ = [
    "RunRecord",
    "ExperimentResult",
    "run_with_budget",
    "render_series_table",
    "render_speedup",
    "render_markdown_report",
    "render_markdown_table",
    "write_csv",
    "write_json",
    "render_suite",
    "run_tpch_suite",
    "EXPERIMENTS",
    "run_experiment",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_overhead",
    "run_serving_throughput",
    "serving_workload",
]

"""Experiment harness: run records, budgets, and DNF bookkeeping.

Every experiment point is a :class:`RunRecord`: which system, which
workload parameters, how much *work* (the machine-independent time proxy)
it took, and whether it finished within the budget — the paper's
"executions do not terminate after more than 10 minutes" becomes
``finished=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

DNF = "DNF"


@dataclass
class RunRecord:
    """One measured execution.

    Attributes:
        system: label of the executing configuration
            (e.g. ``"commdb+stats"``, ``"q-hd"``).
        point: the x-axis value (number of atoms, database size, …).
        work: work units spent (present even for unfinished runs).
        simulated_seconds: work scaled by the engine's time factor.
        elapsed_seconds: wall-clock time of the run.
        finished: False when the work budget was exhausted.
        answer_rows: size of the produced answer (None when unfinished).
        extra: free-form extras (plan text, decomposition width, …).
        phase_work: per-phase work-unit breakdown
            (``{"decompose": …, "optimize": …, "execute": …}`` — see
            :func:`repro.metering.split_phases`); empty when the runner
            did not report one.
    """

    system: str
    point: object
    work: int
    simulated_seconds: float
    elapsed_seconds: float
    finished: bool
    answer_rows: Optional[int] = None
    extra: Dict[str, object] = field(default_factory=dict)
    phase_work: Dict[str, int] = field(default_factory=dict)

    @property
    def display_work(self) -> str:
        return f"{self.work}" if self.finished else DNF


@dataclass
class ExperimentResult:
    """All records of one experiment, with helpers to slice into series."""

    experiment_id: str
    title: str
    records: List[RunRecord] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def systems(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.system not in seen:
                seen.append(record.system)
        return seen

    def points(self) -> List[object]:
        seen: List[object] = []
        for record in self.records:
            if record.point not in seen:
                seen.append(record.point)
        return seen

    def series(self, system: str) -> List[RunRecord]:
        return [r for r in self.records if r.system == system]

    def record_for(self, system: str, point: object) -> Optional[RunRecord]:
        for record in self.records:
            if record.system == system and record.point == point:
                return record
        return None

    def consistent_answers(self) -> bool:
        """True when all finished systems agree on answer sizes per point.

        A cheap cross-validation: systems computing the same query must
        produce equally many rows.  Records carrying an ``extra["group"]``
        are only compared within their group (e.g. acyclic vs chain series
        sharing x-axis values).
        """
        groups = {
            (record.point, record.extra.get("group", ""))
            for record in self.records
        }
        for point, group in groups:
            sizes = {
                record.answer_rows
                for record in self.records
                if record.point == point
                and record.extra.get("group", "") == group
                and record.finished
                and record.answer_rows is not None
            }
            if len(sizes) > 1:
                return False
        return True


def run_with_budget(
    runner: Callable[[], "object"],
    system: str,
    point: object,
) -> RunRecord:
    """Execute one measurement and normalize it into a :class:`RunRecord`.

    ``runner`` returns a :class:`repro.engine.dbms.DBMSResult`-shaped
    object (fields ``work``, ``simulated_seconds``, ``elapsed_seconds``,
    ``finished``, ``relation``).  A ``work_breakdown`` field, when present,
    is split into the per-phase columns (see
    :func:`repro.metering.split_phases`).
    """
    from repro.metering import split_phases

    result = runner()
    relation = getattr(result, "relation", None)
    breakdown = getattr(result, "work_breakdown", None)
    return RunRecord(
        system=system,
        point=point,
        work=getattr(result, "work", 0),
        simulated_seconds=getattr(result, "simulated_seconds", 0.0),
        elapsed_seconds=getattr(result, "elapsed_seconds", 0.0),
        finished=getattr(result, "finished", True),
        answer_rows=len(relation) if relation is not None else None,
        extra={"optimizer": getattr(result, "optimizer", "?")},
        phase_work=split_phases(breakdown) if breakdown else {},
    )

"""The TPC-H suite runner: every benchmark query across every system.

A mini "power run" over the six implemented TPC-H queries (Q3, Q5, Q7, Q8,
Q9, Q10): for each query, measure the CommDB-like engine (with statistics),
the engine without its optimizer, the stand-alone q-HD plan, and the
tightly-coupled PostgreSQL-like engine — cross-validating every answer.

This is the paper's §6.1 experiment widened from {Q5, Q8} to the whole
implemented workload, and the first thing to run when assessing a change
to any optimizer or evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.integration import install_structural_optimizer
from repro.core.optimizer import HybridOptimizer
from repro.engine.dbms import (
    COMMDB_PROFILE,
    POSTGRES_PROFILE,
    DBMSResult,
    SimulatedDBMS,
)
from repro.relational.database import Database
from repro.workloads.tpch import generate_tpch_database
from repro.workloads.tpch_queries import TPCH_QUERIES


@dataclass
class SuiteRow:
    """Results of one query across the compared systems.

    ``work`` maps system label → work units (None = DNF);
    ``agree`` is True when every finished system produced the same answer.
    """

    query: str
    work: Dict[str, Optional[int]] = field(default_factory=dict)
    answer_rows: Optional[int] = None
    qhd_width: Optional[int] = None
    agree: bool = True


SYSTEMS = ("commdb+stats", "commdb-no-opt", "q-hd", "postgres+q-hd")


def run_tpch_suite(
    size_mb: float = 200.0,
    seed: int = 1,
    max_width: int = 3,
    budget: int = 5_000_000,
    database: Optional[Database] = None,
) -> List[SuiteRow]:
    """Run every TPC-H query on every system; returns one row per query."""
    db = database or generate_tpch_database(size_mb=size_mb, seed=seed, analyze=True)
    commdb = SimulatedDBMS(db, COMMDB_PROFILE)
    coupled = SimulatedDBMS(db, POSTGRES_PROFILE)
    install_structural_optimizer(coupled, max_width=max_width)
    optimizer = HybridOptimizer(db, max_width=max_width)

    rows: List[SuiteRow] = []
    for name in sorted(TPCH_QUERIES):
        sql = TPCH_QUERIES[name]()
        row = SuiteRow(query=name)

        results: Dict[str, DBMSResult] = {}
        results["commdb+stats"] = commdb.run_sql(
            sql, use_statistics=True, work_budget=budget
        )
        results["commdb-no-opt"] = commdb.run_sql(
            sql, optimizer_enabled=False, work_budget=budget
        )
        plan = optimizer.optimize(sql)
        row.qhd_width = plan.width
        results["q-hd"] = plan.execute(
            work_budget=budget, spill=commdb.spill_model
        )
        results["postgres+q-hd"] = coupled.run_sql(sql, work_budget=budget)

        reference = None
        for system in SYSTEMS:
            result = results[system]
            row.work[system] = result.work if result.finished else None
            if result.relation is None:
                continue
            if reference is None:
                reference = result.relation
                row.answer_rows = len(reference)
            elif not reference.same_content(result.relation):
                row.agree = False
        rows.append(row)
    return rows


def render_suite(rows: List[SuiteRow]) -> str:
    """Fixed-width table of the suite results."""
    header = (
        f"{'query':<6} {'rows':>6} {'width':>6} "
        + " ".join(f"{system:>14}" for system in SYSTEMS)
        + "  agree"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " ".join(
            f"{row.work[s] if row.work.get(s) is not None else 'DNF':>14}"
            for s in SYSTEMS
        )
        lines.append(
            f"{row.query:<6} {row.answer_rows if row.answer_rows is not None else '-':>6} "
            f"{row.qhd_width if row.qhd_width is not None else '-':>6} {cells}  "
            f"{'yes' if row.agree else 'NO'}"
        )
    return "\n".join(lines)

"""Rendering experiment results as the paper's figures (ASCII form).

Each figure in the paper plots execution time against a swept parameter
for several systems.  :func:`render_series_table` prints the same series
as a table: one row per x-axis point, one column per system, with ``DNF``
for runs that exceeded the budget — the paper's "> 10 minutes" marks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench.harness import DNF, ExperimentResult, RunRecord


def _format_value(record: Optional[RunRecord], metric: str) -> str:
    if record is None:
        return "-"
    if not record.finished:
        return DNF
    value = getattr(record, metric)
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_series_table(
    result: ExperimentResult,
    metric: str = "work",
    point_label: str = "x",
) -> str:
    """A per-point × per-system table of the chosen metric.

    Args:
        result: the experiment to render.
        metric: ``"work"`` (default, machine-independent),
            ``"simulated_seconds"`` or ``"elapsed_seconds"``.
        point_label: heading of the x-axis column.
    """
    systems = result.systems()
    header = [point_label] + systems
    rows: List[List[str]] = []
    for point in result.points():
        row = [str(point)]
        for system in systems:
            row.append(_format_value(result.record_for(system, point), metric))
        rows.append(row)

    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]

    def fmt(values: Sequence[str]) -> str:
        return "  ".join(value.rjust(widths[i]) for i, value in enumerate(values))

    lines = [result.title, fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    if result.notes:
        lines.append("")
        lines.extend(f"note: {note}" for note in result.notes)
    return "\n".join(lines)


def render_speedup(
    result: ExperimentResult,
    baseline: str,
    challenger: str,
    metric: str = "work",
) -> str:
    """Per-point speedup of ``challenger`` over ``baseline`` (×, or DNF)."""
    lines = [f"{result.experiment_id}: {challenger} vs {baseline} ({metric})"]
    for point in result.points():
        base = result.record_for(baseline, point)
        chal = result.record_for(challenger, point)
        if base is None or chal is None:
            continue
        if not base.finished and chal.finished:
            lines.append(f"  {point}: baseline {DNF}, challenger finished (∞×)")
        elif not chal.finished:
            lines.append(f"  {point}: challenger {DNF}")
        else:
            base_value = float(getattr(base, metric)) or 1.0
            chal_value = float(getattr(chal, metric)) or 1.0
            lines.append(f"  {point}: {base_value / chal_value:.2f}×")
    return "\n".join(lines)

"""Base-scan construction: query atoms → variable-named relations.

Shared by the simulated DBMS executor and the decomposition evaluators.
Two binding modes:

* **SQL mode** (with a :class:`repro.query.translate.TranslationResult`):
  each FROM alias's stored relation gets its pushed-down constant filters
  and intra-relation equalities applied, then is projected/renamed onto the
  CQ variables it carries;
* **positional mode** (direct conjunctive queries): atom terms bind
  positionally to relation attributes; constant terms become equality
  filters, repeated variables become intra-relation equalities.

``push_filters=False`` reproduces the *optimizer disabled* baseline: scans
stay unfiltered and the constant predicates are returned as residual
predicates to apply after the joins (the naive evaluation order).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ExecutionError, QueryError
from repro.engine.expressions import compile_filter, conjunction
from repro.metering import NULL_METER, WorkMeter
from repro.query import ast
from repro.query.conjunctive import ConjunctiveQuery, Constant
from repro.query.translate import TranslationResult
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.resilience.context import current_context

Row = Tuple[object, ...]


def atom_relations(
    query: ConjunctiveQuery,
    database: Database,
    translation: Optional[TranslationResult] = None,
    meter: WorkMeter = NULL_METER,
) -> Dict[str, Relation]:
    """Build per-atom base relations with filters pushed down."""
    if translation is not None:
        relations, _residual = atom_relations_sql(
            query, database, translation, meter, push_filters=True
        )
        return relations
    return atom_relations_positional(query, database, meter)


def atom_relations_sql(
    query: ConjunctiveQuery,
    database: Database,
    translation: TranslationResult,
    meter: WorkMeter = NULL_METER,
    push_filters: bool = True,
) -> Tuple[Dict[str, Relation], List[Callable[[Row], bool]]]:
    """SQL-mode base scans.

    Returns ``(relations, residual_predicates)``; the residual list is
    empty when filters are pushed down.  Residual predicates operate on
    rows of a relation whose attributes are CQ variables — they are meant
    to be applied on the final join result (the naive baseline).
    """
    context = current_context()
    relations: Dict[str, Relation] = {}
    residual: List[Callable[[Row], bool]] = []
    residual_specs: List[Tuple[str, ast.Comparison]] = []

    for atom in query.atoms:
        context.checkpoint("exec.scan")
        alias = atom.name
        base = database.table(atom.relation)
        meter.charge(len(base), "scan")

        filtered = base
        if push_filters:
            def resolve(
                ref: ast.ColumnRef, _base: Relation = base, _alias: str = alias
            ) -> int:
                if ref.table is not None and ref.table != _alias:
                    raise ExecutionError(
                        f"filter for alias {_alias!r} references {ref.table!r}"
                    )
                return _base.index_of(ref.column)

            predicates = [
                compile_filter(comparison, resolve)
                for comparison in translation.atom_filters.get(alias, ())
            ]
            if predicates:
                filtered = filtered.select(conjunction(predicates))
        else:
            for comparison in translation.atom_filters.get(alias, ()):
                residual_specs.append((alias, comparison))

        for left, right in translation.intra_atom_equalities.get(alias, ()):
            filtered = filtered.select_attr_eq(left, right)

        columns: List[str] = []
        variables: List[str] = []
        for variable in atom.terms:
            assert isinstance(variable, str)
            columns.append(translation.variable_bindings[variable][alias])
            variables.append(variable)
        projected = filtered.project(columns, dedup=push_filters)
        relations[alias] = Relation(variables, projected.tuples, name=alias)

    # Residual predicates reference CQ variables of the joined result.
    for alias, comparison in residual_specs:
        residual.append(_residual_predicate(translation, comparison))
    return relations, residual


class _VariableResolverFactory:
    """Late-bound resolver: column refs → positions in the joined relation."""

    def __init__(self, translation: TranslationResult):
        self.translation = translation
        self.attribute_index: Optional[Dict[str, int]] = None

    def bind(self, relation: Relation) -> None:
        self.attribute_index = {a: i for i, a in enumerate(relation.attributes)}

    def __call__(self, ref: ast.ColumnRef) -> int:
        variable = self.translation.resolve_variable(ref)
        if self.attribute_index is None:
            raise ExecutionError("residual predicate used before bind()")
        try:
            return self.attribute_index[variable]
        except KeyError:
            raise ExecutionError(
                f"variable {variable!r} missing from the joined relation"
            ) from None


def _residual_predicate(
    translation: TranslationResult, comparison: ast.Comparison
) -> Callable[[Row], bool]:
    """A predicate over join-result rows, resolved lazily at first use."""
    factory = _VariableResolverFactory(translation)
    compiled: List[Callable[[Row], bool]] = []

    def predicate(row: Row) -> bool:
        if not compiled:
            raise ExecutionError("residual predicate not bound to a relation")
        return compiled[0](row)

    def bind(relation: Relation) -> None:
        factory.bind(relation)
        compiled.clear()
        compiled.append(compile_filter(comparison, factory))

    predicate.bind = bind  # type: ignore[attr-defined]
    return predicate


def apply_residual_filters(
    relation: Relation,
    predicates: List[Callable[[Row], bool]],
    meter: WorkMeter = NULL_METER,
) -> Relation:
    """Apply residual (non-pushed) filters to the joined relation."""
    for predicate in predicates:
        bind = getattr(predicate, "bind", None)
        if bind is not None:
            bind(relation)
        relation = relation.select(predicate, meter=meter)
    return relation


def atom_relations_positional(
    query: ConjunctiveQuery,
    database: Database,
    meter: WorkMeter = NULL_METER,
) -> Dict[str, Relation]:
    """Positional-mode base scans for direct conjunctive queries."""
    context = current_context()
    relations: Dict[str, Relation] = {}
    for atom in query.atoms:
        context.checkpoint("exec.scan")
        base = database.table(atom.relation)
        if len(atom.terms) != len(base.attributes):
            raise QueryError(
                f"atom {atom.name!r} has arity {len(atom.terms)} but relation "
                f"{atom.relation!r} has arity {len(base.attributes)}"
            )
        meter.charge(len(base), "scan")
        filtered = base
        first_position: Dict[str, str] = {}
        for attribute, term in zip(base.attributes, atom.terms):
            if isinstance(term, Constant):
                filtered = filtered.select_compare(attribute, "=", term.value)
            elif term in first_position:
                filtered = filtered.select_attr_eq(first_position[term], attribute)
            else:
                first_position[term] = attribute
        variables = sorted(first_position)
        columns = [first_position[v] for v in variables]
        projected = filtered.project(columns, dedup=True)
        relations[atom.name] = Relation(variables, projected.tuples, name=atom.name)
    return relations

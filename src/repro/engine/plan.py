"""Logical/physical join plans of the simulated DBMS.

A plan is a binary tree over base-table scans.  The optimizer annotates
each node with its estimated cardinality; EXPLAIN-style rendering shows the
chosen join order — which is the entire story the paper's baselines tell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import OptimizationError


@dataclass
class PlanNode:
    """Base class for plan nodes."""

    estimated_rows: float = field(default=0.0, init=False)

    @property
    def aliases(self) -> FrozenSet[str]:
        raise NotImplementedError

    def walk(self) -> Iterator["PlanNode"]:
        raise NotImplementedError

    def join_count(self) -> int:
        return sum(1 for node in self.walk() if isinstance(node, JoinNode))


@dataclass
class ScanNode(PlanNode):
    """Scan of one FROM-clause alias (filters are applied at scan time
    unless the engine profile disables pushdown)."""

    alias: str
    relation: str

    def __post_init__(self) -> None:
        self.estimated_rows = 0.0

    @property
    def aliases(self) -> FrozenSet[str]:
        return frozenset({self.alias})

    def walk(self) -> Iterator[PlanNode]:
        yield self

    def __str__(self) -> str:
        if self.alias != self.relation:
            return f"Scan({self.relation} AS {self.alias})"
        return f"Scan({self.relation})"


@dataclass
class JoinNode(PlanNode):
    """Join of two sub-plans on their shared CQ variables.

    ``algorithm`` selects the physical operator: ``"hash"`` (default),
    ``"merge"`` (sort-merge) or ``"nlj"`` (nested loops — chosen by the
    engine when one input is tiny).
    """

    left: PlanNode
    right: PlanNode
    shared_variables: Tuple[str, ...] = ()
    algorithm: str = "hash"

    def __post_init__(self) -> None:
        self.estimated_rows = 0.0

    @property
    def aliases(self) -> FrozenSet[str]:
        return self.left.aliases | self.right.aliases

    @property
    def is_cross_product(self) -> bool:
        return not self.shared_variables

    def walk(self) -> Iterator[PlanNode]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __str__(self) -> str:
        if self.is_cross_product:
            kind = "CrossJoin"
        else:
            kind = {"hash": "HashJoin", "merge": "MergeJoin", "nlj": "NestedLoopJoin"}.get(
                self.algorithm, "HashJoin"
            )
        on = ", ".join(self.shared_variables)
        return f"{kind}[{on}]"


def left_deep_plan(order: List[ScanNode], shared_for) -> PlanNode:
    """Build a left-deep plan following ``order``.

    Args:
        order: scan nodes in join order (first is the leftmost).
        shared_for: callable ``(prefix_aliases, scan) -> tuple of shared
            variables`` supplying the join keys at each step.
    """
    if not order:
        raise OptimizationError("cannot build a plan with no relations")
    plan: PlanNode = order[0]
    for scan in order[1:]:
        shared = tuple(shared_for(plan.aliases, scan))
        plan = JoinNode(plan, scan, shared)
    return plan


def render_plan(plan: PlanNode, indent: int = 0) -> str:
    """Indented EXPLAIN-style rendering with row estimates."""
    pad = "  " * indent
    if isinstance(plan, ScanNode):
        return f"{pad}{plan}  (rows≈{plan.estimated_rows:.0f})"
    if isinstance(plan, JoinNode):
        head = f"{pad}{plan}  (rows≈{plan.estimated_rows:.0f})"
        return "\n".join(
            [head, render_plan(plan.left, indent + 1), render_plan(plan.right, indent + 1)]
        )
    raise OptimizationError(f"unknown plan node {plan!r}")

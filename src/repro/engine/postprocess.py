"""SQL post-processing: step (4) of the paper's evaluation pipeline.

The conjunctive core yields an answer relation over CQ variables.  This
module applies everything SQL layers on top: SELECT expressions (including
arithmetic inside aggregates, e.g. ``sum(l_extendedprice*(1-l_discount))``),
GROUP BY, DISTINCT, ORDER BY and LIMIT.  By Definition 2, out(Q) contains
every variable the aggregates touch, so post-processing never needs the
base tables again.

Note on semantics: the conjunctive answer is a *set* (classical CQ
semantics, which the paper's method computes); aggregates therefore run
over distinct variable bindings.  Baseline engine runs are post-processed
through this same module, so all compared systems share the semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, QueryError
from repro.engine.expressions import compile_scalar
from repro.metering import NULL_METER, WorkMeter
from repro.query import ast
from repro.query.translate import TranslationResult
from repro.relational.relation import Relation


def apply_sql_semantics(
    answer: Relation,
    translation: TranslationResult,
    meter: WorkMeter = NULL_METER,
) -> Relation:
    """Turn the CQ answer relation into the SQL query's result.

    Args:
        answer: relation over CQ variable names, covering out(Q).
        translation: the SQL→CQ translation context.

    Returns:
        Relation whose attributes are the SELECT output names, ordered,
        grouped, aggregated, de-duplicated and limited as the SQL asks.
    """
    query = translation.select_query

    def resolve(ref: ast.ColumnRef) -> int:
        variable = translation.resolve_variable(ref)
        return answer.index_of(variable)

    if query.has_aggregates or query.group_by:
        result = _aggregate(answer, translation, resolve, meter)
    else:
        result = _plain_select(answer, translation, resolve, meter)

    if query.distinct:
        result = result.distinct(meter=meter)
    if query.order_by:
        result = _order(result, translation, meter)
    if query.limit is not None:
        result = result.limit(query.limit)
    return result


# ---------------------------------------------------------------------------


def _plain_select(
    answer: Relation,
    translation: TranslationResult,
    resolve: Callable[[ast.ColumnRef], int],
    meter: WorkMeter,
) -> Relation:
    query = translation.select_query
    names: List[str] = []
    evaluators: List[Callable[[Tuple[object, ...]], object]] = []
    for item in query.select_items:
        if isinstance(item.expr, ast.Star):
            # SELECT *: keep every answer column under its variable name.
            return answer.copy()
        names.append(item.output_name)
        evaluators.append(compile_scalar(item.expr, resolve))
    meter.charge(len(answer), "postprocess")
    rows = [tuple(ev(row) for ev in evaluators) for row in answer.tuples]
    return Relation(_dedupe_names(names), rows, name="answer")


def _aggregate(
    answer: Relation,
    translation: TranslationResult,
    resolve: Callable[[ast.ColumnRef], int],
    meter: WorkMeter,
) -> Relation:
    query = translation.select_query

    # Group keys are CQ variables.
    group_vars = [translation.resolve_variable(ref) for ref in query.group_by]

    # Collect aggregate calls and pre-compute their argument expressions as
    # derived columns (supports arithmetic inside the aggregate).
    agg_specs: List[Tuple[str, Optional[str], str]] = []
    derived_names: List[str] = []
    derived_evaluators: List[Callable[[Tuple[object, ...]], object]] = []
    select_plan: List[Tuple[str, object]] = []  # ("group", var) | ("agg", out)

    for index, item in enumerate(query.select_items):
        expr = item.expr
        out_name = item.output_name
        if isinstance(expr, ast.FuncCall) and expr.name in ast.AGGREGATE_FUNCTIONS:
            if len(expr.args) != 1:
                raise QueryError(f"aggregate {expr.name} takes exactly one argument")
            arg = expr.args[0]
            if isinstance(arg, ast.Star):
                agg_specs.append(("count", None, out_name))
            else:
                column = f"__agg_arg_{index}"
                derived_names.append(column)
                derived_evaluators.append(compile_scalar(arg, resolve))
                agg_specs.append((expr.name, column, out_name))
            select_plan.append(("agg", out_name))
        elif isinstance(expr, ast.ColumnRef):
            variable = translation.resolve_variable(expr)
            if variable not in group_vars:
                raise QueryError(
                    f"column {expr} must appear in GROUP BY to be selected "
                    "alongside aggregates"
                )
            select_plan.append(("group", (variable, out_name)))
        else:
            raise QueryError(
                "only plain columns and aggregate calls are supported in an "
                f"aggregated SELECT list, got: {expr}"
            )

    # Extend the answer with the derived aggregate-argument columns.
    meter.charge(len(answer), "postprocess")
    extended_attrs = list(answer.attributes) + derived_names
    extended_rows = [
        row + tuple(ev(row) for ev in derived_evaluators) for row in answer.tuples
    ]
    extended = Relation(extended_attrs, extended_rows)

    grouped = extended.group_aggregate(group_vars, agg_specs, meter=meter)

    # Reorder/rename to the SELECT list's shape.
    out_names: List[str] = []
    indices: List[int] = []
    for kind, payload in select_plan:
        if kind == "group":
            variable, out_name = payload  # type: ignore[misc]
            indices.append(grouped.index_of(variable))
            out_names.append(out_name)
        else:
            indices.append(grouped.index_of(payload))  # type: ignore[arg-type]
            out_names.append(payload)  # type: ignore[arg-type]
    rows = [tuple(row[i] for i in indices) for row in grouped.tuples]
    return Relation(_dedupe_names(out_names), rows, name="answer")


def _order(
    result: Relation,
    translation: TranslationResult,
    meter: WorkMeter,
) -> Relation:
    query = translation.select_query
    keys: List[Tuple[str, bool]] = []
    for order_item in query.order_by:
        expr = order_item.expr
        if not isinstance(expr, ast.ColumnRef):
            raise QueryError(f"ORDER BY supports plain columns/aliases, got {expr}")
        # An ORDER BY key is either a SELECT output name (alias) or a column.
        if expr.table is None and result.has_attribute(expr.column):
            keys.append((expr.column, order_item.descending))
            continue
        alias_names = {
            item.output_name for item in query.select_items
        }
        if expr.table is None and expr.column in alias_names:
            keys.append((expr.column, order_item.descending))
            continue
        variable = translation.resolve_variable(expr)
        if not result.has_attribute(variable):
            raise QueryError(
                f"ORDER BY column {expr} is not part of the SELECT output"
            )
        keys.append((variable, order_item.descending))
    return result.sort_by(keys, meter=meter)


def _dedupe_names(names: Sequence[str]) -> List[str]:
    """Make output column names unique (SQL allows duplicate select names)."""
    seen: Dict[str, int] = {}
    unique: List[str] = []
    for name in names:
        if name in seen:
            seen[name] += 1
            unique.append(f"{name}_{seen[name]}")
        else:
            seen[name] = 0
            unique.append(name)
    return unique

"""Scalar and predicate evaluation over relation tuples.

Compiles :mod:`repro.query.ast` expressions into plain Python closures
evaluated per tuple.  The caller supplies a *resolver* mapping a
:class:`repro.query.ast.ColumnRef` to a tuple index, which is how the same
compiler serves base-table filters (columns of one relation) and
post-processing over answer relations (columns named by CQ variables).
"""

from __future__ import annotations

import operator
import re
from typing import Callable, Dict, Tuple

from repro.errors import ExecutionError
from repro.query import ast

Row = Tuple[object, ...]
Resolver = Callable[[ast.ColumnRef], int]

def _sql_like(value: object, pattern: object) -> bool:
    """SQL LIKE: % matches any run, _ matches one character."""
    if not isinstance(value, str) or not isinstance(pattern, str):
        return False
    regex = "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$"
    return re.match(regex, value) is not None


_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "like": _sql_like,
}

_ARITHMETIC: Dict[str, Callable[[object, object], object]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


def compile_scalar(
    expression: ast.Expression, resolve: Resolver
) -> Callable[[Row], object]:
    """Compile a scalar expression into a ``row -> value`` closure.

    Aggregate function calls are rejected — aggregates are computed by
    :meth:`repro.relational.relation.Relation.group_aggregate`, not per-row.
    """
    if isinstance(expression, ast.Literal):
        value = expression.value
        return lambda _row: value
    if isinstance(expression, ast.ColumnRef):
        index = resolve(expression)
        return lambda row: row[index]
    if isinstance(expression, ast.BinaryOp):
        left = compile_scalar(expression.left, resolve)
        right = compile_scalar(expression.right, resolve)
        apply = _ARITHMETIC.get(expression.op)
        if apply is None:
            raise ExecutionError(f"unsupported arithmetic operator {expression.op!r}")
        return lambda row: apply(left(row), right(row))
    if isinstance(expression, ast.FuncCall):
        if expression.name in ast.AGGREGATE_FUNCTIONS:
            raise ExecutionError(
                f"aggregate {expression.name!r} cannot be evaluated per-row; "
                "use group_aggregate"
            )
        raise ExecutionError(f"unsupported function {expression.name!r}")
    if isinstance(expression, ast.Star):
        raise ExecutionError("'*' is not a scalar expression")
    raise ExecutionError(f"unknown expression node {expression!r}")


def compile_predicate(
    comparison: ast.Comparison, resolve: Resolver
) -> Callable[[Row], bool]:
    """Compile a comparison into a ``row -> bool`` closure."""
    compare = _COMPARATORS.get(comparison.op)
    if compare is None:
        raise ExecutionError(f"unsupported comparison operator {comparison.op!r}")
    left = compile_scalar(comparison.left, resolve)
    right = compile_scalar(comparison.right, resolve)

    def predicate(row: Row) -> bool:
        try:
            return compare(left(row), right(row))
        except TypeError as exc:
            raise ExecutionError(
                f"type error evaluating {comparison}: {exc}"
            ) from exc

    return predicate


def compile_filter(
    predicate: "ast.Comparison | ast.InList", resolve: Resolver
) -> Callable[[Row], bool]:
    """Compile any supported filter predicate (comparison or IN list)."""
    if isinstance(predicate, ast.InList):
        tested = compile_scalar(predicate.expr, resolve)
        values = frozenset(predicate.values)
        return lambda row: tested(row) in values
    if isinstance(predicate, ast.Comparison):
        return compile_predicate(predicate, resolve)
    raise ExecutionError(f"unsupported filter predicate {predicate!r}")


def conjunction(
    predicates: "list[Callable[[Row], bool]]",
) -> Callable[[Row], bool]:
    """AND-combine compiled predicates (empty list = always true)."""
    if not predicates:
        return lambda _row: True
    if len(predicates) == 1:
        return predicates[0]

    def combined(row: Row) -> bool:
        return all(predicate(row) for predicate in predicates)

    return combined

"""System-R-style dynamic-programming join-order optimization.

The quantitative half of the paper's story.  Two search spaces:

* ``"leftdeep"`` — only left-deep trees (what the paper's PostgreSQL
  profile uses below the GEQO threshold);
* ``"bushy"`` — all bushy trees (the CommDB profile).

Cost metric is C_out: the sum of estimated intermediate result sizes.
Cross products are only considered when the join graph is disconnected
(the standard System-R restriction).  A ``"syntactic"`` mode builds the
FROM-clause-order left-deep plan without consulting estimates at all — the
"optimizer disabled / statistics unavailable" baseline of Fig. 8.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import OptimizationError
from repro.engine.cost import CardinalityEstimator, JoinSizeEstimate
from repro.engine.plan import JoinNode, PlanNode, ScanNode, left_deep_plan
from repro.query.translate import TranslationResult


class JoinGraph:
    """Aliases as nodes; an edge wherever two atoms share a CQ variable."""

    def __init__(self, translation: TranslationResult):
        self.translation = translation
        self.atom_variables: Dict[str, FrozenSet[str]] = {
            atom.name: atom.variables for atom in translation.query.atoms
        }
        self.aliases: Tuple[str, ...] = tuple(
            atom.name for atom in translation.query.atoms
        )

    def shared_variables(
        self, left: FrozenSet[str], right: FrozenSet[str]
    ) -> Tuple[str, ...]:
        """Variables shared between two alias groups (the join keys)."""
        left_vars: Set[str] = set()
        for alias in sorted(left):
            left_vars |= self.atom_variables[alias]
        right_vars: Set[str] = set()
        for alias in sorted(right):
            right_vars |= self.atom_variables[alias]
        return tuple(sorted(left_vars & right_vars))

    def connected_components(self) -> List[FrozenSet[str]]:
        """Connected components of the join graph (by shared variables)."""
        remaining = set(self.aliases)
        components: List[FrozenSet[str]] = []
        while remaining:
            start = sorted(remaining)[0]
            group = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for other in sorted(remaining - group):
                    if self.atom_variables[current] & self.atom_variables[other]:
                        group.add(other)
                        frontier.append(other)
            components.append(frozenset(group))
            remaining -= group
        return components


class JoinOrderOptimizer:
    """DP join enumeration over a join graph with a cardinality estimator."""

    def __init__(
        self,
        translation: TranslationResult,
        estimator: CardinalityEstimator,
        search: str = "bushy",
    ):
        if search not in ("bushy", "leftdeep"):
            raise OptimizationError(f"unknown search space {search!r}")
        self.graph = JoinGraph(translation)
        self.estimator = estimator
        self.search = search

    # ------------------------------------------------------------------

    def optimize(self) -> PlanNode:
        """Best plan over all FROM aliases (components cross-joined last,
        smallest first)."""
        components = self.graph.connected_components()
        plans: List[Tuple[PlanNode, JoinSizeEstimate, float]] = []
        for component in components:
            plans.append(self._optimize_component(component))
        plans.sort(key=lambda item: item[1].rows)
        plan, estimate, _cost = plans[0]
        for other_plan, other_estimate, _other_cost in plans[1:]:
            estimate = CardinalityEstimator.join(estimate, other_estimate, ())
            node = JoinNode(plan, other_plan, ())
            node.estimated_rows = estimate.rows
            plan = node
        return plan

    # ------------------------------------------------------------------

    def _scan(self, alias: str) -> Tuple[PlanNode, JoinSizeEstimate, float]:
        relation = self.graph.translation.query.atom(alias).relation
        node = ScanNode(alias, relation)
        estimate = self.estimator.scan(alias)
        node.estimated_rows = estimate.rows
        return node, estimate, estimate.rows

    def _optimize_component(
        self, component: FrozenSet[str]
    ) -> Tuple[PlanNode, JoinSizeEstimate, float]:
        if len(component) == 1:
            (alias,) = component
            return self._scan(alias)
        if self.search == "bushy":
            return self._dp_bushy(component)
        return self._dp_leftdeep(component)

    def _dp_leftdeep(
        self, component: FrozenSet[str]
    ) -> Tuple[PlanNode, JoinSizeEstimate, float]:
        best: Dict[FrozenSet[str], Tuple[float, PlanNode, JoinSizeEstimate]] = {}
        for alias in sorted(component):
            plan, estimate, cost = self._scan(alias)
            best[frozenset({alias})] = (cost, plan, estimate)

        ordered_aliases = sorted(component)
        for size in range(2, len(component) + 1):
            for subset in itertools.combinations(ordered_aliases, size):
                subset_key = frozenset(subset)
                champion: Optional[Tuple[float, PlanNode, JoinSizeEstimate]] = None
                for alias in subset:
                    rest = subset_key - {alias}
                    if rest not in best:
                        continue
                    shared = self.graph.shared_variables(rest, frozenset({alias}))
                    if not shared:
                        continue  # no cross products inside a component
                    rest_cost, rest_plan, rest_estimate = best[rest]
                    scan_plan, scan_estimate, scan_cost = self._scan(alias)
                    joined = CardinalityEstimator.join(
                        rest_estimate, scan_estimate, shared
                    )
                    cost = rest_cost + scan_cost + joined.rows
                    if champion is None or cost < champion[0]:
                        node = JoinNode(rest_plan, scan_plan, shared)
                        node.estimated_rows = joined.rows
                        champion = (cost, node, joined)
                if champion is not None:
                    best[subset_key] = champion
        return self._finish(best, component)

    def _dp_bushy(
        self, component: FrozenSet[str]
    ) -> Tuple[PlanNode, JoinSizeEstimate, float]:
        best: Dict[FrozenSet[str], Tuple[float, PlanNode, JoinSizeEstimate]] = {}
        for alias in sorted(component):
            plan, estimate, cost = self._scan(alias)
            best[frozenset({alias})] = (cost, plan, estimate)

        ordered_aliases = sorted(component)
        for size in range(2, len(component) + 1):
            for subset in itertools.combinations(ordered_aliases, size):
                subset_key = frozenset(subset)
                champion: Optional[Tuple[float, PlanNode, JoinSizeEstimate]] = None
                for split_size in range(1, size // 2 + 1):
                    for left in itertools.combinations(subset, split_size):
                        left_key = frozenset(left)
                        right_key = subset_key - left_key
                        if left_key not in best or right_key not in best:
                            continue
                        # Canonicalize symmetric splits at the midpoint.
                        if len(left_key) == len(right_key) and min(left_key) > min(
                            right_key
                        ):
                            continue
                        shared = self.graph.shared_variables(left_key, right_key)
                        if not shared:
                            continue
                        lcost, lplan, lest = best[left_key]
                        rcost, rplan, rest_ = best[right_key]
                        joined = CardinalityEstimator.join(lest, rest_, shared)
                        cost = lcost + rcost + joined.rows
                        if champion is None or cost < champion[0]:
                            node = JoinNode(lplan, rplan, shared)
                            node.estimated_rows = joined.rows
                            champion = (cost, node, joined)
                if champion is not None:
                    best[subset_key] = champion
        return self._finish(best, component)

    def _finish(
        self,
        best: Dict[FrozenSet[str], Tuple[float, PlanNode, JoinSizeEstimate]],
        component: FrozenSet[str],
    ) -> Tuple[PlanNode, JoinSizeEstimate, float]:
        entry = best.get(frozenset(component))
        if entry is None:
            raise OptimizationError(
                f"dynamic program failed to cover component {sorted(component)}"
            )
        cost, plan, estimate = entry
        return plan, estimate, cost


def syntactic_plan(
    translation: TranslationResult, estimator: CardinalityEstimator
) -> PlanNode:
    """FROM-clause-order left-deep plan — the optimizer-disabled baseline.

    Joins each relation to the accumulated prefix on whatever variables they
    share (a cross product when none), exactly as a naive evaluator would.
    """
    graph = JoinGraph(translation)
    scans: List[ScanNode] = []
    for atom in translation.query.atoms:
        node = ScanNode(atom.name, atom.relation)
        node.estimated_rows = estimator.scan(atom.name).rows
        scans.append(node)

    def shared_for(prefix_aliases: FrozenSet[str], scan: ScanNode) -> Tuple[str, ...]:
        return graph.shared_variables(prefix_aliases, frozenset({scan.alias}))

    plan = left_deep_plan(scans, shared_for)
    # Annotate estimates bottom-up for EXPLAIN fidelity.
    _annotate(plan, estimator, graph)
    return plan


def _annotate(
    plan: PlanNode, estimator: CardinalityEstimator, graph: JoinGraph
) -> JoinSizeEstimate:
    if isinstance(plan, ScanNode):
        estimate = estimator.scan(plan.alias)
        plan.estimated_rows = estimate.rows
        return estimate
    assert isinstance(plan, JoinNode)
    left = _annotate(plan.left, estimator, graph)
    right = _annotate(plan.right, estimator, graph)
    joined = CardinalityEstimator.join(left, right, plan.shared_variables)
    plan.estimated_rows = joined.rows
    return joined

"""Simulated DBMS substrate.

The paper measures PostgreSQL 8.3 and a commercial system ("CommDB").
Neither can ship in a self-contained reproduction, so this package provides
an instrumented, from-scratch engine whose optimizer and executor exhibit
the same algorithmic behaviours the paper's figures measure:

* :mod:`repro.engine.cost` — textbook cardinality estimation, with and
  without statistics (the no-ANALYZE mode uses magic defaults);
* :mod:`repro.engine.optimizer` — System-R dynamic programming over join
  orders (left-deep or bushy);
* :mod:`repro.engine.geqo` — a genetic join-order search (PostgreSQL's
  GEQO equivalent) used above a configurable relation-count threshold;
* :mod:`repro.engine.executor` — hash-join execution over
  :class:`repro.relational.relation.Relation`, work-metered;
* :mod:`repro.engine.dbms` — the façade: engine profiles ``PostgresLike``
  and ``CommDBLike``, SQL entry point, and the *optimizer handler* hook the
  tight coupling replaces (Fig. 6 of the paper).
"""

from repro.engine.plan import JoinNode, PlanNode, ScanNode, render_plan
from repro.engine.cost import CardinalityEstimator, EstimationContext
from repro.engine.optimizer import JoinOrderOptimizer
from repro.engine.geqo import GeqoOptimizer
from repro.engine.executor import ExecutionResult, PlanExecutor
from repro.engine.dbms import (
    COMMDB_PROFILE,
    POSTGRES_PROFILE,
    EngineProfile,
    SimulatedDBMS,
)

__all__ = [
    "PlanNode",
    "ScanNode",
    "JoinNode",
    "render_plan",
    "CardinalityEstimator",
    "EstimationContext",
    "JoinOrderOptimizer",
    "GeqoOptimizer",
    "PlanExecutor",
    "ExecutionResult",
    "EngineProfile",
    "SimulatedDBMS",
    "POSTGRES_PROFILE",
    "COMMDB_PROFILE",
]

"""Cardinality estimation for the simulated DBMS's quantitative optimizer.

Implements the same textbook estimators as
:mod:`repro.core.costmodel` (deliberately duplicated: the engine substrate
must not depend on the paper's contribution layer):

* equality filter: 1 / V(R, a);
* range filter: fraction of the [min, max] span when extrema are known,
  otherwise the standard 1/3 default;
* join: |R ⋈ S| = |R|·|S| / Π max(V(R,a), V(S,a)) over shared variables.

With ``use_statistics=False`` the estimator falls back to the magic
defaults a freshly-loaded DBMS would use (the paper's "statistics not yet
available" scenario).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.errors import OptimizationError, SchemaError
from repro.query import ast
from repro.query.translate import TranslationResult
from repro.relational.database import Database
from repro.relational.statistics import TableStatistics

DEFAULT_ROWS = 1000.0
DEFAULT_DISTINCT = 200.0
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_NEQ_SELECTIVITY = 0.995
DEFAULT_LIKE_SELECTIVITY = 0.1


@dataclass
class AliasEstimate:
    """Estimated cardinality and per-variable distincts of one base scan."""

    rows: float
    distinct: Dict[str, float] = field(default_factory=dict)

    def distinct_of(self, variable: str) -> float:
        value = self.distinct.get(variable, DEFAULT_DISTINCT)
        return max(min(value, max(self.rows, 1.0)), 1.0)


@dataclass
class JoinSizeEstimate:
    """Estimated size/distincts of an intermediate join result."""

    rows: float
    distinct: Dict[str, float]

    def distinct_of(self, variable: str) -> float:
        value = self.distinct.get(variable, DEFAULT_DISTINCT)
        return max(min(value, max(self.rows, 1.0)), 1.0)


class EstimationContext:
    """Per-query estimation state: one :class:`AliasEstimate` per alias.

    Built from a translation result plus the database's statistics catalog.
    Filter selectivities are applied to the base estimates, mirroring what
    the real optimizer sees after predicate pushdown.
    """

    def __init__(self, estimates: Mapping[str, AliasEstimate]):
        self.estimates: Dict[str, AliasEstimate] = dict(estimates)

    @classmethod
    def build(
        cls,
        translation: TranslationResult,
        database: Database,
        use_statistics: bool,
    ) -> "EstimationContext":
        estimates: Dict[str, AliasEstimate] = {}
        for atom in translation.query.atoms:
            alias = atom.name
            stats = database.stats_for(atom.relation) if use_statistics else None
            if stats is not None:
                rows = float(max(stats.row_count, 1))
                distinct = {}
                for variable in atom.variables:
                    column = translation.variable_bindings[variable][alias]
                    distinct[variable] = float(stats.distinct(column))
            else:
                # A real DBMS knows physical table sizes (relpages) even
                # before ANALYZE; what it lacks are distinct counts and
                # value distributions.  This is exactly what makes the
                # no-statistics optimizer favour spurious low-key joins.
                try:
                    rows = float(max(len(database.table(atom.relation)), 1))
                except SchemaError:  # pragma: no cover - missing table
                    rows = DEFAULT_ROWS
                distinct = {v: DEFAULT_DISTINCT for v in atom.variables}
            selectivity = filters_selectivity(
                translation.atom_filters.get(alias, ()), stats
            )
            rows = max(rows * selectivity, 1.0)
            distinct = {
                v: max(min(d, rows), 1.0) for v, d in distinct.items()
            }
            estimates[alias] = AliasEstimate(rows=rows, distinct=distinct)
        return cls(estimates)

    def for_alias(self, alias: str) -> AliasEstimate:
        try:
            return self.estimates[alias]
        except KeyError:
            raise OptimizationError(f"no estimate for alias {alias!r}") from None


def filters_selectivity(
    filters: Tuple[ast.Comparison, ...],
    stats: Optional[TableStatistics],
) -> float:
    """Combined selectivity of pushed-down constant filters."""
    selectivity = 1.0
    for comparison in filters:
        selectivity *= _one_filter_selectivity(comparison, stats)
    return max(selectivity, 1e-9)


def _one_filter_selectivity(
    comparison, stats: Optional[TableStatistics]
) -> float:
    if isinstance(comparison, ast.InList):
        # IN over n constants ≈ n equality predicates, capped at 1.
        column = (
            comparison.expr.column
            if isinstance(comparison.expr, ast.ColumnRef)
            else None
        )
        if stats is not None and column is not None and stats.has_attribute(column):
            per_value = stats.attribute(column).selectivity
        else:
            per_value = DEFAULT_EQ_SELECTIVITY
        return min(len(comparison.values) * per_value, 1.0)
    column = None
    constant = None
    if isinstance(comparison.left, ast.ColumnRef) and isinstance(
        comparison.right, ast.Literal
    ):
        column, constant = comparison.left.column, comparison.right.value
    elif isinstance(comparison.right, ast.ColumnRef) and isinstance(
        comparison.left, ast.Literal
    ):
        column, constant = comparison.right.column, comparison.left.value

    if comparison.op == "=":
        if stats is not None and column is not None and stats.has_attribute(column):
            return stats.attribute(column).selectivity
        return DEFAULT_EQ_SELECTIVITY
    if comparison.op == "like":
        return DEFAULT_LIKE_SELECTIVITY
    if comparison.op == "<>":
        if stats is not None and column is not None and stats.has_attribute(column):
            return 1.0 - stats.attribute(column).selectivity
        return DEFAULT_NEQ_SELECTIVITY
    # Range operators: interpolate on [min, max] when extrema are known.
    if (
        stats is not None
        and column is not None
        and stats.has_attribute(column)
        and constant is not None
    ):
        attr = stats.attribute(column)
        fraction = _range_fraction(attr.min_value, attr.max_value, constant)
        if fraction is not None:
            if comparison.op in ("<", "<="):
                return min(max(fraction, 0.0), 1.0)
            return min(max(1.0 - fraction, 0.0), 1.0)
    return DEFAULT_RANGE_SELECTIVITY


def _range_fraction(
    minimum: Optional[object], maximum: Optional[object], value: object
) -> Optional[float]:
    """Fraction of the [min, max] span below ``value`` (numeric/date)."""
    if minimum is None or maximum is None:
        return None
    if isinstance(minimum, (int, float)) and isinstance(maximum, (int, float)):
        if not isinstance(value, (int, float)) or maximum <= minimum:
            return None
        return (float(value) - float(minimum)) / (float(maximum) - float(minimum))
    if isinstance(minimum, str) and isinstance(maximum, str) and isinstance(value, str):
        # ISO dates compare lexicographically; interpolate on ordinals of the
        # first differing component is overkill — use a coarse 3-point scale.
        if value <= minimum:
            return 0.0
        if value >= maximum:
            return 1.0
        lo = _date_ordinal(minimum)
        hi = _date_ordinal(maximum)
        mid = _date_ordinal(value)
        if lo is not None and hi is not None and mid is not None and hi > lo:
            return (mid - lo) / (hi - lo)
        return 0.5
    return None


def _date_ordinal(text: str) -> Optional[int]:
    try:
        year, month, day = text.split("-")
        return int(year) * 372 + int(month) * 31 + int(day)
    except (ValueError, AttributeError):
        return None


class CardinalityEstimator:
    """Join-size estimation over an :class:`EstimationContext`."""

    def __init__(self, context: EstimationContext):
        self.context = context

    def scan(self, alias: str) -> JoinSizeEstimate:
        estimate = self.context.for_alias(alias)
        return JoinSizeEstimate(estimate.rows, dict(estimate.distinct))

    @staticmethod
    def join(
        left: JoinSizeEstimate,
        right: JoinSizeEstimate,
        shared_variables: Tuple[str, ...],
    ) -> JoinSizeEstimate:
        rows = left.rows * right.rows
        for variable in shared_variables:
            rows /= max(left.distinct_of(variable), right.distinct_of(variable))
        distinct: Dict[str, float] = {}
        for variable in set(left.distinct) | set(right.distinct):
            if variable in left.distinct and variable in right.distinct:
                value = min(left.distinct[variable], right.distinct[variable])
            else:
                value = left.distinct.get(
                    variable, right.distinct.get(variable, DEFAULT_DISTINCT)
                )
            distinct[variable] = max(min(value, max(rows, 1.0)), 1.0)
        return JoinSizeEstimate(max(rows, 0.0), distinct)

"""The simulated DBMS façade: engine profiles, SQL entry point, handler hook.

Two profiles stand in for the paper's systems:

* :data:`COMMDB_PROFILE` — "a leader DBMS": bushy-tree exhaustive DP,
  no GEQO, low per-work-unit overhead.  Running it with
  ``optimizer_enabled=False`` reproduces the paper's "CommDB without its
  standard optimizer" baseline (syntactic join order, no predicate
  pushdown).
* :data:`POSTGRES_PROFILE` — PostgreSQL 8.3: left-deep DP below the GEQO
  threshold, genetic search above it, higher per-work-unit overhead.

The *optimizer handler* hook is the reproduction of Fig. 6: the tight
coupling (:func:`repro.core.integration.install_structural_optimizer`)
replaces the handler so queries are planned by cost-k-decomp instead of
the built-in join-order search — completely transparently to ``run_sql``
callers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import WorkBudgetExceeded
from repro.engine.cost import CardinalityEstimator, EstimationContext
from repro.engine.executor import ExecutionResult
from repro.engine.geqo import GeqoOptimizer
from repro.engine.optimizer import JoinOrderOptimizer, syntactic_plan
from repro.engine.plan import JoinNode, PlanNode, ScanNode, render_plan
from repro.engine.postprocess import apply_sql_semantics
from repro.engine.scans import apply_residual_filters, atom_relations_sql
from repro.metering import SpillModel, WorkMeter
from repro.obs.tracing import NullTracer, Tracer, current_tracer
from repro.resilience.context import current_context
from repro.query import ast
from repro.query.parser import parse_sql
from repro.query.translate import TranslationResult, sql_to_conjunctive
from repro.relational.database import Database
from repro.relational.relation import Relation

# An optimizer handler receives the DBMS, the translated query and the run's
# meter, and returns the conjunctive answer (variables covering out(Q)) plus
# a plan description for EXPLAIN — optionally with a third element naming
# the planner that produced the plan ("q-hd", "q-hd(cached)",
# "builtin-fallback"); two-element returns keep the legacy "q-hd" label.
OptimizerHandler = Callable[
    ["SimulatedDBMS", TranslationResult, WorkMeter], Tuple[Relation, str]
]


@dataclass(frozen=True)
class EngineProfile:
    """Behavioural knobs of a simulated engine.

    Attributes:
        name: display name ("postgresql", "commdb").
        search: DP search space — ``"bushy"`` or ``"leftdeep"``.
        geqo_threshold: FROM-clause size at which the genetic optimizer
            replaces DP (None = never, like the commercial profile).
        work_time_factor: simulated seconds per work unit; models the
            engines' different per-tuple constants (the paper's PostgreSQL
            is markedly slower than CommDB on identical plans, cf. Fig. 9).
        geqo_generations / geqo_population: GA effort knobs.
        memory_tuples / spill_factor: memory-pressure model — intermediates
            larger than ``memory_tuples`` charge ``spill_factor`` extra
            work per overflowing tuple (the paper's 512 MB laptop spilling
            to a 5400 rpm disk).  None disables spilling.
        join_algorithm: the default physical join ("hash" or "merge").
        nlj_threshold: when a join input's estimated rows fall at or below
            this, nested loops replace the default algorithm (no build cost
            for tiny inputs).
    """

    name: str
    search: str = "bushy"
    geqo_threshold: Optional[int] = None
    work_time_factor: float = 1e-6
    geqo_generations: int = 40
    geqo_population: int = 32
    memory_tuples: Optional[int] = 20_000
    spill_factor: float = 10.0
    join_algorithm: str = "hash"
    nlj_threshold: float = 4.0


POSTGRES_PROFILE = EngineProfile(
    name="postgresql",
    search="leftdeep",
    geqo_threshold=8,
    work_time_factor=4e-6,
)

COMMDB_PROFILE = EngineProfile(
    name="commdb",
    search="bushy",
    geqo_threshold=None,
    work_time_factor=1e-6,
)


@dataclass
class DBMSResult:
    """Outcome of one ``run_sql`` call.

    Attributes:
        relation: final SQL result (None when the run did not finish).
        answer: the conjunctive core's answer before post-processing.
        work: total work units; the machine-independent "time" measure.
        simulated_seconds: work × the profile's per-unit factor.
        elapsed_seconds: actual wall-clock duration.
        plan_text: EXPLAIN rendering of the executed plan.
        finished: False when the work budget was exhausted (DNF).
        used_statistics: whether the optimizer consulted ANALYZE data.
        optimizer: label of the planner that produced the plan
            ("dp-bushy", "dp-leftdeep", "geqo", "syntactic", "q-hd").
        work_breakdown: per-category work units (the run meter's
            :meth:`~repro.metering.WorkMeter.snapshot`); feed it to
            :func:`repro.metering.split_phases` for the per-phase view.
    """

    relation: Optional[Relation]
    answer: Optional[Relation]
    work: int
    simulated_seconds: float
    elapsed_seconds: float
    plan_text: str
    finished: bool
    used_statistics: bool
    optimizer: str
    work_breakdown: Dict[str, int] = field(default_factory=dict)


@dataclass
class AnalyzedExplain:
    """EXPLAIN ANALYZE output: the annotated tree plus everything behind it.

    Attributes:
        text: the rendered operator tree with per-node actual rows, work
            units, wall time, and estimation error, plus a totals footer.
        plan: the executed plan tree.
        result: the full :class:`DBMSResult` of the traced execution.
        node_stats: per-node observed stats keyed by ``id(node)``.
        tracer: the tracer holding the raw ``exec.*`` spans.
    """

    text: str
    plan: PlanNode
    result: DBMSResult
    node_stats: Dict[object, object]
    tracer: "Tracer"

    def __str__(self) -> str:
        return self.text


class SimulatedDBMS:
    """An instrumented DBMS over an in-memory :class:`Database`.

    Args:
        database: the stored data (+ statistics when analyzed).
        profile: behavioural profile (PostgreSQL-like or CommDB-like).
    """

    def __init__(self, database: Database, profile: EngineProfile = COMMDB_PROFILE):
        self.database = database
        self.profile = profile
        self.optimizer_handler: Optional[OptimizerHandler] = None
        self.spill_model: Optional[SpillModel] = None
        if profile.memory_tuples is not None:
            self.spill_model = SpillModel(
                profile.memory_tuples, profile.spill_factor
            )

    # ------------------------------------------------------------------
    # The Fig. 6 hook
    # ------------------------------------------------------------------

    def set_optimizer_handler(self, handler: Optional[OptimizerHandler]) -> None:
        """Install (or clear) a replacement optimizer handler.

        This is the modification the paper makes to PostgreSQL's
        *Optimizer handler* module: control no longer passes to the
        built-in planners but to the structural pipeline.
        """
        self.optimizer_handler = handler

    # ------------------------------------------------------------------
    # SQL entry point
    # ------------------------------------------------------------------

    def translate(
        self,
        sql: Union[str, ast.SelectQuery],
        name: str = "Q",
        work_budget: Optional[int] = None,
    ) -> TranslationResult:
        """Parse (if needed) and translate a query against this database.

        Uncorrelated IN-subqueries are flattened here: each subquery is
        executed once (through this engine, bypassing any structural
        handler) and replaced by the IN-list of its answers — so the
        conjunctive pipeline only ever sees flat queries.

        Args:
            work_budget: work-unit budget applied to subquery executions,
                so flattening cannot escape an outer query's budget.
        """
        from repro.query.subqueries import flatten_subqueries, has_subqueries

        query = parse_sql(sql) if isinstance(sql, str) else sql
        schema = self.database.schema.as_mapping()
        if has_subqueries(query):
            def run_subquery(subquery: ast.SelectQuery):
                result = self.run_sql(
                    subquery, bypass_handler=True, work_budget=work_budget
                )
                relation = result.relation
                if relation is None:
                    raise WorkBudgetExceeded(
                        work_budget or 0, result.work, phase="translate.subquery"
                    )
                return [row[0] for row in relation.tuples]

            query = flatten_subqueries(query, run_subquery, schema)
        return sql_to_conjunctive(query, schema, name=name)

    def run_sql(
        self,
        sql: Union[str, ast.SelectQuery, TranslationResult],
        use_statistics: Optional[bool] = None,
        optimizer_enabled: bool = True,
        work_budget: Optional[int] = None,
        bypass_handler: bool = False,
    ) -> DBMSResult:
        """Plan and execute a SQL query.

        Args:
            sql: SQL text, a parsed AST, or a pre-built translation.
            use_statistics: consult ANALYZE statistics; defaults to whether
                the database has them (a fresh database runs on magic
                defaults, like a real system before ANALYZE).
            optimizer_enabled: when False, run the syntactic baseline —
                FROM-order left-deep joins without predicate pushdown (the
                paper's "without its standard optimizer" mode).
            work_budget: abort after this many work units (DNF), the
                simulated "10-minute timeout".
            bypass_handler: ignore an installed structural handler (used by
                the tight coupling itself to delegate subproblems to the
                built-in engine).
        """
        translation = (
            sql
            if isinstance(sql, TranslationResult)
            else self.translate(sql, work_budget=work_budget)
        )
        if use_statistics is None:
            use_statistics = self.database.has_statistics()
        meter = WorkMeter(budget=work_budget)
        started = time.perf_counter()

        if self.optimizer_handler is not None and not bypass_handler:
            return self._run_with_handler(translation, meter, started)

        try:
            answer, plan_text, label = self.plan_and_join(
                translation, meter, use_statistics, optimizer_enabled
            )
            final = apply_sql_semantics(answer, translation, meter)
            finished = True
        except WorkBudgetExceeded:
            answer, final, finished = None, None, False
            plan_text, label = "(aborted)", "aborted"
        elapsed = time.perf_counter() - started
        return DBMSResult(
            relation=final,
            answer=answer,
            work=meter.total,
            simulated_seconds=meter.total * self.profile.work_time_factor,
            elapsed_seconds=elapsed,
            plan_text=plan_text,
            finished=finished,
            used_statistics=use_statistics,
            optimizer=label,
            work_breakdown=meter.snapshot(),
        )

    # ------------------------------------------------------------------

    def _run_with_handler(
        self, translation: TranslationResult, meter: WorkMeter, started: float
    ) -> DBMSResult:
        assert self.optimizer_handler is not None
        label = "q-hd"
        try:
            outcome = self.optimizer_handler(self, translation, meter)
            if len(outcome) == 3:
                answer, plan_text, label = outcome
            else:
                answer, plan_text = outcome
            final = apply_sql_semantics(answer, translation, meter)
            finished = True
        except WorkBudgetExceeded:
            answer, final, finished = None, None, False
            plan_text = "(aborted)"
        elapsed = time.perf_counter() - started
        return DBMSResult(
            relation=final,
            answer=answer,
            work=meter.total,
            simulated_seconds=meter.total * self.profile.work_time_factor,
            elapsed_seconds=elapsed,
            plan_text=plan_text,
            finished=finished,
            used_statistics=self.database.has_statistics(),
            optimizer=label,
            work_breakdown=meter.snapshot(),
        )

    def plan_and_join(
        self,
        translation: TranslationResult,
        meter: WorkMeter,
        use_statistics: bool,
        optimizer_enabled: bool,
    ) -> Tuple[Relation, str, str]:
        """Build and execute the join plan; returns (CQ answer, plan, label)."""
        context = EstimationContext.build(
            translation, self.database, use_statistics
        )
        estimator = CardinalityEstimator(context)
        push = optimizer_enabled
        base, residual = atom_relations_sql(
            translation.query, self.database, translation, meter, push_filters=push
        )

        plan, label = self._choose_plan(translation, estimator, optimizer_enabled)
        joined = self._execute_plan(plan, base, meter)
        if residual:
            joined = apply_residual_filters(joined, residual, meter)
        output = list(translation.query.output)
        answer = joined.project(output, dedup=True, meter=meter)
        return answer, render_plan(plan), label

    def _choose_plan(
        self,
        translation: TranslationResult,
        estimator: CardinalityEstimator,
        optimizer_enabled: bool = True,
    ) -> Tuple[PlanNode, str]:
        """Run the profile's planner; returns (plan, planner label)."""
        n_relations = len(translation.query.atoms)
        if not optimizer_enabled:
            plan = syntactic_plan(translation, estimator)
            label = "syntactic"
        elif (
            self.profile.geqo_threshold is not None
            and n_relations >= self.profile.geqo_threshold
        ):
            plan = GeqoOptimizer(
                translation,
                estimator,
                population_size=self.profile.geqo_population,
                generations=self.profile.geqo_generations,
            ).optimize()
            label = "geqo"
        else:
            plan = JoinOrderOptimizer(
                translation, estimator, search=self.profile.search
            ).optimize()
            label = f"dp-{self.profile.search}"
        self._assign_join_algorithms(plan)
        return plan, label

    def _assign_join_algorithms(self, plan: PlanNode) -> None:
        """Pick a physical operator per join from the profile + estimates."""
        for node in plan.walk():
            if not isinstance(node, JoinNode):
                continue
            if node.is_cross_product:
                node.algorithm = "hash"  # natural_join handles the cross case
            elif (
                min(node.left.estimated_rows, node.right.estimated_rows)
                <= self.profile.nlj_threshold
            ):
                node.algorithm = "nlj"
            else:
                node.algorithm = self.profile.join_algorithm

    def _execute_plan(
        self,
        plan: PlanNode,
        base: Mapping[str, Relation],
        meter: WorkMeter,
        tracer: "Optional[Union[Tracer, NullTracer]]" = None,
    ) -> Relation:
        if tracer is None:
            tracer = current_tracer()
        context = current_context()
        if isinstance(plan, ScanNode):
            context.checkpoint("exec.scan")
            with tracer.span(
                "exec.scan",
                meter=meter,
                node=id(plan),
                op=str(plan),
                est_rows=plan.estimated_rows,
            ) as span:
                relation = base[plan.alias]
                meter.charge(len(relation), "scan")
                span.tag(rows_out=len(relation))
            return relation
        assert isinstance(plan, JoinNode)
        context.checkpoint("exec.join")
        with tracer.span(
            "exec.join",
            meter=meter,
            node=id(plan),
            op=str(plan),
            algorithm=plan.algorithm,
            est_rows=plan.estimated_rows,
        ) as span:
            left = self._execute_plan(plan.left, base, meter, tracer)
            right = self._execute_plan(plan.right, base, meter, tracer)
            span.tag(rows_in_left=len(left), rows_in_right=len(right))
            if plan.algorithm == "merge" and not plan.is_cross_product:
                joined = left.merge_join(right, meter=meter)
            elif plan.algorithm == "nlj" and not plan.is_cross_product:
                small, big = (left, right) if len(left) <= len(right) else (right, left)
                joined = small.nested_loop_join(big, meter=meter)
            else:
                joined = left.natural_join(right, meter=meter)
            context.account(len(joined), len(joined.attributes), "exec.join")
            if self.spill_model is not None:
                self.spill_model.charge(meter, len(joined))
            span.tag(rows_out=len(joined))
        return joined

    # ------------------------------------------------------------------

    def explain(
        self,
        sql: Union[str, ast.SelectQuery, TranslationResult],
        use_statistics: Optional[bool] = None,
    ) -> str:
        """EXPLAIN without executing: render the chosen join plan."""
        translation = (
            sql if isinstance(sql, TranslationResult) else self.translate(sql)
        )
        if use_statistics is None:
            use_statistics = self.database.has_statistics()
        context = EstimationContext.build(translation, self.database, use_statistics)
        estimator = CardinalityEstimator(context)
        plan, _label = self._choose_plan(translation, estimator)
        return render_plan(plan)

    def explain_analyze(
        self,
        sql: Union[str, ast.SelectQuery, TranslationResult],
        use_statistics: Optional[bool] = None,
        work_budget: Optional[int] = None,
    ) -> "AnalyzedExplain":
        """EXPLAIN ANALYZE: execute the chosen plan under tracing.

        Plans exactly like :meth:`run_sql` with the built-in planner
        (ignoring any installed structural handler — the point is to show
        *this engine's* operator tree), executes it under a private
        :class:`~repro.obs.tracing.Tracer`, and returns the operator tree
        annotated with actual rows, work units, wall time, and the
        estimated-vs-actual cardinality error per node.
        """
        from repro.obs.explain import render_analyzed_plan, stats_by_node

        translation = (
            sql if isinstance(sql, TranslationResult) else self.translate(sql)
        )
        if use_statistics is None:
            use_statistics = self.database.has_statistics()
        context = EstimationContext.build(translation, self.database, use_statistics)
        estimator = CardinalityEstimator(context)
        plan, label = self._choose_plan(translation, estimator)

        tracer = Tracer()
        meter = WorkMeter(budget=work_budget)
        started = time.perf_counter()
        try:
            base, residual = atom_relations_sql(
                translation.query,
                self.database,
                translation,
                meter,
                push_filters=True,
            )
            joined = self._execute_plan(plan, base, meter, tracer)
            if residual:
                joined = apply_residual_filters(joined, residual, meter)
            answer = joined.project(
                list(translation.query.output), dedup=True, meter=meter
            )
            final = apply_sql_semantics(answer, translation, meter)
            finished = True
        except WorkBudgetExceeded:
            answer, final, finished = None, None, False
        elapsed = time.perf_counter() - started
        result = DBMSResult(
            relation=final,
            answer=answer,
            work=meter.total,
            simulated_seconds=meter.total * self.profile.work_time_factor,
            elapsed_seconds=elapsed,
            plan_text=render_plan(plan),
            finished=finished,
            used_statistics=use_statistics,
            optimizer=label,
            work_breakdown=meter.snapshot(),
        )
        stats = stats_by_node(tracer.spans())
        text = render_analyzed_plan(plan, stats)
        footer = [
            "",
            f"planner: {label}   total work: {meter.total} units   "
            f"wall: {elapsed * 1000:.1f} ms",
        ]
        if final is not None:
            footer.append(
                f"answer rows: {len(final)}   "
                f"(conjunctive answer: {len(answer)} rows)"
            )
        else:
            footer.append("answer rows: DNF (work budget exhausted)")
        return AnalyzedExplain(
            text=text + "\n" + "\n".join(footer),
            plan=plan,
            result=result,
            node_stats=stats,
            tracer=tracer,
        )

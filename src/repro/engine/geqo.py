"""GEQO: genetic join-order search (PostgreSQL's genetic query optimizer).

PostgreSQL switches from exhaustive DP to a genetic algorithm when the
FROM-clause exceeds ``geqo_threshold`` relations; the paper's Fig. 9 shows
the stock optimizer degrading on exactly the long queries where GEQO kicks
in.  This module reproduces that component: individuals are left-deep join
orders (alias permutations), fitness is the estimated C_out of the
resulting plan, evolution uses tournament selection, order crossover (OX)
and swap mutation, with a fixed generation budget and a seeded RNG for
reproducibility.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import OptimizationError
from repro.engine.cost import CardinalityEstimator, JoinSizeEstimate
from repro.engine.optimizer import JoinGraph
from repro.engine.plan import JoinNode, PlanNode, ScanNode
from repro.query.translate import TranslationResult

CROSS_PRODUCT_PENALTY = 1e12


class GeqoOptimizer:
    """Genetic search over left-deep join orders.

    Args:
        translation: the query being optimized.
        estimator: cardinality estimator (statistics-backed or defaults).
        population_size / generations / mutation_rate: GA knobs; defaults
            follow PostgreSQL's effort scaling for medium queries.
        seed: RNG seed — deterministic runs for the benchmark harness.
    """

    def __init__(
        self,
        translation: TranslationResult,
        estimator: CardinalityEstimator,
        population_size: int = 32,
        generations: int = 40,
        mutation_rate: float = 0.15,
        seed: Optional[int] = 0,
    ):
        self.graph = JoinGraph(translation)
        self.translation = translation
        self.estimator = estimator
        self.population_size = max(population_size, 4)
        self.generations = max(generations, 1)
        self.mutation_rate = mutation_rate
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------

    def optimize(self) -> PlanNode:
        """Run the GA and build the best-found left-deep plan."""
        aliases = list(self.graph.aliases)
        if not aliases:
            raise OptimizationError("cannot optimize a query with no relations")
        if len(aliases) == 1:
            return self._plan_for(aliases)

        population = [self._random_order(aliases) for _ in range(self.population_size)]
        fitness = [self._fitness(order) for order in population]

        for _generation in range(self.generations):
            offspring: List[List[str]] = []
            while len(offspring) < self.population_size:
                parent_a = self._tournament(population, fitness)
                parent_b = self._tournament(population, fitness)
                child = self._order_crossover(parent_a, parent_b)
                if self.rng.random() < self.mutation_rate:
                    self._swap_mutate(child)
                offspring.append(child)
            # Elitism: keep the best individual seen so far.
            best_index = min(range(len(population)), key=lambda i: fitness[i])
            offspring[0] = list(population[best_index])
            population = offspring
            fitness = [self._fitness(order) for order in population]

        best_index = min(range(len(population)), key=lambda i: fitness[i])
        return self._plan_for(population[best_index])

    # ------------------------------------------------------------------
    # GA machinery
    # ------------------------------------------------------------------

    def _random_order(self, aliases: Sequence[str]) -> List[str]:
        order = list(aliases)
        self.rng.shuffle(order)
        return order

    def _tournament(
        self, population: List[List[str]], fitness: List[float], size: int = 3
    ) -> List[str]:
        indices = [self.rng.randrange(len(population)) for _ in range(size)]
        winner = min(indices, key=lambda i: fitness[i])
        return population[winner]

    def _order_crossover(self, parent_a: List[str], parent_b: List[str]) -> List[str]:
        """OX crossover: copy a slice of A, fill the rest in B's order."""
        n = len(parent_a)
        start = self.rng.randrange(n)
        end = self.rng.randrange(start, n)
        slice_set = set(parent_a[start : end + 1])
        child: List[Optional[str]] = [None] * n
        child[start : end + 1] = parent_a[start : end + 1]
        fill = [alias for alias in parent_b if alias not in slice_set]
        cursor = 0
        for i in range(n):
            if child[i] is None:
                child[i] = fill[cursor]
                cursor += 1
        return [alias for alias in child if alias is not None]

    def _swap_mutate(self, order: List[str]) -> None:
        i = self.rng.randrange(len(order))
        j = self.rng.randrange(len(order))
        order[i], order[j] = order[j], order[i]

    # ------------------------------------------------------------------
    # Fitness: estimated C_out, with a heavy penalty per cross product
    # ------------------------------------------------------------------

    def _fitness(self, order: Sequence[str]) -> float:
        current = self.estimator.scan(order[0])
        current_aliases = frozenset({order[0]})
        cost = current.rows
        for alias in order[1:]:
            shared = self.graph.shared_variables(
                current_aliases, frozenset({alias})
            )
            scan = self.estimator.scan(alias)
            current = CardinalityEstimator.join(current, scan, shared)
            current_aliases = current_aliases | {alias}
            cost += scan.rows + current.rows
            if not shared:
                cost += CROSS_PRODUCT_PENALTY
        return cost

    def _plan_for(self, order: Sequence[str]) -> PlanNode:
        plan: Optional[PlanNode] = None
        current: Optional[JoinSizeEstimate] = None
        current_aliases: FrozenSet[str] = frozenset()
        for alias in order:
            relation = self.translation.query.atom(alias).relation
            scan_node = ScanNode(alias, relation)
            scan_estimate = self.estimator.scan(alias)
            scan_node.estimated_rows = scan_estimate.rows
            if plan is None:
                plan, current = scan_node, scan_estimate
                current_aliases = frozenset({alias})
                continue
            shared = self.graph.shared_variables(
                current_aliases, frozenset({alias})
            )
            assert current is not None
            current = CardinalityEstimator.join(current, scan_estimate, shared)
            node = JoinNode(plan, scan_node, shared)
            node.estimated_rows = current.rows
            plan = node
            current_aliases = current_aliases | {alias}
        assert plan is not None
        return plan

"""Physical execution of join plans over variable-named base relations.

The executor interprets a :class:`repro.engine.plan.PlanNode` tree with the
hash-join algebra of :class:`repro.relational.relation.Relation`, charging
every tuple touched to a :class:`repro.metering.WorkMeter`.  The meter's
budget is the simulated "10-minute timeout" of the paper's experiments.

Every physical operator is traced: when a tracer is active (see
:mod:`repro.obs.tracing`), each scan/join emits an ``exec.scan`` /
``exec.join`` span tagged with the node identity, tuples in/out, and the
optimizer's cardinality estimate — the raw material of EXPLAIN ANALYZE.
With the default :data:`~repro.obs.tracing.NULL_TRACER` the span calls are
no-ops and the charged work is bit-identical to an uninstrumented build.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ExecutionError
from repro.engine.plan import JoinNode, PlanNode, ScanNode, render_plan
from repro.metering import NULL_METER, WorkMeter
from repro.obs.tracing import NullTracer, Tracer, current_tracer
from repro.resilience.context import current_context
from repro.relational.relation import Relation


@dataclass
class ExecutionResult:
    """Outcome of one plan execution.

    Attributes:
        relation: the produced relation (None when the run did not finish).
        work: total work units charged.
        work_breakdown: per-category work units.
        elapsed_seconds: wall-clock duration.
        plan_text: EXPLAIN rendering of the executed plan.
        finished: False when the work budget was exhausted.
    """

    relation: Optional[Relation]
    work: int
    work_breakdown: Dict[str, int]
    elapsed_seconds: float
    plan_text: str
    finished: bool = True

    def require_relation(self) -> Relation:
        if self.relation is None:
            raise ExecutionError("execution did not finish (work budget exhausted)")
        return self.relation


class PlanExecutor:
    """Executes plan trees against a mapping alias → base relation."""

    def __init__(
        self,
        base_relations: Mapping[str, Relation],
        meter: WorkMeter = NULL_METER,
        tracer: "Optional[Union[Tracer, NullTracer]]" = None,
    ):
        self.base_relations = dict(base_relations)
        self.meter = meter
        self.tracer = tracer if tracer is not None else current_tracer()

    def execute(self, plan: PlanNode) -> Relation:
        """Evaluate the plan bottom-up; raises on budget exhaustion.

        Every operator entry is a cooperative checkpoint (deadline, cancel,
        fault injection), and every materialized join intermediate is
        accounted to the context's memory budget — a runaway plan aborts
        deterministically with a typed error instead of exhausting RAM.
        """
        context = current_context()
        if isinstance(plan, ScanNode):
            context.checkpoint("exec.scan")
            with self.tracer.span(
                "exec.scan",
                meter=self.meter,
                node=id(plan),
                op=str(plan),
                est_rows=plan.estimated_rows,
            ) as span:
                try:
                    relation = self.base_relations[plan.alias]
                except KeyError:
                    raise ExecutionError(
                        f"no base relation bound for alias {plan.alias!r}"
                    ) from None
                self.meter.charge(len(relation), "scan")
                span.tag(rows_out=len(relation))
            return relation
        if isinstance(plan, JoinNode):
            context.checkpoint("exec.join")
            with self.tracer.span(
                "exec.join",
                meter=self.meter,
                node=id(plan),
                op=str(plan),
                algorithm=plan.algorithm,
                est_rows=plan.estimated_rows,
            ) as span:
                left = self.execute(plan.left)
                right = self.execute(plan.right)
                span.tag(rows_in_left=len(left), rows_in_right=len(right))
                joined = left.natural_join(right, meter=self.meter)
                context.account(
                    len(joined), len(joined.attributes), "exec.join"
                )
                span.tag(rows_out=len(joined))
            return joined
        raise ExecutionError(f"unknown plan node {plan!r}")


def run_plan(
    plan: PlanNode,
    base_relations: Mapping[str, Relation],
    meter: WorkMeter,
    finalize: Optional[Callable[[Relation], Relation]] = None,
) -> ExecutionResult:
    """Execute ``plan`` and package an :class:`ExecutionResult`.

    Args:
        finalize: applied to the joined relation before returning (residual
            filters, projection, post-processing); its work is also charged
            to the meter.
    """
    from repro.errors import WorkBudgetExceeded

    started = time.perf_counter()
    executor = PlanExecutor(base_relations, meter)
    try:
        relation = executor.execute(plan)
        if finalize is not None:
            relation = finalize(relation)
        finished = True
    except WorkBudgetExceeded:
        relation = None
        finished = False
    elapsed = time.perf_counter() - started
    return ExecutionResult(
        relation=relation,
        work=meter.total,
        work_breakdown=meter.snapshot(),
        elapsed_seconds=elapsed,
        plan_text=render_plan(plan),
        finished=finished,
    )

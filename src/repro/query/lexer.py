"""Hand-written SQL tokenizer.

Produces a flat token stream for :mod:`repro.query.parser`.  Understands the
lexical ground the TPC-H benchmark queries stand on: identifiers, numbers
(int/float), single-quoted strings, the ``date '...'`` literal form, two-char
comparison operators, punctuation and ``--`` line comments.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import SqlSyntaxError


class TokenKind(enum.Enum):
    """Token categories emitted by :func:`tokenize`."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "select",
        "distinct",
        "from",
        "where",
        "and",
        "or",
        "not",
        "group",
        "order",
        "by",
        "as",
        "asc",
        "desc",
        "limit",
        "between",
        "date",
        "interval",
        "year",
        "month",
        "day",
        "like",
        "in",
        "is",
        "null",
        "exists",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (character offset)."""

    kind: TokenKind
    value: str
    position: int

    def matches(self, kind: TokenKind, value: "str | None" = None) -> bool:
        if self.kind is not kind:
            return False
        if value is None:
            return True
        if kind in (TokenKind.KEYWORD, TokenKind.IDENT):
            return self.value.lower() == value.lower()
        return self.value == value

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.value}"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<punct>[(),.;*+\-/])
    """,
    re.VERBOSE,
)

_ARITH = frozenset({"+", "-", "*", "/"})


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token.

    Raises:
        SqlSyntaxError: on any character that starts no valid token, or an
            unterminated string literal.
    """
    tokens: List[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            if sql[position] == "'":
                raise SqlSyntaxError(
                    "unterminated string literal", position=position
                )
            raise SqlSyntaxError(
                f"unexpected character {sql[position]!r}", position=position
            )
        start = position
        position = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        text = match.group()
        if match.lastgroup == "number":
            tokens.append(Token(TokenKind.NUMBER, text, start))
        elif match.lastgroup == "ident":
            kind = (
                TokenKind.KEYWORD if text.lower() in KEYWORDS else TokenKind.IDENT
            )
            tokens.append(Token(kind, text, start))
        elif match.lastgroup == "string":
            inner = text[1:-1].replace("''", "'")
            tokens.append(Token(TokenKind.STRING, inner, start))
        elif match.lastgroup == "op":
            canonical = "<>" if text == "!=" else text
            tokens.append(Token(TokenKind.OPERATOR, canonical, start))
        elif match.lastgroup == "punct":
            if text in _ARITH:
                tokens.append(Token(TokenKind.OPERATOR, text, start))
            else:
                tokens.append(Token(TokenKind.PUNCT, text, start))
        else:  # pragma: no cover - regex groups are exhaustive
            raise SqlSyntaxError(f"unhandled token {text!r}", position=start)
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens

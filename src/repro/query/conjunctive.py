"""Conjunctive queries and their hypergraphs.

A conjunctive query (§2 of the paper) is a rule

    ans(u) ← r1(u1) ∧ … ∧ rn(un)

where each ``ui`` is a list of *terms* (variables or constants).  The
hypergraph ``H(Q)`` has one vertex per variable and, per atom, a hyperedge
containing the atom's variables.  Atoms are named, so two atoms over the
same relation (self-joins) yield distinct hyperedges — the paper's implicit
fresh-variable convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import QueryError
from repro.hypergraph.hypergraph import Hyperedge, Hypergraph


@dataclass(frozen=True)
class Constant:
    """A constant term appearing in an atom's argument list."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Term = Union[str, Constant]
"""A term is a variable name (str) or a :class:`Constant`."""


@dataclass(frozen=True)
class Atom:
    """One body atom ``relation(terms)`` with a unique name.

    Args:
        name: unique atom identifier within the query (distinguishes
            self-joins); often equal to ``relation`` when unambiguous.
        relation: the relation symbol from the database schema.
        terms: argument list — variable names or :class:`Constant` values.
    """

    name: str
    relation: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("atom name must be non-empty")
        if not self.relation:
            raise QueryError("atom relation must be non-empty")

    @property
    def variables(self) -> FrozenSet[str]:
        """The variables appearing in this atom (constants excluded)."""
        return frozenset(t for t in self.terms if isinstance(t, str))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variable_positions(self) -> Dict[str, List[int]]:
        """Map each variable to the argument positions where it occurs."""
        positions: Dict[str, List[int]] = {}
        for index, term in enumerate(self.terms):
            if isinstance(term, str):
                positions.setdefault(term, []).append(index)
        return positions

    def __str__(self) -> str:
        inner = ", ".join(
            term if isinstance(term, str) else str(term) for term in self.terms
        )
        if self.name != self.relation:
            return f"{self.name}:{self.relation}({inner})"
        return f"{self.relation}({inner})"


class ConjunctiveQuery:
    """A conjunctive query with named atoms and output variables.

    Args:
        atoms: body atoms; names must be unique.
        output: the head's variable list ``out(Q)`` — order matters for the
            answer relation's schema.  Every output variable must occur in
            some body atom.
        name: optional query name (used in plans and reports).
    """

    def __init__(
        self,
        atoms: Sequence[Atom],
        output: Sequence[str] = (),
        name: str = "Q",
    ):
        self.name = name
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        self.output: Tuple[str, ...] = tuple(output)

        seen_names = set()
        for atom in self.atoms:
            if atom.name in seen_names:
                raise QueryError(f"duplicate atom name: {atom.name!r}")
            seen_names.add(atom.name)

        body_vars = self.variables
        for var in self.output:
            if var not in body_vars:
                raise QueryError(
                    f"output variable {var!r} does not occur in the query body"
                )
        if len(set(self.output)) != len(self.output):
            raise QueryError("output variables must be distinct")

    # ------------------------------------------------------------------

    @property
    def variables(self) -> FrozenSet[str]:
        """``var(Q)``: all variables occurring in the body."""
        result = set()
        for atom in self.atoms:
            result |= atom.variables
        return frozenset(result)

    @property
    def output_variables(self) -> FrozenSet[str]:
        """``out(Q)`` as a set."""
        return frozenset(self.output)

    @property
    def is_boolean(self) -> bool:
        """True when the query has no output variables (decision query)."""
        return not self.output

    def atom(self, name: str) -> Atom:
        for atom in self.atoms:
            if atom.name == name:
                return atom
        raise QueryError(f"no atom named {name!r} in query {self.name}")

    def atoms_with_variable(self, variable: str) -> Tuple[Atom, ...]:
        return tuple(a for a in self.atoms if variable in a.variables)

    # ------------------------------------------------------------------

    def hypergraph(self) -> Hypergraph:
        """``H(Q)``: one hyperedge per atom, vertices are the variables.

        Atoms with no variables (all-constant) still produce an (empty-set)
        edge-free contribution and are excluded, matching the definition —
        they act as pure filters.
        """
        edges = [
            Hyperedge(atom.name, atom.variables)
            for atom in self.atoms
            if atom.variables
        ]
        return Hypergraph(edges)

    def relation_of(self, atom_name: str) -> str:
        return self.atom(atom_name).relation

    def rename(self, name: str) -> "ConjunctiveQuery":
        return ConjunctiveQuery(self.atoms, self.output, name=name)

    def with_output(self, output: Sequence[str]) -> "ConjunctiveQuery":
        """A copy of the query with a different head."""
        return ConjunctiveQuery(self.atoms, output, name=self.name)

    def __str__(self) -> str:
        head = f"ans({', '.join(self.output)})"
        body = " ∧ ".join(str(atom) for atom in self.atoms)
        return f"{head} ← {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self.name}: {self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.atoms == other.atoms and self.output == other.output

    def __hash__(self) -> int:
        return hash((self.atoms, self.output))

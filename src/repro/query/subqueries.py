"""Flattening of uncorrelated IN-subqueries.

The paper defers "dealing with any kind of nested queries" to future work
but sketches the direction; this module implements the uncorrelated case:

    … WHERE x IN (SELECT y FROM …)

The subquery shares no variables with the outer query (it references only
its own FROM clause), so it can be evaluated once, up front; its answer
column becomes a constant :class:`repro.query.ast.InList` filter on the
outer query, which then proceeds through the normal conjunctive pipeline —
decomposition included.  Correlated subqueries are detected (a column that
only resolves against the outer FROM clause) and rejected with a clear
error, keeping the supported subset honest.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Sequence, Tuple

from repro.errors import QueryError
from repro.query import ast

# Evaluates one (sub)query and returns its single column's values.
SubqueryRunner = Callable[[ast.SelectQuery], Sequence[object]]


def has_subqueries(query: ast.SelectQuery) -> bool:
    """True when any WHERE predicate is an IN- or EXISTS-subquery."""
    return any(
        isinstance(p, (ast.InSubquery, ast.ExistsSubquery))
        for p in query.predicates
    )


def _check_uncorrelated(
    subquery: ast.SelectQuery, schema: Mapping[str, Sequence[str]]
) -> None:
    """Reject subqueries referencing columns outside their own FROM clause."""
    own_aliases = {t.alias for t in subquery.tables}
    own_columns = set()
    for table in subquery.tables:
        if table.relation in schema:
            own_columns.update(c.lower() for c in schema[table.relation])

    def check_ref(ref: ast.ColumnRef) -> None:
        if ref.table is not None:
            if ref.table not in own_aliases:
                raise QueryError(
                    f"correlated subquery: {ref} references the outer query "
                    "(only uncorrelated IN-subqueries are supported)"
                )
        elif ref.column not in own_columns:
            raise QueryError(
                f"correlated subquery: column {ref.column!r} does not belong "
                "to the subquery's FROM relations"
            )

    def check_expression(expression: ast.Expression) -> None:
        for ref in ast.column_refs(expression):
            check_ref(ref)

    for item in subquery.select_items:
        if not isinstance(item.expr, ast.Star):
            check_expression(item.expr)
    for predicate in subquery.predicates:
        if isinstance(predicate, ast.InSubquery):
            check_expression(predicate.expr)
            _check_uncorrelated(predicate.subquery, schema)
        elif isinstance(predicate, ast.ExistsSubquery):
            _check_uncorrelated(predicate.subquery, schema)
        elif isinstance(predicate, ast.InList):
            check_expression(predicate.expr)
        else:
            check_expression(predicate.left)
            check_expression(predicate.right)
    for column in subquery.group_by:
        check_ref(column)


def flatten_subqueries(
    query: ast.SelectQuery,
    run_subquery: SubqueryRunner,
    schema: Mapping[str, Sequence[str]],
) -> ast.SelectQuery:
    """Replace each IN-subquery with the IN-list of its answers.

    Args:
        query: the outer query (possibly nested several levels deep —
            subqueries are flattened recursively, innermost first).
        run_subquery: evaluates one flattened subquery; must return the
            values of its single output column.
        schema: relation → attribute names (for correlation checks).

    Raises:
        QueryError: correlated subquery, or a subquery whose SELECT list is
            not exactly one column.
    """
    if not has_subqueries(query):
        return query

    new_predicates: List[ast.Comparison] = []
    for predicate in query.predicates:
        if isinstance(predicate, ast.ExistsSubquery):
            _check_uncorrelated(predicate.subquery, schema)
            flattened = flatten_subqueries(predicate.subquery, run_subquery, schema)
            values = run_subquery(flattened)
            if len(values) == 0:
                # EXISTS failed: the whole conjunction is false — encode it
                # as an always-false constant comparison (the engine's
                # translator attaches ref-free filters to the first scan).
                new_predicates.append(
                    ast.Comparison("=", ast.Literal(0), ast.Literal(1))
                )
            # A satisfied EXISTS simply disappears from the conjunction.
            continue
        if not isinstance(predicate, ast.InSubquery):
            new_predicates.append(predicate)
            continue
        subquery = predicate.subquery
        _check_uncorrelated(subquery, schema)
        if len(subquery.select_items) != 1 or isinstance(
            subquery.select_items[0].expr, ast.Star
        ):
            raise QueryError(
                "an IN-subquery must select exactly one column, got: "
                f"{subquery.to_sql()}"
            )
        # Inner nesting first.
        flattened = flatten_subqueries(subquery, run_subquery, schema)
        values = tuple(run_subquery(flattened))
        new_predicates.append(ast.InList(predicate.expr, values))

    return ast.SelectQuery(
        select_items=query.select_items,
        tables=query.tables,
        predicates=tuple(new_predicates),
        group_by=query.group_by,
        order_by=query.order_by,
        distinct=query.distinct,
        limit=query.limit,
    )

"""Abstract syntax tree for the SQL subset of the paper.

The paper's optimizer handles SELECT/FROM/WHERE queries without nesting,
whose WHERE clause is a conjunction of comparisons; equality comparisons
between columns are join conditions, everything else is a per-relation
filter.  Aggregates, GROUP BY and ORDER BY appear in the experiments
(TPC-H Q5) and are applied after the conjunctive core is evaluated (step 4
of the paper's pipeline), so they are first-class in the AST.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import QueryError

# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly qualified) column reference such as ``c.nationkey``."""

    table: Optional[str]  # alias or table name; None when unqualified
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, or date (dates are ISO strings)."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic expression ``left op right`` with op in ``+ - * /``."""

    op: str
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class FuncCall:
    """An aggregate or scalar function call, e.g. ``sum(expr)``.

    ``distinct`` models ``count(DISTINCT x)``.
    """

    name: str
    args: Tuple["Expression", ...]
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class Star:
    """The ``*`` argument of ``count(*)`` or a bare ``SELECT *``."""

    def __str__(self) -> str:
        return "*"


Expression = Union[ColumnRef, Literal, BinaryOp, FuncCall, Star]

AGGREGATE_FUNCTIONS = frozenset({"sum", "count", "min", "max", "avg"})


def column_refs(expression: Expression) -> List[ColumnRef]:
    """All column references appearing in an expression, in textual order."""
    if isinstance(expression, ColumnRef):
        return [expression]
    if isinstance(expression, Literal) or isinstance(expression, Star):
        return []
    if isinstance(expression, BinaryOp):
        return column_refs(expression.left) + column_refs(expression.right)
    if isinstance(expression, FuncCall):
        refs: List[ColumnRef] = []
        for arg in expression.args:
            refs.extend(column_refs(arg))
        return refs
    raise QueryError(f"unknown expression node: {expression!r}")


def contains_aggregate(expression: Expression) -> bool:
    """True if the expression contains an aggregate function call."""
    if isinstance(expression, FuncCall):
        if expression.name.lower() in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(a) for a in expression.args)
    if isinstance(expression, BinaryOp):
        return contains_aggregate(expression.left) or contains_aggregate(
            expression.right
        )
    return False


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">=", "like"})


@dataclass(frozen=True)
class Comparison:
    """A comparison predicate ``left op right``.

    ``column = column`` comparisons are join conditions; everything else is
    a selection filter.
    """

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QueryError(f"unsupported comparison operator: {self.op!r}")

    @property
    def is_equijoin(self) -> bool:
        """True when this is a column = column equality (a join condition)."""
        return (
            self.op == "="
            and isinstance(self.left, ColumnRef)
            and isinstance(self.right, ColumnRef)
        )

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BetweenPredicate:
    """``expr BETWEEN low AND high`` — sugar for two comparisons."""

    expr: Expression
    low: Expression
    high: Expression

    def as_comparisons(self) -> Tuple[Comparison, Comparison]:
        return (
            Comparison(">=", self.expr, self.low),
            Comparison("<=", self.expr, self.high),
        )

    def __str__(self) -> str:
        return f"{self.expr} BETWEEN {self.low} AND {self.high}"


@dataclass(frozen=True)
class InList:
    """``expr IN (v₁, …, vₙ)`` over constant values — a selection filter."""

    expr: Expression
    values: Tuple[object, ...]

    @property
    def is_equijoin(self) -> bool:
        return False

    @property
    def left(self) -> Expression:
        """Filter-shape compatibility: the tested expression."""
        return self.expr

    def __str__(self) -> str:
        inner = ", ".join(str(Literal(v)) for v in self.values)
        return f"{self.expr} IN ({inner})"


@dataclass(frozen=True)
class InSubquery:
    """``expr IN (SELECT …)`` — flattened to :class:`InList` before
    translation (see :mod:`repro.query.subqueries`); only *uncorrelated*
    subqueries are supported, matching the paper's future-work scope."""

    expr: Expression
    subquery: "SelectQuery"

    @property
    def is_equijoin(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self.expr} IN ({self.subquery.to_sql()})"


@dataclass(frozen=True)
class ExistsSubquery:
    """``EXISTS (SELECT …)`` — uncorrelated only; flattened to a constant
    truth value before translation."""

    subquery: "SelectQuery"

    @property
    def is_equijoin(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"EXISTS ({self.subquery.to_sql()})"


Predicate = Union[Comparison, BetweenPredicate, InList, InSubquery, ExistsSubquery]


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause entry: relation name plus effective alias."""

    relation: str
    alias: str

    def __str__(self) -> str:
        if self.alias != self.relation:
            return f"{self.relation} {self.alias}"
        return self.relation


@dataclass(frozen=True)
class SelectItem:
    """One projection in the SELECT list with an optional output alias."""

    expr: Expression
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        """The column name in the answer relation."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.column
        return str(self.expr)

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an expression (or output alias) and a direction."""

    expr: Expression
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expr} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class SelectQuery:
    """A parsed SQL query in the supported subset.

    Attributes:
        select_items: projections (columns, aggregates, arithmetic).
        tables: FROM entries, in clause order.
        predicates: the WHERE conjunction, flattened (BETWEEN desugared).
        group_by: GROUP BY column references.
        order_by: ORDER BY keys.
        distinct: SELECT DISTINCT flag.
        limit: LIMIT value or None.
    """

    select_items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    predicates: Tuple[Comparison, ...] = ()
    group_by: Tuple[ColumnRef, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    distinct: bool = False
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.select_items:
            raise QueryError("SELECT list must not be empty")
        if not self.tables:
            raise QueryError("FROM clause must not be empty")
        aliases = [t.alias for t in self.tables]
        if len(set(aliases)) != len(aliases):
            raise QueryError("duplicate table alias in FROM clause")

    @property
    def has_aggregates(self) -> bool:
        return any(contains_aggregate(item.expr) for item in self.select_items)

    @property
    def join_conditions(self) -> Tuple[Comparison, ...]:
        return tuple(p for p in self.predicates if p.is_equijoin)

    @property
    def filter_conditions(self) -> Tuple[Comparison, ...]:
        return tuple(p for p in self.predicates if not p.is_equijoin)

    def alias_map(self) -> dict:
        """Map alias → relation name."""
        return {t.alias: t.relation for t in self.tables}

    def to_sql(self) -> str:
        """Render the query back to SQL text (used by the view builder)."""
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(item) for item in self.select_items))
        parts.append("FROM " + ", ".join(str(t) for t in self.tables))
        if self.predicates:
            parts.append(
                "WHERE " + " AND ".join(str(p) for p in self.predicates)
            )
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in self.group_by))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)

    def __str__(self) -> str:
        return self.to_sql()

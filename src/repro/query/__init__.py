"""Query substrate: conjunctive queries and the SQL subset of the paper.

The paper works with SQL queries without nested statements and with equality
join conditions (§2).  This subpackage provides:

* :mod:`repro.query.conjunctive` — conjunctive queries ``ans(u) ← r1(u1) ∧ …``
  with output variables ``out(Q)`` and the associated hypergraph ``H(Q)``;
* :mod:`repro.query.lexer` / :mod:`repro.query.parser` — a hand-written
  tokenizer and recursive-descent parser for the SQL subset (SELECT with
  aggregates, FROM with aliases, WHERE conjunctions, GROUP BY, ORDER BY);
* :mod:`repro.query.translate` — the SQL → CQ(Q) construction of §2:
  equality conditions induce equivalence classes of attributes, each class
  becomes one variable;
* :mod:`repro.query.builder` — a small fluent API to build queries in code.
"""

from repro.query.conjunctive import Atom, ConjunctiveQuery
from repro.query.lexer import Token, TokenKind, tokenize
from repro.query.parser import parse_sql
from repro.query.translate import TranslationResult, sql_to_conjunctive
from repro.query.builder import ConjunctiveQueryBuilder, SqlQueryBuilder
from repro.query import ast

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_sql",
    "TranslationResult",
    "sql_to_conjunctive",
    "ConjunctiveQueryBuilder",
    "SqlQueryBuilder",
    "ast",
]

"""Recursive-descent parser for the SQL subset of the paper.

Grammar (conjunctive WHERE clause, no nesting — §2 of the paper):

    query      := SELECT [DISTINCT] select_list FROM table_list
                  [WHERE conjunction] [GROUP BY columns]
                  [ORDER BY order_list] [LIMIT number] [';']
    select_list:= '*' | select_item (',' select_item)*
    select_item:= expr [[AS] ident]
    table_list := table_ref (',' table_ref)*
    table_ref  := ident [[AS] ident]
    conjunction:= predicate (AND predicate)*
    predicate  := expr comparison_op expr | expr BETWEEN expr AND expr
    expr       := additive arithmetic over primaries
    primary    := column | literal | func '(' args ')' | '(' expr ')'
    literal    := number | string | date_literal [± interval]
    date_literal := DATE string
    interval   := INTERVAL string (YEAR | MONTH | DAY)

``date '…' + interval '1' year`` is constant-folded to an ISO date literal,
so downstream code only ever sees plain values (TPC-H Q5 needs this).
LIKE patterns, ``IN (constants…)``, and *uncorrelated* ``IN (SELECT …)`` /
``EXISTS (SELECT …)`` subqueries are supported (the latter are flattened by
:mod:`repro.query.subqueries` before translation).  OR, NOT, IS NULL,
correlated subqueries and FROM-clause sub-selects are rejected with clear
errors — the conjunctive subset stays honest about its boundaries.
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Tuple

from repro.errors import SqlSyntaxError
from repro.query import ast
from repro.query.lexer import Token, TokenKind, tokenize


def _shift_date(iso_date: str, amount: int, unit: str) -> str:
    """Add ``amount`` units (year/month/day) to an ISO date string."""
    try:
        date = datetime.date.fromisoformat(iso_date)
    except ValueError as exc:
        raise SqlSyntaxError(f"invalid date literal {iso_date!r}") from exc
    unit = unit.lower()
    if unit == "day":
        date = date + datetime.timedelta(days=amount)
    else:
        months = amount * 12 if unit == "year" else amount
        total = date.year * 12 + (date.month - 1) + months
        year, month = divmod(total, 12)
        month += 1
        # Clamp the day to the target month's length (SQL semantics).
        for day in range(date.day, 0, -1):
            try:
                date = datetime.date(year, month, day)
                break
            except ValueError:
                continue
    return date.isoformat()


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.index = 0

    # -- cursor helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def accept(self, kind: TokenKind, value: "str | None" = None) -> Optional[Token]:
        if self.current.matches(kind, value):
            return self.advance()
        return None

    def accept_keyword(self, word: str) -> Optional[Token]:
        return self.accept(TokenKind.KEYWORD, word)

    def expect(self, kind: TokenKind, value: "str | None" = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            want = value if value is not None else kind.value
            raise SqlSyntaxError(
                f"expected {want!r} but found {self.current.value!r}",
                position=self.current.position,
            )
        return token

    def fail(self, message: str) -> "None":
        raise SqlSyntaxError(message, position=self.current.position)

    # -- grammar --------------------------------------------------------

    def parse_query(self) -> ast.SelectQuery:
        query = self.parse_select_statement()
        self.accept(TokenKind.PUNCT, ";")
        if self.current.kind is not TokenKind.EOF:
            self.fail(f"unexpected trailing input: {self.current.value!r}")
        return query

    def parse_select_statement(self) -> ast.SelectQuery:
        """One SELECT statement; stops before ')', ';' or EOF — reused for
        IN (SELECT …) subqueries."""
        self.expect(TokenKind.KEYWORD, "select")
        distinct = self.accept_keyword("distinct") is not None
        select_items = self.parse_select_list()
        self.expect(TokenKind.KEYWORD, "from")
        tables = self.parse_table_list()
        predicates: Tuple[ast.Comparison, ...] = ()
        if self.accept_keyword("where"):
            predicates = self.parse_conjunction()
        group_by: Tuple[ast.ColumnRef, ...] = ()
        if self.accept_keyword("group"):
            self.expect(TokenKind.KEYWORD, "by")
            group_by = self.parse_column_list()
        order_by: Tuple[ast.OrderItem, ...] = ()
        if self.accept_keyword("order"):
            self.expect(TokenKind.KEYWORD, "by")
            order_by = self.parse_order_list()
        limit: Optional[int] = None
        if self.accept_keyword("limit"):
            token = self.expect(TokenKind.NUMBER)
            limit = int(token.value)
        return ast.SelectQuery(
            select_items=select_items,
            tables=tables,
            predicates=predicates,
            group_by=group_by,
            order_by=order_by,
            distinct=distinct,
            limit=limit,
        )

    def parse_select_list(self) -> Tuple[ast.SelectItem, ...]:
        if self.accept(TokenKind.OPERATOR, "*"):
            return (ast.SelectItem(ast.Star()),)
        items = [self.parse_select_item()]
        while self.accept(TokenKind.PUNCT, ","):
            items.append(self.parse_select_item())
        return tuple(items)

    def parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expression()
        alias: Optional[str] = None
        if self.accept_keyword("as"):
            alias = self.expect(TokenKind.IDENT).value
        else:
            token = self.accept(TokenKind.IDENT)
            if token is not None:
                alias = token.value
        return ast.SelectItem(expr, alias)

    def parse_table_list(self) -> Tuple[ast.TableRef, ...]:
        tables = [self.parse_table_ref()]
        while self.accept(TokenKind.PUNCT, ","):
            tables.append(self.parse_table_ref())
        return tuple(tables)

    def parse_table_ref(self) -> ast.TableRef:
        if self.accept(TokenKind.PUNCT, "("):
            self.fail("nested sub-selects are not supported (future work in the paper)")
        name = self.expect(TokenKind.IDENT).value
        alias = name
        if self.accept_keyword("as"):
            alias = self.expect(TokenKind.IDENT).value
        else:
            token = self.accept(TokenKind.IDENT)
            if token is not None:
                alias = token.value
        return ast.TableRef(relation=name.lower(), alias=alias.lower())

    def parse_conjunction(self) -> Tuple[ast.Comparison, ...]:
        predicates: List[ast.Comparison] = []
        predicates.extend(self.parse_predicate())
        while self.accept_keyword("and"):
            predicates.extend(self.parse_predicate())
        if self.current.matches(TokenKind.KEYWORD, "or"):
            self.fail("OR is not supported: the WHERE clause must be a conjunction")
        return tuple(predicates)

    def parse_predicate(self) -> Tuple[ast.Comparison, ...]:
        if self.current.matches(TokenKind.KEYWORD, "not"):
            self.fail("NOT is not supported in the conjunctive subset")
        if self.accept_keyword("exists"):
            self.expect(TokenKind.PUNCT, "(")
            subquery = self.parse_select_statement()
            self.expect(TokenKind.PUNCT, ")")
            return (ast.ExistsSubquery(subquery),)
        left = self.parse_expression()
        if self.accept_keyword("between"):
            low = self.parse_expression()
            self.expect(TokenKind.KEYWORD, "and")
            high = self.parse_expression()
            return ast.BetweenPredicate(left, low, high).as_comparisons()
        if self.accept_keyword("like"):
            pattern = self.expect(TokenKind.STRING)
            return (ast.Comparison("like", left, ast.Literal(pattern.value)),)
        if self.accept_keyword("in"):
            return (self.parse_in_predicate(left),)
        if self.current.matches(TokenKind.KEYWORD, "is"):
            self.fail("IS NULL is not supported in the conjunctive subset")
        op_token = self.current
        if op_token.kind is not TokenKind.OPERATOR or op_token.value not in ast.COMPARISON_OPS:
            self.fail(f"expected a comparison operator, found {op_token.value!r}")
        self.advance()
        right = self.parse_expression()
        return (ast.Comparison(op_token.value, left, right),)

    def parse_in_predicate(self, left: ast.Expression):
        """``IN (SELECT …)`` or ``IN (literal, …)`` after the IN keyword."""
        self.expect(TokenKind.PUNCT, "(")
        if self.current.matches(TokenKind.KEYWORD, "select"):
            subquery = self.parse_select_statement()
            self.expect(TokenKind.PUNCT, ")")
            return ast.InSubquery(left, subquery)
        values: List[object] = [self.parse_in_value()]
        while self.accept(TokenKind.PUNCT, ","):
            values.append(self.parse_in_value())
        self.expect(TokenKind.PUNCT, ")")
        return ast.InList(left, tuple(values))

    def parse_in_value(self) -> object:
        """One constant of an IN list (literals only)."""
        expression = self.parse_expression()
        if not isinstance(expression, ast.Literal):
            self.fail("IN lists may contain only constant values")
        return expression.value

    def parse_column_list(self) -> Tuple[ast.ColumnRef, ...]:
        columns = [self.parse_column_ref()]
        while self.accept(TokenKind.PUNCT, ","):
            columns.append(self.parse_column_ref())
        return tuple(columns)

    def parse_column_ref(self) -> ast.ColumnRef:
        first = self.expect(TokenKind.IDENT).value
        if self.accept(TokenKind.PUNCT, "."):
            second = self.expect(TokenKind.IDENT).value
            return ast.ColumnRef(first.lower(), second.lower())
        return ast.ColumnRef(None, first.lower())

    def parse_order_list(self) -> Tuple[ast.OrderItem, ...]:
        items = [self.parse_order_item()]
        while self.accept(TokenKind.PUNCT, ","):
            items.append(self.parse_order_item())
        return tuple(items)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expr, descending)

    # -- expressions ----------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self.parse_additive()

    def parse_additive(self) -> ast.Expression:
        expr = self.parse_multiplicative()
        while True:
            if self.accept(TokenKind.OPERATOR, "+"):
                right = self.parse_interval_or_multiplicative()
                expr = self._fold_date_shift(expr, right, +1)
            elif self.accept(TokenKind.OPERATOR, "-"):
                right = self.parse_interval_or_multiplicative()
                expr = self._fold_date_shift(expr, right, -1)
            else:
                return expr

    def parse_interval_or_multiplicative(self) -> ast.Expression:
        interval = self.try_parse_interval()
        if interval is not None:
            return interval
        return self.parse_multiplicative()

    def try_parse_interval(self) -> Optional[ast.Expression]:
        if not self.current.matches(TokenKind.KEYWORD, "interval"):
            return None
        self.advance()
        amount_token = self.expect(TokenKind.STRING)
        try:
            amount = int(amount_token.value)
        except ValueError:
            raise SqlSyntaxError(
                f"interval amount must be an integer, got {amount_token.value!r}",
                position=amount_token.position,
            ) from None
        unit_token = self.current
        if unit_token.kind is TokenKind.KEYWORD and unit_token.value.lower() in (
            "year",
            "month",
            "day",
        ):
            self.advance()
            return _Interval(amount, unit_token.value.lower())
        self.fail("expected YEAR, MONTH or DAY after INTERVAL amount")
        return None  # pragma: no cover

    def _fold_date_shift(
        self, left: ast.Expression, right: ast.Expression, sign: int
    ) -> ast.Expression:
        if isinstance(right, _Interval):
            if not (isinstance(left, ast.Literal) and isinstance(left.value, str)):
                self.fail("INTERVAL arithmetic is only supported on date literals")
            shifted = _shift_date(left.value, sign * right.amount, right.unit)
            return ast.Literal(shifted)
        op = "+" if sign > 0 else "-"
        return ast.BinaryOp(op, left, right)

    def parse_multiplicative(self) -> ast.Expression:
        expr = self.parse_unary()
        while True:
            if self.accept(TokenKind.OPERATOR, "*"):
                expr = ast.BinaryOp("*", expr, self.parse_unary())
            elif self.accept(TokenKind.OPERATOR, "/"):
                expr = ast.BinaryOp("/", expr, self.parse_unary())
            else:
                return expr

    def parse_unary(self) -> ast.Expression:
        if self.accept(TokenKind.OPERATOR, "-"):
            inner = self.parse_unary()
            if isinstance(inner, ast.Literal) and isinstance(
                inner.value, (int, float)
            ):
                return ast.Literal(-inner.value)
            return ast.BinaryOp("-", ast.Literal(0), inner)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expression:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            value = float(token.value) if "." in token.value or "e" in token.value.lower() else int(token.value)
            return ast.Literal(value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.matches(TokenKind.KEYWORD, "date"):
            self.advance()
            literal = self.expect(TokenKind.STRING)
            # Validate eagerly so bad dates fail at parse time.
            _shift_date(literal.value, 0, "day")
            return ast.Literal(literal.value)
        if token.kind is TokenKind.PUNCT and token.value == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect(TokenKind.PUNCT, ")")
            return expr
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.accept(TokenKind.PUNCT, "("):
                return self.parse_call(token.value)
            if self.accept(TokenKind.PUNCT, "."):
                column = self.expect(TokenKind.IDENT).value
                return ast.ColumnRef(token.value.lower(), column.lower())
            return ast.ColumnRef(None, token.value.lower())
        self.fail(f"unexpected token {token.value!r} in expression")
        raise AssertionError  # pragma: no cover

    def parse_call(self, name: str) -> ast.Expression:
        distinct = self.accept_keyword("distinct") is not None
        if self.accept(TokenKind.OPERATOR, "*"):
            self.expect(TokenKind.PUNCT, ")")
            return ast.FuncCall(name.lower(), (ast.Star(),), distinct=distinct)
        args: List[ast.Expression] = []
        if not self.current.matches(TokenKind.PUNCT, ")"):
            args.append(self.parse_expression())
            while self.accept(TokenKind.PUNCT, ","):
                args.append(self.parse_expression())
        self.expect(TokenKind.PUNCT, ")")
        return ast.FuncCall(name.lower(), tuple(args), distinct=distinct)


class _Interval(ast.Literal):
    """Internal marker for a parsed INTERVAL; folded away before returning."""

    def __init__(self, amount: int, unit: str):
        super().__init__((amount, unit))
        object.__setattr__(self, "amount", amount)
        object.__setattr__(self, "unit", unit)


def parse_sql(sql: str) -> ast.SelectQuery:
    """Parse ``sql`` into a :class:`repro.query.ast.SelectQuery`.

    Raises:
        SqlSyntaxError: on lexical or syntactic errors, with the character
            position of the failure.
    """
    return _Parser(sql).parse_query()

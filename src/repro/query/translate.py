"""SQL → conjunctive-query translation (§2 of the paper).

Each set of attributes linked by equality conditions in the WHERE clause
forms an equivalence class; every class becomes one variable of ``CQ(Q)``.
Attributes mentioned anywhere else in the query (SELECT, GROUP BY, ORDER BY,
filter comparisons) become singleton variables.  Per-relation filters
(column–constant comparisons) do not join relations, so they are kept aside
and pushed to the base scans at evaluation time.

The translation needs the database schema to resolve unqualified column
names (TPC-H queries use bare names such as ``n_name``): a column resolves
to the unique FROM-clause relation that has an attribute of that name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.query import ast
from repro.query.conjunctive import Atom, ConjunctiveQuery


@dataclass(frozen=True)
class BoundColumn:
    """A column resolved to a concrete FROM-clause alias."""

    alias: str
    column: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclass
class TranslationResult:
    """The outcome of translating a parsed SQL query into a conjunctive core.

    Attributes:
        query: the conjunctive query ``CQ(Q)`` — atoms named by FROM alias.
        select_query: the original SQL AST (needed for step 4: aggregates,
            GROUP BY, ORDER BY, DISTINCT, LIMIT).
        variable_bindings: variable → {alias: column} mapping; which column
            of which relation carries each variable.
        atom_filters: alias → constant filters to apply on the base scan,
            with every column reference resolved to this alias's columns.
        intra_atom_equalities: alias → pairs of columns of the same relation
            constrained equal (from equality classes touching one alias
            twice); enforced as base-scan filters.
        output_columns: for each output variable of ``CQ(Q)``, the bound
            column it came from (used to rename answer attributes).
    """

    query: ConjunctiveQuery
    select_query: ast.SelectQuery
    variable_bindings: Dict[str, Dict[str, str]]
    atom_filters: Dict[str, Tuple[ast.Comparison, ...]]
    intra_atom_equalities: Dict[str, Tuple[Tuple[str, str], ...]]
    output_columns: Dict[str, BoundColumn]
    schema: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    column_variables: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def variable_for(self, alias: str, column: str) -> Optional[str]:
        """The CQ variable carried by ``alias.column``, if any.

        Unlike ``variable_bindings`` (one carrier column per alias), this
        also resolves columns merged away by intra-relation equalities.
        """
        direct = self.column_variables.get((alias, column))
        if direct is not None:
            return direct
        for variable, bindings in self.variable_bindings.items():
            if bindings.get(alias) == column:
                return variable
        return None

    def resolve_variable(self, ref: ast.ColumnRef) -> str:
        """Resolve a column reference to its CQ variable.

        Used by post-processing (SELECT expressions, ORDER BY) to map SQL
        column references onto the variable-named answer relation.
        """
        resolver = _Resolver(self.select_query.tables, self.schema)
        bound = resolver.resolve(ref)
        variable = self.variable_for(bound.alias, bound.column)
        if variable is None:
            raise QueryError(
                f"column {bound} does not carry a CQ variable; it was not "
                "part of the translated query"
            )
        return variable


class _Resolver:
    """Resolves column references against the FROM clause and the schema."""

    def __init__(
        self,
        tables: Sequence[ast.TableRef],
        schema: Mapping[str, Sequence[str]],
    ):
        self.tables = tuple(tables)
        self.schema = {name.lower(): tuple(cols) for name, cols in schema.items()}
        self.alias_to_relation: Dict[str, str] = {}
        for table in tables:
            if table.relation not in self.schema:
                raise QueryError(
                    f"relation {table.relation!r} is not in the schema"
                )
            self.alias_to_relation[table.alias] = table.relation

    def columns_of(self, alias: str) -> Tuple[str, ...]:
        return self.schema[self.alias_to_relation[alias]]

    def resolve(self, ref: ast.ColumnRef) -> BoundColumn:
        column = ref.column.lower()
        if ref.table is not None:
            alias = ref.table.lower()
            if alias not in self.alias_to_relation:
                raise QueryError(f"unknown table alias {ref.table!r}")
            if column not in self.columns_of(alias):
                raise QueryError(
                    f"relation {self.alias_to_relation[alias]!r} has no "
                    f"attribute {column!r}"
                )
            return BoundColumn(alias, column)
        owners = [
            table.alias
            for table in self.tables
            if column in self.columns_of(table.alias)
        ]
        if not owners:
            raise QueryError(f"column {ref.column!r} not found in any FROM relation")
        if len(owners) > 1:
            raise QueryError(
                f"column {ref.column!r} is ambiguous (in {sorted(owners)})"
            )
        return BoundColumn(owners[0], column)


class _UnionFind:
    """Union-find over bound columns, for equality equivalence classes."""

    def __init__(self) -> None:
        self.parent: Dict[BoundColumn, BoundColumn] = {}

    def add(self, item: BoundColumn) -> None:
        self.parent.setdefault(item, item)

    def find(self, item: BoundColumn) -> BoundColumn:
        self.add(item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: BoundColumn, b: BoundColumn) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra

    def classes(self) -> List[List[BoundColumn]]:
        groups: Dict[BoundColumn, List[BoundColumn]] = {}
        for item in self.parent:
            groups.setdefault(self.find(item), []).append(item)
        ordered = []
        for _, members in sorted(
            groups.items(), key=lambda kv: str(min(map(str, kv[1])))
        ):
            ordered.append(sorted(members, key=str))
        return ordered


def _variable_name(members: Sequence[BoundColumn]) -> str:
    """Deterministic variable name for an equivalence class."""
    return str(min(map(str, members)))


def sql_to_conjunctive(
    query: ast.SelectQuery,
    schema: Mapping[str, Sequence[str]],
    name: str = "Q",
) -> TranslationResult:
    """Translate a parsed SQL query into its conjunctive core ``CQ(Q)``.

    Args:
        query: parsed SQL (see :func:`repro.query.parser.parse_sql`).
        schema: mapping relation name → attribute names, used to resolve
            unqualified columns.
        name: name given to the resulting conjunctive query.

    Returns:
        A :class:`TranslationResult` bundling ``CQ(Q)`` with everything the
        evaluator needs to reconstruct the SQL semantics.
    """
    resolver = _Resolver(query.tables, schema)
    uf = _UnionFind()

    atom_filters: Dict[str, List[ast.Comparison]] = {
        table.alias: [] for table in query.tables
    }
    mentioned: Set[BoundColumn] = set()

    def note_expression(expression: ast.Expression) -> None:
        for ref in ast.column_refs(expression):
            mentioned.add(resolver.resolve(ref))

    # 1. Split WHERE into equality classes vs base filters.
    for predicate in query.predicates:
        if isinstance(predicate, (ast.InSubquery, ast.ExistsSubquery)):
            raise QueryError(
                "subqueries must be flattened before translation — see "
                "repro.query.subqueries.flatten_subqueries"
            )
        if predicate.is_equijoin:
            left = resolver.resolve(predicate.left)  # type: ignore[arg-type]
            right = resolver.resolve(predicate.right)  # type: ignore[arg-type]
            uf.union(left, right)
            mentioned.update((left, right))
            continue
        refs = list(ast.column_refs(predicate.left))
        if isinstance(predicate, ast.Comparison):
            refs += ast.column_refs(predicate.right)
        bound = [resolver.resolve(ref) for ref in refs]
        owners = {b.alias for b in bound}
        if len(owners) > 1:
            raise QueryError(
                "non-equality comparisons across relations are not supported "
                f"in the conjunctive subset: {predicate}"
            )
        mentioned.update(bound)
        if owners:
            (owner,) = owners
        else:
            # Constant predicate (e.g. a flattened failed EXISTS): attach
            # to the first scan — it filters everything or nothing.
            owner = query.tables[0].alias
        atom_filters[owner].append(predicate)

    # 2. Note every column mentioned outside WHERE.
    for item in query.select_items:
        note_expression(item.expr)
    for column in query.group_by:
        mentioned.add(resolver.resolve(column))
    for order in query.order_by:
        for ref in ast.column_refs(order.expr):
            # ORDER BY may reference a SELECT alias; those resolve later.
            try:
                mentioned.add(resolver.resolve(ref))
            except QueryError:
                aliases = {i.alias for i in query.select_items if i.alias}
                if ref.table is None and ref.column in aliases:
                    continue
                raise

    for bound in mentioned:
        uf.add(bound)

    # 3. Build variables from equivalence classes.
    variable_bindings: Dict[str, Dict[str, str]] = {}
    column_to_variable: Dict[BoundColumn, str] = {}
    intra: Dict[str, List[Tuple[str, str]]] = {t.alias: [] for t in query.tables}
    for members in uf.classes():
        variable = _variable_name(members)
        bindings: Dict[str, str] = {}
        for member in members:
            if member.alias in bindings:
                # Two columns of one relation constrained equal: keep the
                # first as the variable's carrier, enforce equality locally.
                intra[member.alias].append((bindings[member.alias], member.column))
            else:
                bindings[member.alias] = member.column
            column_to_variable[member] = variable
        variable_bindings[variable] = bindings

    # 4. Build atoms: one per FROM entry, arity = variables it carries.
    atoms: List[Atom] = []
    for table in query.tables:
        carried = sorted(
            variable
            for variable, bindings in variable_bindings.items()
            if table.alias in bindings
        )
        atoms.append(Atom(name=table.alias, relation=table.relation, terms=tuple(carried)))

    # 5. Output variables: SELECT and GROUP BY attributes (§2).
    output_order: List[str] = []
    output_columns: Dict[str, BoundColumn] = {}

    def add_output(bound: BoundColumn) -> None:
        variable = column_to_variable[bound]
        if variable not in output_order:
            output_order.append(variable)
            output_columns[variable] = bound

    for item in query.select_items:
        if isinstance(item.expr, ast.Star):
            for table in query.tables:
                for column in resolver.columns_of(table.alias):
                    bound = BoundColumn(table.alias, column)
                    uf.add(bound)
                    if bound not in column_to_variable:
                        variable = _variable_name([bound])
                        variable_bindings[variable] = {bound.alias: bound.column}
                        column_to_variable[bound] = variable
                        # Extend the atom for this table with the new variable.
                        for index, atom in enumerate(atoms):
                            if atom.name == table.alias:
                                atoms[index] = Atom(
                                    atom.name,
                                    atom.relation,
                                    tuple(sorted(set(atom.terms) | {variable})),
                                )
                    add_output(bound)
            continue
        for ref in ast.column_refs(item.expr):
            add_output(resolver.resolve(ref))
    for column in query.group_by:
        add_output(resolver.resolve(column))

    cq = ConjunctiveQuery(atoms, output=output_order, name=name)
    return TranslationResult(
        query=cq,
        select_query=query,
        variable_bindings=variable_bindings,
        atom_filters={k: tuple(v) for k, v in atom_filters.items()},
        intra_atom_equalities={k: tuple(v) for k, v in intra.items()},
        output_columns=output_columns,
        schema={name_: tuple(cols) for name_, cols in resolver.schema.items()},
        column_variables={
            (bound.alias, bound.column): variable
            for bound, variable in column_to_variable.items()
        },
    )

"""Fluent builders for conjunctive and SQL queries.

These keep tests and workload generators readable:

    cq = (ConjunctiveQueryBuilder("chain")
          .atom("p0", "rel0", "X0", "X1")
          .atom("p1", "rel1", "X1", "X2")
          .output("X0", "X2")
          .build())

    sql = (SqlQueryBuilder()
           .select("n_name").select_sum("l_extendedprice", alias="revenue")
           .from_table("nation").from_table("lineitem")
           .where_eq("n_nationkey", "l_nationkey")
           .group_by("n_name")
           .build_sql())
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import QueryError
from repro.query import ast
from repro.query.conjunctive import Atom, ConjunctiveQuery, Constant


class ConjunctiveQueryBuilder:
    """Incremental construction of a :class:`ConjunctiveQuery`."""

    def __init__(self, name: str = "Q"):
        self._name = name
        self._atoms: List[Atom] = []
        self._output: List[str] = []

    def atom(
        self,
        name: str,
        relation: "str | None" = None,
        *terms: Union[str, Constant],
    ) -> "ConjunctiveQueryBuilder":
        """Add a body atom.  ``relation`` defaults to the atom name."""
        self._atoms.append(Atom(name, relation or name, tuple(terms)))
        return self

    def output(self, *variables: str) -> "ConjunctiveQueryBuilder":
        """Append output (head) variables."""
        self._output.extend(variables)
        return self

    def build(self) -> ConjunctiveQuery:
        return ConjunctiveQuery(self._atoms, self._output, name=self._name)


class SqlQueryBuilder:
    """Incremental construction of a :class:`repro.query.ast.SelectQuery`."""

    def __init__(self) -> None:
        self._select: List[ast.SelectItem] = []
        self._tables: List[ast.TableRef] = []
        self._predicates: List[ast.Comparison] = []
        self._group_by: List[ast.ColumnRef] = []
        self._order_by: List[ast.OrderItem] = []
        self._distinct = False
        self._limit: Optional[int] = None

    # -- SELECT ----------------------------------------------------------

    def select(self, column: str, alias: "str | None" = None) -> "SqlQueryBuilder":
        self._select.append(ast.SelectItem(_column(column), alias))
        return self

    def select_expr(
        self, expr: ast.Expression, alias: "str | None" = None
    ) -> "SqlQueryBuilder":
        self._select.append(ast.SelectItem(expr, alias))
        return self

    def select_sum(self, column: str, alias: "str | None" = None) -> "SqlQueryBuilder":
        return self.select_expr(
            ast.FuncCall("sum", (_column(column),)), alias
        )

    def select_count(self, alias: "str | None" = None) -> "SqlQueryBuilder":
        return self.select_expr(ast.FuncCall("count", (ast.Star(),)), alias)

    def distinct(self) -> "SqlQueryBuilder":
        self._distinct = True
        return self

    # -- FROM ------------------------------------------------------------

    def from_table(self, relation: str, alias: "str | None" = None) -> "SqlQueryBuilder":
        name = relation.lower()
        self._tables.append(ast.TableRef(name, (alias or name).lower()))
        return self

    # -- WHERE -----------------------------------------------------------

    def where_eq(self, left: str, right: str) -> "SqlQueryBuilder":
        """Equality join condition between two columns."""
        self._predicates.append(ast.Comparison("=", _column(left), _column(right)))
        return self

    def where_const(self, column: str, op: str, value: object) -> "SqlQueryBuilder":
        """Filter condition column–constant."""
        self._predicates.append(
            ast.Comparison(op, _column(column), ast.Literal(value))
        )
        return self

    # -- tail clauses ------------------------------------------------------

    def group_by(self, *columns: str) -> "SqlQueryBuilder":
        self._group_by.extend(_column(c) for c in columns)
        return self

    def order_by(self, column: str, descending: bool = False) -> "SqlQueryBuilder":
        self._order_by.append(ast.OrderItem(_column(column), descending))
        return self

    def limit(self, value: int) -> "SqlQueryBuilder":
        self._limit = value
        return self

    # -- output ------------------------------------------------------------

    def build(self) -> ast.SelectQuery:
        if not self._select:
            raise QueryError("SELECT list is empty; call .select() first")
        if not self._tables:
            raise QueryError("FROM clause is empty; call .from_table() first")
        return ast.SelectQuery(
            select_items=tuple(self._select),
            tables=tuple(self._tables),
            predicates=tuple(self._predicates),
            group_by=tuple(self._group_by),
            order_by=tuple(self._order_by),
            distinct=self._distinct,
            limit=self._limit,
        )

    def build_sql(self) -> str:
        """Render to SQL text (round-trips through the parser)."""
        return self.build().to_sql()


def _column(text: str) -> ast.ColumnRef:
    """Parse ``"alias.column"`` or ``"column"`` into a ColumnRef."""
    if "." in text:
        table, column = text.split(".", 1)
        return ast.ColumnRef(table.lower(), column.lower())
    return ast.ColumnRef(None, text.lower())

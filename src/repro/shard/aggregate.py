"""Cross-shard aggregation: one merged view of N per-process sinks.

Each shard worker owns its own metrics registry, plan cache, and tracer —
there is no shared memory, so "cluster observability" is a *merge*
problem.  Both sink formats were designed mergeable (PR 2): metric
snapshots are nested dicts of counters and fixed-bucket histograms
(pointwise addition, with the derived fields — means, hit rates, min/max
— recomputed, never summed), and span exports are plain records whose ids
only need to be made process-unique.

Span merging namespaces every shard's ids into a disjoint block of
:data:`SPAN_ID_STRIDE` (shard *s* owns ``(s+1)*stride .. (s+2)*stride``),
remaps ``parent_id`` with the same offset — parent/child edges never
cross a process, so the remap keeps every edge intact and can never
*create* a dangling parent — and stamps a ``shard`` tag on every record.
The result passes
:func:`repro.obs.tracing.validate_span_records` with
``require_shard_tag=True``, the merged-trace contract the CLI enforces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.insights.histogram import (
    merge_snapshots as merge_hdr_snapshots,
)
from repro.obs.insights.histogram import quantile_from_snapshot
from repro.obs.insights.registry import merge_insights_snapshots

#: Span-id block size per shard; far above any tracer retention cap.
SPAN_ID_STRIDE = 10_000_000


# ---------------------------------------------------------------------------
# Metric snapshots
# ---------------------------------------------------------------------------


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _merge_level(dicts: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {}
    seen: List[str] = []
    for source in dicts:
        for key in source:
            if key not in seen:
                seen.append(key)
    for key in seen:
        values = [d[key] for d in dicts if key in d]
        if key == "insights" and all(isinstance(v, Mapping) for v in values):
            # Per-template insight snapshots have their own exact merge
            # (histogram bucket addition, SLO window max, slow-log
            # re-ranking) — the generic pointwise sum would corrupt them.
            merged[key] = merge_insights_snapshots(values)
            continue
        if key == "hdr" and all(isinstance(v, Mapping) for v in values):
            # Log-bucketed histogram wire format: geometry fields
            # (scale/lo/hi) must match, not sum, and sibling quantiles
            # are recomputed from the merged buckets below.
            merged[key] = merge_hdr_snapshots(values)
            continue
        if all(isinstance(v, Mapping) for v in values):
            merged[key] = _merge_level(values)
        elif all(_is_number(v) for v in values):
            merged[key] = sum(values)
        else:
            merged[key] = values[0]  # non-numeric metadata: first wins

    # Derived fields must be recomputed, not summed.
    count = merged.get("count")
    if _is_number(count) and _is_number(merged.get("total")):
        merged["mean"] = (
            round(merged["total"] / count, 6) if count else 0.0
        )
    if "min" in merged or "max" in merged:
        # A summary with count == 0 snapshots min/max as 0.0 placeholders;
        # only populated summaries participate in the extrema.
        populated = [d for d in dicts if d.get("count", 1)]
        minima = [d["min"] for d in populated if _is_number(d.get("min"))]
        maxima = [d["max"] for d in populated if _is_number(d.get("max"))]
        if "min" in merged:
            merged["min"] = round(min(minima), 6) if minima else 0.0
        if "max" in merged:
            merged["max"] = round(max(maxima), 6) if maxima else 0.0
    hits, misses = merged.get("hits"), merged.get("misses")
    if _is_number(hits) and _is_number(misses) and "hit_rate" in merged:
        lookups = hits + misses
        merged["hit_rate"] = round(hits / lookups, 4) if lookups else 0.0
    for key in list(merged):
        if isinstance(merged[key], float):
            merged[key] = round(merged[key], 6)
    # Quantiles are bucket boundaries of the merged histogram, never sums
    # — recomputed last (after rounding) so they stay byte-identical to a
    # single-process run's snapshot.
    hdr = merged.get("hdr")
    if isinstance(hdr, Mapping):
        for name, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
            if name in merged:
                merged[name] = quantile_from_snapshot(hdr, q)
    return merged


def merge_metric_snapshots(
    snapshots: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    """One cluster-wide snapshot from per-shard service snapshots.

    Counters (and histogram buckets) add; ``mean`` is recomputed from the
    merged ``total``/``count``; ``min``/``max`` take the extrema over
    shards that actually observed something; cache ``hit_rate`` is
    recomputed from the merged hit/miss counts.  Capacities (pool workers,
    queue and cache capacity) add too — the merged view describes the
    cluster, not an average shard.
    """
    present = [s for s in snapshots if s]
    if not present:
        return {}
    return _merge_level(present)


# ---------------------------------------------------------------------------
# Span records
# ---------------------------------------------------------------------------


def merge_span_records(
    per_shard: Mapping[int, Sequence[Mapping[str, Any]]],
    stride: int = SPAN_ID_STRIDE,
) -> List[Dict[str, Any]]:
    """Merge per-shard span records into one process-unique timeline.

    Args:
        per_shard: shard id → that worker's exported span records
            (:meth:`repro.obs.tracing.Tracer.to_records` shape).
        stride: id block size per shard; every shard's ids must fit in it.

    Returns:
        New records (inputs are not mutated) with namespaced
        ``span_id``/``parent_id`` and a ``shard`` tag on every span,
        ordered by shard then original completion order.  Span ``start``
        offsets remain relative to each shard's own tracer epoch —
        monotonic clocks do not compare across processes, so no fake
        global timeline is invented.
    """
    merged: List[Dict[str, Any]] = []
    for shard_id in sorted(per_shard):
        offset = (shard_id + 1) * stride
        for record in per_shard[shard_id]:
            span_id = record["span_id"]
            if not 0 <= span_id < stride:
                raise ValueError(
                    f"shard {shard_id} span id {span_id} does not fit the "
                    f"merge stride {stride}"
                )
            remapped = dict(record)
            remapped["span_id"] = offset + span_id
            parent_id = record.get("parent_id")
            remapped["parent_id"] = (
                offset + parent_id if parent_id is not None else None
            )
            tags = dict(record.get("tags") or {})
            tags["shard"] = shard_id
            remapped["tags"] = tags
            merged.append(remapped)
    return merged


# ---------------------------------------------------------------------------
# Prometheus registries
# ---------------------------------------------------------------------------


def registry_export(registry: Any) -> Dict[str, Dict[str, Any]]:
    """A picklable, kind-tagged export of a
    :class:`~repro.obs.metrics.MetricsRegistry`.

    ``{name: {"kind", "help", "value"}}`` — the shape
    :func:`merge_registry_exports` consumes.  Workers ship this across
    the process boundary so the router can expose one cluster-wide
    Prometheus view.
    """
    export: Dict[str, Dict[str, Any]] = {}
    for name in registry.names():
        instrument = registry.get(name)
        if instrument is None:
            continue
        export[name] = {
            "kind": instrument.kind,
            "help": instrument.help,
            "value": instrument.snapshot(),
        }
    return export


def merge_registry_exports(
    exports: Sequence[Mapping[str, Mapping[str, Any]]],
) -> Dict[str, Dict[str, Any]]:
    """One merged registry export from N per-shard exports.

    Counters and gauges sum; histograms sum counts/totals/buckets and
    take min/max extrema (a histogram with ``count == 0`` exports its
    min/max as 0.0 placeholders, which are excluded).  Kind mismatches
    across shards raise — shards run identical code, so a mismatch is a
    protocol bug, not data.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for export in exports:
        for name, entry in export.items():
            if name not in merged:
                merged[name] = {
                    "kind": entry["kind"],
                    "help": entry.get("help", ""),
                    "value": _copy_value(entry["value"]),
                }
                continue
            target = merged[name]
            if target["kind"] != entry["kind"]:
                raise ValueError(
                    f"metric {name!r} is a {target['kind']} on one shard "
                    f"and a {entry['kind']} on another"
                )
            value = entry["value"]
            if isinstance(value, Mapping):  # histogram
                target["value"] = _merge_histogram(target["value"], value)
            else:
                target["value"] = target["value"] + value
    return merged


def _copy_value(value: Any) -> Any:
    if isinstance(value, Mapping):
        copied = dict(value)
        copied["buckets"] = dict(value.get("buckets") or {})
        return copied
    return value


def _merge_histogram(
    left: Mapping[str, Any], right: Mapping[str, Any]
) -> Dict[str, Any]:
    count = left["count"] + right["count"]
    total = round(left["total"] + right["total"], 6)
    populated = [h for h in (left, right) if h["count"]]
    buckets = dict(left.get("buckets") or {})
    for label, n in (right.get("buckets") or {}).items():
        buckets[label] = buckets.get(label, 0) + n
    return {
        "count": count,
        "total": total,
        "mean": round(total / count, 6) if count else 0.0,
        "min": round(min(h["min"] for h in populated), 6) if populated else 0.0,
        "max": round(max(h["max"] for h in populated), 6) if populated else 0.0,
        "buckets": buckets,
    }


def render_prometheus(export: Mapping[str, Mapping[str, Any]]) -> str:
    """Prometheus-flavoured exposition of a (merged) registry export.

    Mirrors :meth:`repro.obs.metrics.MetricsRegistry.render_text`, so the
    cluster view scrapes exactly like a single process's.
    """
    lines: List[str] = []
    for name in sorted(export):
        entry = export[name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        value = entry["value"]
        if isinstance(value, Mapping):  # histogram
            for boundary, count in (value.get("buckets") or {}).items():
                le = boundary[len("le_"):]
                lines.append(f'{name}_bucket{{le="{le}"}} {count}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {value["count"]}')
            lines.append(f"{name}_sum {value['total']}")
            lines.append(f"{name}_count {value['count']}")
        else:
            lines.append(f"{name} {value}")
    return "\n".join(lines)


def merged_spans_dropped(exits: Mapping[int, Any]) -> int:
    """Total spans lost to per-shard retention caps (for validation)."""
    return sum(getattr(exit_, "spans_dropped", 0) for exit_ in exits.values())


def shard_cache_hit_rates(
    shard_snapshots: Mapping[int, Mapping[str, Any]],
) -> Dict[int, Optional[float]]:
    """Per-shard plan-cache hit rate per *query* (None for idle shards).

    Computed from the planning counters — ``cache_hits / (cache_hits +
    built)`` — not the cache's raw lookup stats: single-flight builds
    re-check the cache under the build lock, so lookup-level misses
    double-count every build (plus one more per thread that lost the
    race), which would make the rate depend on scheduling.  The planning
    counters count each served query exactly once.
    """
    rates: Dict[int, Optional[float]] = {}
    for shard_id, snapshot in shard_snapshots.items():
        planning = snapshot.get("planning") or {}
        hits = planning.get("cache_hits", 0)
        built = planning.get("built", 0)
        plans = hits + built
        rates[shard_id] = round(hits / plans, 4) if plans else None
    return rates

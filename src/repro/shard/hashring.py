"""Deterministic consistent hashing of template fingerprints to shards.

The router's core invariant is **template affinity**: two isomorphic
queries (same canonical fingerprint — see
:mod:`repro.service.fingerprint`) must land on the same shard, so each
shard's plan cache only ever sees its own slice of the template universe
and stays small and hot.  A consistent-hash ring gives that affinity a
second property the modulo hash lacks: when the shard count changes, only
``~1/N`` of the templates move, so a resized cluster keeps most of its
cache warmth.

Determinism matters doubly here: Python's builtin ``hash`` is salted per
process (``PYTHONHASHSEED``), so the ring hashes with SHA-256 — the same
fingerprint routes to the same shard in every process, on every run, on
every platform.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Collection, Dict, List, Tuple


def _ring_hash(data: str) -> int:
    """A 64-bit point on the ring (SHA-256 prefix; process-independent)."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """A fixed ring of virtual nodes mapping string keys to shard ids.

    Args:
        shards: number of shards (``0 .. shards-1``).
        replicas: virtual nodes per shard; more replicas smooth the key
            distribution (128 keeps the worst shard within a few percent
            of uniform for realistic template counts).

    The ring is immutable after construction — the router's shard count is
    fixed for the lifetime of the cluster — which keeps lookups lock-free.
    """

    def __init__(self, shards: int, replicas: int = 128):
        if shards < 1:
            raise ValueError("the ring needs at least one shard")
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.shards = shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((_ring_hash(f"shard{shard}#v{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, key: str, exclude: Collection[int] = ()) -> int:
        """The shard owning ``key`` (first ring point clockwise of it).

        With ``exclude`` (the supervised router's set of down shards),
        the walk continues clockwise past virtual nodes of excluded
        shards to the next live owner — the classic consistent-hash
        failover: keys of a down shard spill to its ring successors while
        every other key keeps its original owner, so a recovered shard
        gets its exact template slice back.

        Raises:
            LookupError: every shard is excluded.
        """
        point = _ring_hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        if not exclude:
            return self._owners[index]
        for step in range(len(self._owners)):
            owner = self._owners[(index + step) % len(self._owners)]
            if owner not in exclude:
                return owner
        raise LookupError("no live shard on the ring")

    def distribution(self, keys: "List[str]") -> Dict[int, int]:
        """How many of ``keys`` each shard owns (diagnostics, tests)."""
        counts: Dict[int, int] = {shard: 0 for shard in range(self.shards)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(shards={self.shards}, "
            f"replicas={self.replicas})"
        )

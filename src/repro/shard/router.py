"""``ShardRouter``: N deterministic worker processes behind one front.

The router owns the cluster: it spawns one
:func:`~repro.shard.worker.shard_worker_main` process per shard (spawn
context — a fresh interpreter each, no forked locks), routes every query
by **consistent-hashing its canonical template fingerprint** so
isomorphic queries always land on the same shard (each shard's plan
cache sees only its own slice of the template universe), and multiplexes
responses back to per-request futures through a single collector thread.

Design points that keep the boundary honest:

* **routing is semantic, not textual** — the routing key is the
  parameter-insensitive canonical fingerprint
  (:func:`repro.service.fingerprint.fingerprint_translation`), so
  ``r_name = 'ASIA'`` and ``r_name = 'EUROPE'`` share a shard (and a
  plan-cache entry).  A small constant-masking LRU in front makes the
  repeat-template hot path a dict lookup instead of a parse;
* **backpressure is bounded per shard** — at most
  ``workers + queue_capacity`` requests are in flight per shard (exactly
  the worker-side admission bound, so a routed request is never bounced
  by the shard's own admission control); further submissions block,
  mirroring :meth:`QueryService.run_all`'s blocking admission;
* **failures are explicit** — worker-side errors come back as typed
  :class:`~repro.errors.ReproError`\\ s via the message codec, and a
  worker that *dies* fails its in-flight futures with
  :class:`~repro.errors.ShardError` from the collector's liveness
  watchdog: every submitted query resolves, correct-or-explicit-error;
* **the cluster can heal itself** — with a
  :class:`~repro.shard.supervisor.SupervisorPolicy`, a dead worker is
  restarted (seeded jittered backoff, per-shard budget, shard-level
  circuit breaker), its templates fail over to the next live node on the
  ring (every down/up transition bumps a *ring epoch* that invalidates
  the route LRU), and its stranded in-flight queries are retried on the
  failover shard under a deadline-aware retry budget — queries are
  read-only and idempotent, and a retry never outlives the original
  deadline.  Only when the budget, the deadline, or the ring itself is
  exhausted does the caller see a typed
  :class:`~repro.errors.ShardUnavailable`;
* **shutdown is coordinated** — :meth:`drain` broadcasts a
  :class:`~repro.shard.messages.DrainCommand`, workers drain their
  services (cancelling queued queries, aborting in-flight ones at
  cooperative checkpoints) and ship back final snapshots + span records,
  stragglers past the grace period are killed hard, and every still
  dangling future is failed explicitly.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import re
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from threading import Event, Thread
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Union

from repro.analysis.lockwitness import make_lock
from repro.engine.dbms import DBMSResult
from repro.errors import (
    QueryCancelled,
    ReproError,
    ServiceClosed,
    ShardError,
    ShardUnavailable,
)
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.service.fingerprint import fingerprint_translation
from repro.shard.aggregate import (
    merge_metric_snapshots,
    merge_registry_exports,
    merge_span_records,
    render_prometheus,
    shard_cache_hit_rates,
)
from repro.shard.hashring import ConsistentHashRing
from repro.shard.messages import (
    DrainCommand,
    QueryAnswer,
    QueryFailure,
    QueryRequest,
    SnapshotCommand,
    SnapshotReply,
    WorkerExit,
    WorkerReady,
)
from repro.shard.supervisor import ShardSupervisor, SupervisorPolicy
from repro.shard.worker import ShardConfig, shard_worker_main

#: Matches SQL constants (quoted strings, numbers) for the routing LRU key.
_CONSTANT_RE = re.compile(r"'(?:[^']|'')*'|\b\d+(?:\.\d+)?\b")

#: Routing-LRU capacity: distinct masked query texts remembered.
_ROUTE_CACHE_CAPACITY = 4096

#: Collector poll interval; also the liveness-watchdog tick.
_POLL_SECONDS = 0.2

#: Extra seconds past the drain grace before stragglers are killed hard.
_DRAIN_MARGIN = 15.0


class _ShardHandle:
    """Router-side state of one worker process (one incarnation)."""

    def __init__(
        self, shard_id: int, process, request_queue, incarnation: int = 0
    ) -> None:
        self.shard_id = shard_id
        self.process = process
        self.request_queue = request_queue
        self.incarnation = incarnation
        self.ready = Event()
        self.exited = Event()
        self.exit: Optional[WorkerExit] = None
        self.pid: Optional[int] = None
        self.dead = False  # watchdog verdict, not merely "exited"
        self.inflight = 0
        self.peak_inflight = 0
        self.dispatched = 0


@dataclass
class _PendingEntry:
    """One in-flight request and everything needed to retry it.

    ``deadline_at`` anchors the *original* deadline on the router's
    monotonic clock: a retry gets only what remains of it, never a fresh
    budget.  ``sql``/``work_budget`` are kept so a crash-stranded query
    can be re-dispatched verbatim to a failover shard.
    """

    future: "Future[DBMSResult]"
    shard_id: int
    submitted: float  # perf_counter at first dispatch
    sql: str
    work_budget: Optional[int]
    deadline_at: Optional[float]  # monotonic instant, None = unbounded
    attempts: int = 1
    retries_left: int = 0


class ShardRouter:
    """Multi-process sharded serving with template-affine routing.

    Args:
        config: the per-shard serving configuration (database, width
            bound, pool sizes, budgets, fault spec, tracing).  Every
            shard gets the same config; per-shard variation (the fault
            injector seed) derives from the shard id.
        shards: worker process count (``>= 1``).
        replicas: virtual nodes per shard on the hash ring.
        max_inflight_per_shard: in-flight bound per shard before
            :meth:`submit` blocks; defaults to the shard's own admission
            bound ``workers + queue_capacity``.
        start_timeout: seconds to wait for every worker's ready message.
        supervise: a :class:`~repro.shard.supervisor.SupervisorPolicy`
            enables self-healing (worker restarts, ring failover,
            deadline-aware query retries); None keeps the historical
            fail-fast behavior byte-for-byte.
    """

    def __init__(
        self,
        config: ShardConfig,
        shards: int,
        *,
        replicas: int = 128,
        max_inflight_per_shard: Optional[int] = None,
        start_timeout: float = 120.0,
        supervise: Optional[SupervisorPolicy] = None,
    ):
        if shards < 1:
            raise ValueError("a shard cluster needs at least one shard")
        self.config = config
        self.shards = shards
        self.ring = ConsistentHashRing(shards, replicas=replicas)
        self.max_inflight_per_shard = (
            max_inflight_per_shard
            if max_inflight_per_shard is not None
            else config.workers + config.queue_capacity
        )
        self._schema = config.database.schema.as_mapping()

        # All mutable router state below is guarded by one lock; the
        # condition lets blocked submitters wait for per-shard room.
        self._lock = make_lock("ShardRouter._state")
        self._room = threading.Condition(self._lock)
        self._pending: Dict[int, "tuple[Future, int, float]"] = {}
        self._snapshot_waiters: Dict[int, Future] = {}
        self._next_request_id = 0
        self._routes: "OrderedDict[str, int]" = OrderedDict()
        self._route_hits = 0
        self._route_misses = 0
        self._latencies: List[float] = []
        self._registry_exports: Dict[int, Dict[str, Any]] = {}
        self._closed = False
        # Drain coordination: the gate serializes drain() callers (the
        # first runs the shutdown, late callers block then reuse its
        # verdict), and it is always acquired *before* the state lock.
        self._drain_gate = make_lock("ShardRouter._drain")
        self._drained: Optional[bool] = None

        # Supervision / failover state (all guarded by the state lock).
        self._down: Set[int] = set()  # shards currently without a live worker
        self._ring_epoch = 0  # bumps on every down/up transition
        self._supervision_active = False  # True once startup completed
        self._dead_handles: List[_ShardHandle] = []  # crashed incarnations
        self.supervisor: Optional[ShardSupervisor] = (
            ShardSupervisor(self, supervise) if supervise is not None else None
        )

        ctx = multiprocessing.get_context("spawn")
        self._response_queue = ctx.Queue()
        self._handles: List[_ShardHandle] = []
        for shard_id in range(shards):
            request_queue = ctx.Queue()
            process = ctx.Process(
                target=shard_worker_main,
                args=(shard_id, config, request_queue, self._response_queue),
                name=f"hdqo-shard-{shard_id}",
                daemon=True,
            )
            self._handles.append(
                _ShardHandle(shard_id, process, request_queue)
            )

        self._stop_collector = Event()
        self._collector = Thread(
            target=self._collect, name="hdqo-shard-collector", daemon=True
        )

        for handle in self._handles:
            handle.process.start()
        self._collector.start()
        self._await_ready(start_timeout)
        if self.supervisor is not None:
            # Only now: startup failures above stay fail-fast (the
            # cluster never served), and the watchdog's supervised path
            # can assume any not-ready handle is a crashed restart.
            self._supervision_active = True
            self.supervisor.start()

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        with self._lock:
            handles = list(self._handles)
        for handle in handles:
            while not handle.ready.wait(timeout=_POLL_SECONDS):
                if not handle.process.is_alive():
                    self._abort_start()
                    raise ShardError(
                        f"shard {handle.shard_id} worker died during "
                        f"startup (exit code "
                        f"{handle.process.exitcode})",
                        shard_id=handle.shard_id,
                    )
                if time.monotonic() > deadline:
                    self._abort_start()
                    raise ShardError(
                        f"shard {handle.shard_id} worker did not become "
                        f"ready within {timeout:.0f}s",
                        shard_id=handle.shard_id,
                    )

    def _abort_start(self) -> None:
        self._stop_collector.set()
        with self._lock:
            handles = list(self._handles)
        for handle in handles:
            if handle.process.is_alive():
                handle.process.kill()
        with self._room:
            self._closed = True

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, sql: str) -> int:
        """The shard owning ``sql``'s canonical template (deterministic).

        Repeated shapes hit a constant-masked LRU; misses pay one parse +
        translate + canonical fingerprint, exactly the template identity
        the shard-side plan cache keys on — which is what guarantees that
        isomorphic queries share both a shard *and* a cache entry.

        Under supervision, shards whose worker is down are excluded: the
        ring walk continues clockwise to the next live node (failover).
        The LRU only ever holds routes computed against the *current*
        ring epoch — every down/up transition clears it — so a recovered
        shard gets its template slice back on the next miss.

        Raises:
            ShardUnavailable: every shard is down (supervised only).
        """
        masked = _CONSTANT_RE.sub("?", sql)
        with self._room:
            shard_id = self._routes.get(masked)
            if shard_id is not None:
                self._routes.move_to_end(masked)
                self._route_hits += 1
                return shard_id
            self._route_misses += 1
            exclude: FrozenSet[int] = frozenset(self._down)
        translation = sql_to_conjunctive(parse_sql(sql), self._schema)
        fingerprint = fingerprint_translation(translation)
        try:
            shard_id = self.ring.shard_for(fingerprint.key, exclude)
        except LookupError:
            raise ShardUnavailable(
                "no live shard on the ring (every worker is down)",
                reason="no-live-shard",
            ) from None
        with self._room:
            # Cache only if the down-set is still the one we routed
            # against; a concurrent epoch bump means this route may be
            # stale, and stale entries must never enter the LRU.
            if frozenset(self._down) == exclude:
                self._routes[masked] = shard_id
                if len(self._routes) > _ROUTE_CACHE_CAPACITY:
                    self._routes.popitem(last=False)
        return shard_id

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------

    def submit(
        self,
        sql: str,
        work_budget: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> "Future[DBMSResult]":
        """Route and dispatch one query; block while its shard is full.

        The returned future resolves to the shard's
        :class:`~repro.engine.dbms.DBMSResult` or raises the worker-side
        typed error; a dead worker fails it with
        :class:`~repro.errors.ShardError`.

        Raises:
            ServiceClosed: the router is draining or closed.
            ShardError: the target shard's worker is dead (unsupervised;
                a supervised router re-routes around dead shards and
                raises :class:`~repro.errors.ShardUnavailable` only when
                no live shard remains).
        """
        future: "Future[DBMSResult]" = Future()
        future.set_running_or_notify_cancel()
        deadline_at = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        retries = (
            self.supervisor.policy.retry.max_retries
            if self.supervisor is not None
            else 0
        )
        reroutes = 0
        while True:
            shard_id = self.route(sql)
            with self._room:
                handle = self._handles[shard_id]
                while (
                    not self._closed
                    and not handle.dead
                    and self._handles[shard_id] is handle
                    and handle.inflight >= self.max_inflight_per_shard
                ):
                    self._room.wait()
                if self._closed:
                    raise ServiceClosed("shard router is closed")
                if handle.dead or self._handles[shard_id] is not handle:
                    # The target died (or was replaced) while we waited.
                    # Supervised: route again against the updated
                    # down-set; bounded so a mass die-off cannot spin.
                    if self.supervisor is not None and reroutes < self.shards:
                        reroutes += 1
                        continue
                    raise ShardError(
                        f"shard {shard_id} worker is dead",
                        shard_id=shard_id,
                    )
                request_id = self._next_request_id
                self._next_request_id += 1
                handle.inflight += 1
                handle.dispatched += 1
                handle.peak_inflight = max(
                    handle.peak_inflight, handle.inflight
                )
                self._pending[request_id] = _PendingEntry(
                    future=future,
                    shard_id=shard_id,
                    submitted=time.perf_counter(),
                    sql=sql,
                    work_budget=work_budget,
                    deadline_at=deadline_at,
                    retries_left=retries,
                )
            handle.request_queue.put(
                QueryRequest(
                    request_id=request_id,
                    sql=sql,
                    work_budget=work_budget,
                    deadline_seconds=deadline_seconds,
                )
            )
            return future

    def run_all(
        self,
        queries: Sequence[str],
        work_budget: Optional[int] = None,
        return_exceptions: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> "List[Union[DBMSResult, Exception]]":
        """Route a batch across the cluster; results in submission order.

        Same contract as :meth:`QueryService.run_all`: with
        ``return_exceptions``, typed library errors come back in place of
        results; :class:`~repro.errors.QueryCancelled` (the caller asked
        to stop) and non-library exceptions always propagate.  Errors
        raised at *submission* time — an unparseable query failing in
        :meth:`route`, a dead shard — follow the same rule, so one bad
        query never aborts the rest of the batch.
        """
        outcomes: "List[Union[Future, Exception]]" = []
        for sql in queries:
            try:
                outcomes.append(
                    self.submit(
                        sql,
                        work_budget=work_budget,
                        deadline_seconds=deadline_seconds,
                    )
                )
            except QueryCancelled:
                raise
            except ReproError as exc:
                if not return_exceptions:
                    raise
                outcomes.append(exc)
        results: "List[Union[DBMSResult, Exception]]" = []
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                results.append(outcome)
                continue
            try:
                results.append(outcome.result())
            except QueryCancelled:
                raise
            except ReproError as exc:
                if not return_exceptions:
                    raise
                results.append(exc)
        return results

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        """Drain the response queue; watch worker liveness in the gaps."""
        while not self._stop_collector.is_set():
            try:
                message = self._response_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                self._check_liveness()
                continue
            if isinstance(message, WorkerReady):
                with self._lock:
                    handle = self._handles[message.shard_id]
                if message.incarnation != handle.incarnation:
                    continue  # a stale incarnation's ready; ignore
                handle.pid = message.pid
                handle.ready.set()
                if self._supervision_active:
                    self._on_worker_ready(
                        message.shard_id, message.incarnation
                    )
            elif isinstance(message, QueryAnswer):
                self._resolve(
                    message.request_id, message.shard_id, message
                )
            elif isinstance(message, QueryFailure):
                self._resolve(
                    message.request_id, message.shard_id, message
                )
            elif isinstance(message, SnapshotReply):
                with self._room:
                    waiter = self._snapshot_waiters.pop(
                        message.request_id, None
                    )
                    self._registry_exports[message.shard_id] = (
                        message.registry
                    )
                if waiter is not None and not waiter.done():
                    waiter.set_result(
                        (message.shard_id, message.snapshot)
                    )
            elif isinstance(message, WorkerExit):
                with self._lock:
                    handle = self._handles[message.shard_id]
                if message.incarnation != handle.incarnation:
                    continue  # a stale incarnation's exit; ignore
                handle.exit = message
                with self._room:
                    self._registry_exports[message.shard_id] = (
                        message.registry
                    )
                handle.exited.set()

    def _resolve(
        self,
        request_id: int,
        shard_id: int,
        message: "Union[QueryAnswer, QueryFailure]",
    ) -> None:
        with self._room:
            entry = self._pending.pop(request_id, None)
            if entry is None:
                return  # already failed by the watchdog or drain
            handle = self._handles[entry.shard_id]
            handle.inflight -= 1
            self._latencies.append(
                time.perf_counter() - entry.submitted
            )
            self._room.notify_all()
        if entry.future.done():
            return
        if isinstance(message, QueryAnswer):
            entry.future.set_result(message.to_result())
        else:
            entry.future.set_exception(message.to_error())

    def _check_liveness(self) -> None:
        """React to dead worker processes (collector thread).

        Unsupervised: fail the shard's in-flight futures and leave the
        shard dead (the historical behavior).  Supervised: mark the
        shard down (epoch bump, LRU clear), hand the death to the
        supervisor for a scheduled restart, and retry-or-fail every
        stranded in-flight query.  The supervised path also covers
        workers that crash *during a restart's startup* — the not-ready
        guard applies only before supervision is active.
        """
        with self._lock:
            handles = list(self._handles)
        for handle in handles:
            if handle.dead or handle.exited.is_set():
                continue
            if handle.process.is_alive():
                continue
            if not self._supervision_active and not handle.ready.is_set():
                continue
            # The process exited without a WorkerExit: a crash.  (A clean
            # worker posts WorkerExit before leaving, and the queue feeder
            # flushes it before process exit, so the exit message — if any
            # — has been or will be observed; losing this race only means
            # failing an already-resolved request id, which _resolve
            # ignores.)
            if self._supervision_active:
                self._on_worker_death(handle)
            else:
                handle.dead = True
                self._fail_shard_pending(
                    handle,
                    f"shard {handle.shard_id} worker died (exit code "
                    f"{handle.process.exitcode}) with requests in flight",
                )

    def _fail_shard_pending(self, handle: _ShardHandle, reason: str) -> None:
        with self._room:
            doomed = [
                (request_id, entry)
                for request_id, entry in self._pending.items()
                if entry.shard_id == handle.shard_id
            ]
            for request_id, _ in doomed:
                del self._pending[request_id]
            handle.inflight = 0
            self._room.notify_all()
        for _, entry in doomed:
            if not entry.future.done():
                entry.future.set_exception(
                    ShardError(reason, shard_id=handle.shard_id)
                )

    # ------------------------------------------------------------------
    # Supervision: death, failover retries, recovery, respawn
    # ------------------------------------------------------------------

    def _on_worker_death(self, handle: _ShardHandle) -> None:
        """Supervised death handling: mark down, heal, retry (collector).

        Everything routing-related happens atomically under the state
        lock — the dead flag, the down-set, the ring epoch bump, and the
        route-LRU invalidation — so a concurrent :meth:`route` either
        sees the shard live (and its dispatch is swept into the doomed
        set here, or bounced by :meth:`submit`'s dead-handle re-route)
        or already routes around it.  The supervisor is notified
        *outside* the lock (lock order: supervisor lock is never taken
        under the router state lock).
        """
        exitcode = handle.process.exitcode
        with self._room:
            if handle.dead or self._handles[handle.shard_id] is not handle:
                return  # another path already handled this incarnation
            handle.dead = True
            self._down.add(handle.shard_id)
            self._ring_epoch += 1
            self._routes.clear()
            doomed_ids = [
                request_id
                for request_id, entry in self._pending.items()
                if entry.shard_id == handle.shard_id
            ]
            doomed = [self._pending.pop(request_id) for request_id in doomed_ids]
            handle.inflight = 0
            self._room.notify_all()
        supervisor = self.supervisor
        assert supervisor is not None  # guarded by _supervision_active
        supervisor.metrics.record_ring_epoch()
        supervisor.on_worker_death(handle.shard_id, exitcode, len(doomed))
        for entry in doomed:
            self._retry_or_fail(entry, handle.shard_id, exitcode)

    def _retry_or_fail(
        self,
        entry: _PendingEntry,
        dead_shard: int,
        exitcode: Optional[int],
    ) -> None:
        """Re-dispatch a crash-stranded query, or fail it explicitly.

        Queries are read-only and idempotent, so a retry is always
        *correct*; the only questions are budgets.  A retry must fit
        inside the original deadline (``deadline_at`` never moves) and
        inside the per-query retry budget; when either is exhausted — or
        no live shard remains — the caller gets a typed
        :class:`~repro.errors.ShardUnavailable`.
        """
        if entry.future.done():
            return
        denial: Optional[str] = None
        remaining: Optional[float] = None
        if entry.retries_left <= 0:
            denial = "retry-budget"
        elif entry.deadline_at is not None:
            remaining = entry.deadline_at - time.monotonic()
            if remaining <= 0:
                denial = "deadline"
        if denial is None:
            denial = self._dispatch_retry(entry, remaining)
        if denial is None:
            return  # re-dispatched to a failover shard
        supervisor = self.supervisor
        if supervisor is not None:
            supervisor.metrics.record_unavailable()
        detail = {
            "retry-budget": "retry budget exhausted",
            "deadline": "original deadline exhausted",
            "no-live-shard": "no live failover shard",
            "draining": "router is draining",
        }[denial]
        entry.future.set_exception(
            ShardUnavailable(
                f"shard {dead_shard} worker died (exit code {exitcode}) "
                f"with the query in flight; {detail} after "
                f"{entry.attempts} attempt(s)",
                shard_id=dead_shard,
                attempts=entry.attempts,
                reason=denial,
            )
        )

    def _dispatch_retry(
        self, entry: _PendingEntry, remaining: Optional[float]
    ) -> Optional[str]:
        """Dispatch one retry to a live failover shard (collector thread).

        Returns None on success, else the denial reason.  The dispatch is
        non-blocking — the collector must never wait on the room
        condition — so it rides above the per-shard inflight bound; the
        worker's own admission control is the backstop and answers with
        a typed ``ServiceOverloaded`` if the failover shard is saturated.
        """
        for _ in range(self.shards):
            try:
                target = self.route(entry.sql)
            except ShardUnavailable:
                return "no-live-shard"
            with self._room:
                if self._closed:
                    return "draining"
                handle = self._handles[target]
                if handle.dead:
                    continue  # raced another death; route again
                request_id = self._next_request_id
                self._next_request_id += 1
                handle.inflight += 1
                handle.dispatched += 1
                handle.peak_inflight = max(
                    handle.peak_inflight, handle.inflight
                )
                self._pending[request_id] = _PendingEntry(
                    future=entry.future,
                    shard_id=target,
                    submitted=entry.submitted,
                    sql=entry.sql,
                    work_budget=entry.work_budget,
                    deadline_at=entry.deadline_at,
                    attempts=entry.attempts + 1,
                    retries_left=entry.retries_left - 1,
                )
            handle.request_queue.put(
                QueryRequest(
                    request_id=request_id,
                    sql=entry.sql,
                    work_budget=entry.work_budget,
                    deadline_seconds=remaining,
                )
            )
            supervisor = self.supervisor
            if supervisor is not None:
                supervisor.metrics.record_failover()
            return None
        return "no-live-shard"

    def _on_worker_ready(self, shard_id: int, incarnation: int) -> None:
        """A (re)started worker is serving: restore its ring ownership."""
        with self._room:
            if shard_id not in self._down:
                return  # initial startup, not a recovery
            self._down.discard(shard_id)
            self._ring_epoch += 1
            self._routes.clear()
            self._room.notify_all()
        supervisor = self.supervisor
        assert supervisor is not None
        supervisor.metrics.record_ring_epoch()
        supervisor.on_worker_ready(shard_id, incarnation)

    def _respawn_shard(self, shard_id: int, incarnation: int) -> bool:
        """Spawn a replacement worker (supervisor thread).

        The replacement reuses the cluster's :class:`ShardConfig`
        verbatim — every per-shard source of randomness derives from
        ``config.seed + shard_id``, so the new incarnation rebuilds an
        identical serving world (seeded determinism).  A fresh request
        queue discards whatever the dead incarnation never consumed
        (those queries were already retried or failed explicitly).

        Returns False when the router is draining (no spawn happened).
        """
        with self._room:
            if self._closed:
                return False
            old = self._handles[shard_id]
        ctx = multiprocessing.get_context("spawn")
        request_queue = ctx.Queue()
        process = ctx.Process(
            target=shard_worker_main,
            args=(shard_id, self.config, request_queue,
                  self._response_queue),
            kwargs={"incarnation": incarnation},
            name=f"hdqo-shard-{shard_id}-r{incarnation}",
            daemon=True,
        )
        process.start()
        handle = _ShardHandle(
            shard_id, process, request_queue, incarnation=incarnation
        )
        with self._room:
            if self._closed:
                process.kill()
                return False
            # The old incarnation's queue is intentionally left open:
            # a submitter that raced the death may still hold a
            # reference and put() into it (harmless — nothing reads it);
            # drain() closes it with the rest.
            self._dead_handles.append(old)
            self._handles[shard_id] = handle
            self._room.notify_all()
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Live cluster snapshot: per-shard + merged + router-side view.

        Shards whose worker is dead (or that miss the timeout) are
        reported under ``unresponsive`` instead of blocking the rest.
        """
        waiters: List["tuple[int, Future]"] = []
        with self._room:
            if self._closed:
                raise ServiceClosed("shard router is closed")
            live = [
                handle
                for handle in self._handles
                if not handle.dead and not handle.exited.is_set()
            ]
            for handle in live:
                request_id = self._next_request_id
                self._next_request_id += 1
                waiter: Future = Future()
                self._snapshot_waiters[request_id] = waiter
                waiters.append((request_id, waiter))
        for handle, (request_id, _) in zip(live, waiters):
            handle.request_queue.put(SnapshotCommand(request_id))
        per_shard: Dict[int, Dict[str, Any]] = {}
        unresponsive: List[int] = []
        deadline = time.monotonic() + timeout
        for handle, (request_id, waiter) in zip(live, waiters):
            remaining = max(0.0, deadline - time.monotonic())
            try:
                shard_id, shard_snapshot = waiter.result(timeout=remaining)
            except FutureTimeout:
                with self._room:
                    self._snapshot_waiters.pop(request_id, None)
                unresponsive.append(handle.shard_id)
            else:
                per_shard[shard_id] = shard_snapshot
        return self._assemble_snapshot(per_shard, unresponsive)

    def _assemble_snapshot(
        self,
        per_shard: Dict[int, Dict[str, Any]],
        unresponsive: List[int],
    ) -> Dict[str, Any]:
        with self._room:
            router = {
                "shards": self.shards,
                "ring_epoch": self._ring_epoch,
                "down_shards": sorted(self._down),
                "routing_cache": {
                    "hits": self._route_hits,
                    "misses": self._route_misses,
                    "size": len(self._routes),
                    "capacity": _ROUTE_CACHE_CAPACITY,
                },
                "per_shard": {
                    handle.shard_id: {
                        "pid": handle.pid,
                        "incarnation": handle.incarnation,
                        "dispatched": handle.dispatched,
                        "inflight": handle.inflight,
                        "peak_inflight": handle.peak_inflight,
                        "max_inflight": self.max_inflight_per_shard,
                        "alive": handle.process.is_alive(),
                    }
                    for handle in self._handles
                },
            }
        merged = merge_metric_snapshots(
            [per_shard[s] for s in sorted(per_shard)]
        )
        data: Dict[str, Any] = {
            "router": router,
            "shards": {
                shard_id: per_shard[shard_id]
                for shard_id in sorted(per_shard)
            },
            "cache_hit_rates": shard_cache_hit_rates(per_shard),
            "merged": merged,
            "unresponsive": unresponsive,
        }
        if self.supervisor is not None:
            data["supervisor"] = self.supervisor.snapshot()
            # Worker-death / restart events belong in the cluster slow
            # log next to the per-query error events the shards report.
            insights = merged.get("insights")
            if isinstance(insights, dict):
                slow_log = insights.setdefault(
                    "slow_log", {"outliers": {}, "events": []}
                )
                if isinstance(slow_log, dict):
                    events = slow_log.setdefault("events", [])
                    if isinstance(events, list):
                        events.extend(self.supervisor.events())
        return data

    def render_prometheus(self) -> str:
        """One Prometheus exposition merged from every shard's registry.

        Uses the most recent registry export from each shard (refreshed
        by :meth:`snapshot` and finalized by :meth:`drain`).
        """
        with self._room:
            exports = [
                self._registry_exports[shard_id]
                for shard_id in sorted(self._registry_exports)
            ]
        return render_prometheus(merge_registry_exports(exports))

    def client_latencies(self) -> List[float]:
        """Router-observed seconds from dispatch to response, per query."""
        with self._room:
            return list(self._latencies)

    def saturation(self) -> float:
        """Peak per-shard inflight as a fraction of the per-shard bound."""
        with self._room:
            peak = max(
                (handle.peak_inflight for handle in self._handles),
                default=0,
            )
        return peak / self.max_inflight_per_shard

    def shard_pids(self) -> Dict[int, Optional[int]]:
        """Shard id → current worker pid (live shards only)."""
        with self._room:
            return {
                handle.shard_id: handle.pid
                for handle in self._handles
                if not handle.dead
            }

    def live_shards(self) -> List[int]:
        """Shards whose current worker is alive and serving."""
        with self._room:
            handles = list(self._handles)
        return [
            handle.shard_id
            for handle in handles
            if not handle.dead
            and handle.ready.is_set()
            and handle.process.is_alive()
        ]

    def ring_epoch(self) -> int:
        """The current ring epoch (bumps on every down/up transition)."""
        with self._room:
            return self._ring_epoch

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def drain(self, grace_seconds: Optional[float] = None) -> bool:
        """Cross-shard graceful shutdown (idempotent, concurrency-safe).

        Stops admitting, broadcasts :class:`DrainCommand` to every live
        shard (each drains its own service: queued queries cancel,
        in-flight queries abort at their next cooperative checkpoint,
        every outstanding request gets an explicit response), collects the
        final :class:`WorkerExit` messages, kills any straggler past the
        grace period, and fails whatever futures still dangle with
        :class:`~repro.errors.ShardError`.

        Exactly one caller runs the shutdown: concurrent and repeated
        calls block on the drain gate and return the winner's verdict.
        Safe to call while the supervisor is mid-restart — the supervisor
        is stopped (and joined) first, and a respawn that races the
        close observes ``_closed`` and backs out.

        Returns:
            True when every shard drained cleanly (worker reported a
            clean drain, exited by itself, and left no dangling futures).
        """
        with self._drain_gate:
            if self._drained is not None:
                return self._drained
            self._drained = self._drain_once(grace_seconds)
            return self._drained

    def _drain_once(self, grace_seconds: Optional[float]) -> bool:
        with self._room:
            self._closed = True
            self._room.notify_all()
        if self.supervisor is not None:
            # No respawns past this point; a restart already in flight
            # either installed its handle (and is drained below) or sees
            # _closed and backs out.
            self.supervisor.stop()
        with self._lock:
            # Stable snapshot: the supervisor is stopped, so no further
            # respawn can replace a slot after this point.
            handles = list(self._handles)
        for handle in handles:
            if not handle.dead:
                handle.request_queue.put(
                    DrainCommand(grace_seconds=grace_seconds)
                )
        budget = (grace_seconds or 0.0) + _DRAIN_MARGIN
        deadline = time.monotonic() + budget
        clean = True
        for handle in handles:
            remaining = max(0.0, deadline - time.monotonic())
            if handle.dead:
                clean = False
                continue
            if not handle.exited.wait(timeout=remaining):
                clean = False
            handle.process.join(
                timeout=max(0.0, deadline - time.monotonic()) + 1.0
            )
            if handle.process.is_alive():
                # SIGTERM is ignored by workers by design; escalate.
                handle.process.kill()
                handle.process.join(timeout=5.0)
                clean = False
            if handle.exit is not None and not handle.exit.drained:
                clean = False
        # The collector saw every WorkerExit that will ever arrive.
        self._stop_collector.set()
        self._collector.join(timeout=5.0)
        with self._room:
            dangling = list(self._pending.values())
            self._pending.clear()
            for handle in self._handles:
                handle.inflight = 0
        if dangling:
            clean = False
        for entry in dangling:
            if not entry.future.done():
                entry.future.set_exception(
                    ShardError(
                        f"query abandoned: shard {entry.shard_id} did "
                        f"not respond before drain completed",
                        shard_id=entry.shard_id,
                    )
                )
        with self._lock:
            all_handles = self._handles + self._dead_handles
        for handle in all_handles:
            handle.request_queue.close()
            handle.request_queue.cancel_join_thread()
        self._response_queue.close()
        self._response_queue.cancel_join_thread()
        return clean

    def close(self) -> None:
        """Alias for :meth:`drain` with no grace bound override."""
        self.drain()

    # ------------------------------------------------------------------
    # Post-drain aggregation
    # ------------------------------------------------------------------

    def worker_exits(self) -> Dict[int, WorkerExit]:
        """Per-shard final state (only populated after :meth:`drain`)."""
        with self._lock:
            handles = list(self._handles)
        return {
            handle.shard_id: handle.exit
            for handle in handles
            if handle.exit is not None
        }

    def final_snapshot(self) -> Dict[str, Any]:
        """The post-drain cluster snapshot (merged from worker exits)."""
        exits = self.worker_exits()
        per_shard = {
            shard_id: exit_.snapshot for shard_id, exit_ in exits.items()
        }
        with self._lock:
            missing = [
                handle.shard_id
                for handle in self._handles
                if handle.exit is None
            ]
        return self._assemble_snapshot(per_shard, missing)

    def span_records(self) -> List[Dict[str, Any]]:
        """Merged, shard-tagged span records from every worker's tracer."""
        return merge_span_records(
            {
                shard_id: exit_.span_records
                for shard_id, exit_ in self.worker_exits().items()
            }
        )

    def spans_dropped(self) -> int:
        return sum(
            exit_.spans_dropped for exit_ in self.worker_exits().values()
        )

    def open_spans(self) -> int:
        return sum(
            exit_.open_spans for exit_ in self.worker_exits().values()
        )

    def lock_violations(self) -> Dict[int, str]:
        """Shard id → witnessed lock-order cycle (empty when clean)."""
        return {
            shard_id: exit_.lock_violation
            for shard_id, exit_ in self.worker_exits().items()
            if exit_.lock_violation
        }

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""``ShardRouter``: N deterministic worker processes behind one front.

The router owns the cluster: it spawns one
:func:`~repro.shard.worker.shard_worker_main` process per shard (spawn
context — a fresh interpreter each, no forked locks), routes every query
by **consistent-hashing its canonical template fingerprint** so
isomorphic queries always land on the same shard (each shard's plan
cache sees only its own slice of the template universe), and multiplexes
responses back to per-request futures through a single collector thread.

Design points that keep the boundary honest:

* **routing is semantic, not textual** — the routing key is the
  parameter-insensitive canonical fingerprint
  (:func:`repro.service.fingerprint.fingerprint_translation`), so
  ``r_name = 'ASIA'`` and ``r_name = 'EUROPE'`` share a shard (and a
  plan-cache entry).  A small constant-masking LRU in front makes the
  repeat-template hot path a dict lookup instead of a parse;
* **backpressure is bounded per shard** — at most
  ``workers + queue_capacity`` requests are in flight per shard (exactly
  the worker-side admission bound, so a routed request is never bounced
  by the shard's own admission control); further submissions block,
  mirroring :meth:`QueryService.run_all`'s blocking admission;
* **failures are explicit** — worker-side errors come back as typed
  :class:`~repro.errors.ReproError`\\ s via the message codec, and a
  worker that *dies* fails its in-flight futures with
  :class:`~repro.errors.ShardError` from the collector's liveness
  watchdog: every submitted query resolves, correct-or-explicit-error;
* **shutdown is coordinated** — :meth:`drain` broadcasts a
  :class:`~repro.shard.messages.DrainCommand`, workers drain their
  services (cancelling queued queries, aborting in-flight ones at
  cooperative checkpoints) and ship back final snapshots + span records,
  stragglers past the grace period are killed hard, and every still
  dangling future is failed explicitly.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import re
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from threading import Event, Thread
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.lockwitness import make_lock
from repro.engine.dbms import DBMSResult
from repro.errors import (
    QueryCancelled,
    ReproError,
    ServiceClosed,
    ShardError,
)
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.service.fingerprint import fingerprint_translation
from repro.shard.aggregate import (
    merge_metric_snapshots,
    merge_registry_exports,
    merge_span_records,
    render_prometheus,
    shard_cache_hit_rates,
)
from repro.shard.hashring import ConsistentHashRing
from repro.shard.messages import (
    DrainCommand,
    QueryAnswer,
    QueryFailure,
    QueryRequest,
    SnapshotCommand,
    SnapshotReply,
    WorkerExit,
    WorkerReady,
)
from repro.shard.worker import ShardConfig, shard_worker_main

#: Matches SQL constants (quoted strings, numbers) for the routing LRU key.
_CONSTANT_RE = re.compile(r"'(?:[^']|'')*'|\b\d+(?:\.\d+)?\b")

#: Routing-LRU capacity: distinct masked query texts remembered.
_ROUTE_CACHE_CAPACITY = 4096

#: Collector poll interval; also the liveness-watchdog tick.
_POLL_SECONDS = 0.2

#: Extra seconds past the drain grace before stragglers are killed hard.
_DRAIN_MARGIN = 15.0


class _ShardHandle:
    """Router-side state of one worker process."""

    def __init__(self, shard_id: int, process, request_queue) -> None:
        self.shard_id = shard_id
        self.process = process
        self.request_queue = request_queue
        self.ready = Event()
        self.exited = Event()
        self.exit: Optional[WorkerExit] = None
        self.pid: Optional[int] = None
        self.dead = False  # watchdog verdict, not merely "exited"
        self.inflight = 0
        self.peak_inflight = 0
        self.dispatched = 0


class ShardRouter:
    """Multi-process sharded serving with template-affine routing.

    Args:
        config: the per-shard serving configuration (database, width
            bound, pool sizes, budgets, fault spec, tracing).  Every
            shard gets the same config; per-shard variation (the fault
            injector seed) derives from the shard id.
        shards: worker process count (``>= 1``).
        replicas: virtual nodes per shard on the hash ring.
        max_inflight_per_shard: in-flight bound per shard before
            :meth:`submit` blocks; defaults to the shard's own admission
            bound ``workers + queue_capacity``.
        start_timeout: seconds to wait for every worker's ready message.
    """

    def __init__(
        self,
        config: ShardConfig,
        shards: int,
        *,
        replicas: int = 128,
        max_inflight_per_shard: Optional[int] = None,
        start_timeout: float = 120.0,
    ):
        if shards < 1:
            raise ValueError("a shard cluster needs at least one shard")
        self.config = config
        self.shards = shards
        self.ring = ConsistentHashRing(shards, replicas=replicas)
        self.max_inflight_per_shard = (
            max_inflight_per_shard
            if max_inflight_per_shard is not None
            else config.workers + config.queue_capacity
        )
        self._schema = config.database.schema.as_mapping()

        # All mutable router state below is guarded by one lock; the
        # condition lets blocked submitters wait for per-shard room.
        self._lock = make_lock("ShardRouter._state")
        self._room = threading.Condition(self._lock)
        self._pending: Dict[int, "tuple[Future, int, float]"] = {}
        self._snapshot_waiters: Dict[int, Future] = {}
        self._next_request_id = 0
        self._routes: "OrderedDict[str, int]" = OrderedDict()
        self._route_hits = 0
        self._route_misses = 0
        self._latencies: List[float] = []
        self._registry_exports: Dict[int, Dict[str, Any]] = {}
        self._closed = False
        self._drained: Optional[bool] = None

        ctx = multiprocessing.get_context("spawn")
        self._response_queue = ctx.Queue()
        self._handles: List[_ShardHandle] = []
        for shard_id in range(shards):
            request_queue = ctx.Queue()
            process = ctx.Process(
                target=shard_worker_main,
                args=(shard_id, config, request_queue, self._response_queue),
                name=f"hdqo-shard-{shard_id}",
                daemon=True,
            )
            self._handles.append(
                _ShardHandle(shard_id, process, request_queue)
            )

        self._stop_collector = Event()
        self._collector = Thread(
            target=self._collect, name="hdqo-shard-collector", daemon=True
        )

        for handle in self._handles:
            handle.process.start()
        self._collector.start()
        self._await_ready(start_timeout)

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        for handle in self._handles:
            while not handle.ready.wait(timeout=_POLL_SECONDS):
                if not handle.process.is_alive():
                    self._abort_start()
                    raise ShardError(
                        f"shard {handle.shard_id} worker died during "
                        f"startup (exit code "
                        f"{handle.process.exitcode})",
                        shard_id=handle.shard_id,
                    )
                if time.monotonic() > deadline:
                    self._abort_start()
                    raise ShardError(
                        f"shard {handle.shard_id} worker did not become "
                        f"ready within {timeout:.0f}s",
                        shard_id=handle.shard_id,
                    )

    def _abort_start(self) -> None:
        self._stop_collector.set()
        for handle in self._handles:
            if handle.process.is_alive():
                handle.process.kill()
        with self._room:
            self._closed = True

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, sql: str) -> int:
        """The shard owning ``sql``'s canonical template (deterministic).

        Repeated shapes hit a constant-masked LRU; misses pay one parse +
        translate + canonical fingerprint, exactly the template identity
        the shard-side plan cache keys on — which is what guarantees that
        isomorphic queries share both a shard *and* a cache entry.
        """
        masked = _CONSTANT_RE.sub("?", sql)
        with self._room:
            shard_id = self._routes.get(masked)
            if shard_id is not None:
                self._routes.move_to_end(masked)
                self._route_hits += 1
                return shard_id
            self._route_misses += 1
        translation = sql_to_conjunctive(parse_sql(sql), self._schema)
        fingerprint = fingerprint_translation(translation)
        shard_id = self.ring.shard_for(fingerprint.key)
        with self._room:
            self._routes[masked] = shard_id
            if len(self._routes) > _ROUTE_CACHE_CAPACITY:
                self._routes.popitem(last=False)
        return shard_id

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------

    def submit(
        self,
        sql: str,
        work_budget: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> "Future[DBMSResult]":
        """Route and dispatch one query; block while its shard is full.

        The returned future resolves to the shard's
        :class:`~repro.engine.dbms.DBMSResult` or raises the worker-side
        typed error; a dead worker fails it with
        :class:`~repro.errors.ShardError`.

        Raises:
            ServiceClosed: the router is draining or closed.
            ShardError: the target shard's worker is dead.
        """
        shard_id = self.route(sql)
        handle = self._handles[shard_id]
        future: "Future[DBMSResult]" = Future()
        future.set_running_or_notify_cancel()
        with self._room:
            while (
                not self._closed
                and not handle.dead
                and handle.inflight >= self.max_inflight_per_shard
            ):
                self._room.wait()
            if self._closed:
                raise ServiceClosed("shard router is closed")
            if handle.dead:
                raise ShardError(
                    f"shard {shard_id} worker is dead", shard_id=shard_id
                )
            request_id = self._next_request_id
            self._next_request_id += 1
            handle.inflight += 1
            handle.dispatched += 1
            handle.peak_inflight = max(
                handle.peak_inflight, handle.inflight
            )
            self._pending[request_id] = (
                future,
                shard_id,
                time.perf_counter(),
            )
        handle.request_queue.put(
            QueryRequest(
                request_id=request_id,
                sql=sql,
                work_budget=work_budget,
                deadline_seconds=deadline_seconds,
            )
        )
        return future

    def run_all(
        self,
        queries: Sequence[str],
        work_budget: Optional[int] = None,
        return_exceptions: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> "List[Union[DBMSResult, Exception]]":
        """Route a batch across the cluster; results in submission order.

        Same contract as :meth:`QueryService.run_all`: with
        ``return_exceptions``, typed library errors come back in place of
        results; :class:`~repro.errors.QueryCancelled` (the caller asked
        to stop) and non-library exceptions always propagate.  Errors
        raised at *submission* time — an unparseable query failing in
        :meth:`route`, a dead shard — follow the same rule, so one bad
        query never aborts the rest of the batch.
        """
        outcomes: "List[Union[Future, Exception]]" = []
        for sql in queries:
            try:
                outcomes.append(
                    self.submit(
                        sql,
                        work_budget=work_budget,
                        deadline_seconds=deadline_seconds,
                    )
                )
            except QueryCancelled:
                raise
            except ReproError as exc:
                if not return_exceptions:
                    raise
                outcomes.append(exc)
        results: "List[Union[DBMSResult, Exception]]" = []
        for outcome in outcomes:
            if isinstance(outcome, Exception):
                results.append(outcome)
                continue
            try:
                results.append(outcome.result())
            except QueryCancelled:
                raise
            except ReproError as exc:
                if not return_exceptions:
                    raise
                results.append(exc)
        return results

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------

    def _collect(self) -> None:
        """Drain the response queue; watch worker liveness in the gaps."""
        while not self._stop_collector.is_set():
            try:
                message = self._response_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                self._check_liveness()
                continue
            if isinstance(message, WorkerReady):
                handle = self._handles[message.shard_id]
                handle.pid = message.pid
                handle.ready.set()
            elif isinstance(message, QueryAnswer):
                self._resolve(
                    message.request_id, message.shard_id, message
                )
            elif isinstance(message, QueryFailure):
                self._resolve(
                    message.request_id, message.shard_id, message
                )
            elif isinstance(message, SnapshotReply):
                with self._room:
                    waiter = self._snapshot_waiters.pop(
                        message.request_id, None
                    )
                    self._registry_exports[message.shard_id] = (
                        message.registry
                    )
                if waiter is not None and not waiter.done():
                    waiter.set_result(
                        (message.shard_id, message.snapshot)
                    )
            elif isinstance(message, WorkerExit):
                handle = self._handles[message.shard_id]
                handle.exit = message
                with self._room:
                    self._registry_exports[message.shard_id] = (
                        message.registry
                    )
                handle.exited.set()

    def _resolve(
        self,
        request_id: int,
        shard_id: int,
        message: "Union[QueryAnswer, QueryFailure]",
    ) -> None:
        with self._room:
            entry = self._pending.pop(request_id, None)
            if entry is None:
                return  # already failed by the watchdog or drain
            future, _, submitted = entry
            handle = self._handles[shard_id]
            handle.inflight -= 1
            self._latencies.append(time.perf_counter() - submitted)
            self._room.notify_all()
        if future.done():
            return
        if isinstance(message, QueryAnswer):
            future.set_result(message.to_result())
        else:
            future.set_exception(message.to_error())

    def _check_liveness(self) -> None:
        """Fail in-flight futures of shards whose worker process died."""
        for handle in self._handles:
            if handle.dead or handle.exited.is_set():
                continue
            if handle.process.is_alive() or not handle.ready.is_set():
                continue
            # The process exited without a WorkerExit: a crash.  (A clean
            # worker posts WorkerExit before leaving, and the queue feeder
            # flushes it before process exit, so the exit message — if any
            # — has been or will be observed; losing this race only means
            # failing an already-resolved request id, which _resolve
            # ignores.)
            handle.dead = True
            self._fail_shard_pending(
                handle,
                f"shard {handle.shard_id} worker died (exit code "
                f"{handle.process.exitcode}) with requests in flight",
            )

    def _fail_shard_pending(self, handle: _ShardHandle, reason: str) -> None:
        with self._room:
            doomed = [
                (request_id, future)
                for request_id, (future, shard_id, _) in self._pending.items()
                if shard_id == handle.shard_id
            ]
            for request_id, _ in doomed:
                del self._pending[request_id]
            handle.inflight = 0
            self._room.notify_all()
        for _, future in doomed:
            if not future.done():
                future.set_exception(
                    ShardError(reason, shard_id=handle.shard_id)
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self, timeout: float = 30.0) -> Dict[str, Any]:
        """Live cluster snapshot: per-shard + merged + router-side view.

        Shards whose worker is dead (or that miss the timeout) are
        reported under ``unresponsive`` instead of blocking the rest.
        """
        waiters: List["tuple[int, Future]"] = []
        with self._room:
            if self._closed:
                raise ServiceClosed("shard router is closed")
            live = [
                handle
                for handle in self._handles
                if not handle.dead and not handle.exited.is_set()
            ]
            for handle in live:
                request_id = self._next_request_id
                self._next_request_id += 1
                waiter: Future = Future()
                self._snapshot_waiters[request_id] = waiter
                waiters.append((request_id, waiter))
        for handle, (request_id, _) in zip(live, waiters):
            handle.request_queue.put(SnapshotCommand(request_id))
        per_shard: Dict[int, Dict[str, Any]] = {}
        unresponsive: List[int] = []
        deadline = time.monotonic() + timeout
        for handle, (request_id, waiter) in zip(live, waiters):
            remaining = max(0.0, deadline - time.monotonic())
            try:
                shard_id, shard_snapshot = waiter.result(timeout=remaining)
            except FutureTimeout:
                with self._room:
                    self._snapshot_waiters.pop(request_id, None)
                unresponsive.append(handle.shard_id)
            else:
                per_shard[shard_id] = shard_snapshot
        return self._assemble_snapshot(per_shard, unresponsive)

    def _assemble_snapshot(
        self,
        per_shard: Dict[int, Dict[str, Any]],
        unresponsive: List[int],
    ) -> Dict[str, Any]:
        with self._room:
            router = {
                "shards": self.shards,
                "routing_cache": {
                    "hits": self._route_hits,
                    "misses": self._route_misses,
                    "size": len(self._routes),
                    "capacity": _ROUTE_CACHE_CAPACITY,
                },
                "per_shard": {
                    handle.shard_id: {
                        "pid": handle.pid,
                        "dispatched": handle.dispatched,
                        "inflight": handle.inflight,
                        "peak_inflight": handle.peak_inflight,
                        "max_inflight": self.max_inflight_per_shard,
                        "alive": handle.process.is_alive(),
                    }
                    for handle in self._handles
                },
            }
        return {
            "router": router,
            "shards": {
                shard_id: per_shard[shard_id]
                for shard_id in sorted(per_shard)
            },
            "cache_hit_rates": shard_cache_hit_rates(per_shard),
            "merged": merge_metric_snapshots(
                [per_shard[s] for s in sorted(per_shard)]
            ),
            "unresponsive": unresponsive,
        }

    def render_prometheus(self) -> str:
        """One Prometheus exposition merged from every shard's registry.

        Uses the most recent registry export from each shard (refreshed
        by :meth:`snapshot` and finalized by :meth:`drain`).
        """
        with self._room:
            exports = [
                self._registry_exports[shard_id]
                for shard_id in sorted(self._registry_exports)
            ]
        return render_prometheus(merge_registry_exports(exports))

    def client_latencies(self) -> List[float]:
        """Router-observed seconds from dispatch to response, per query."""
        with self._room:
            return list(self._latencies)

    def saturation(self) -> float:
        """Peak per-shard inflight as a fraction of the per-shard bound."""
        with self._room:
            peak = max(
                (handle.peak_inflight for handle in self._handles),
                default=0,
            )
        return peak / self.max_inflight_per_shard

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def drain(self, grace_seconds: Optional[float] = None) -> bool:
        """Cross-shard graceful shutdown.

        Stops admitting, broadcasts :class:`DrainCommand` to every live
        shard (each drains its own service: queued queries cancel,
        in-flight queries abort at their next cooperative checkpoint,
        every outstanding request gets an explicit response), collects the
        final :class:`WorkerExit` messages, kills any straggler past the
        grace period, and fails whatever futures still dangle with
        :class:`~repro.errors.ShardError`.

        Returns:
            True when every shard drained cleanly (worker reported a
            clean drain, exited by itself, and left no dangling futures).
        """
        with self._room:
            if self._drained is not None:
                return self._drained
            self._closed = True
            self._room.notify_all()
        for handle in self._handles:
            if not handle.dead:
                handle.request_queue.put(
                    DrainCommand(grace_seconds=grace_seconds)
                )
        budget = (grace_seconds or 0.0) + _DRAIN_MARGIN
        deadline = time.monotonic() + budget
        clean = True
        for handle in self._handles:
            remaining = max(0.0, deadline - time.monotonic())
            if handle.dead:
                clean = False
                continue
            if not handle.exited.wait(timeout=remaining):
                clean = False
            handle.process.join(
                timeout=max(0.0, deadline - time.monotonic()) + 1.0
            )
            if handle.process.is_alive():
                # SIGTERM is ignored by workers by design; escalate.
                handle.process.kill()
                handle.process.join(timeout=5.0)
                clean = False
            if handle.exit is not None and not handle.exit.drained:
                clean = False
        # The collector saw every WorkerExit that will ever arrive.
        self._stop_collector.set()
        self._collector.join(timeout=5.0)
        with self._room:
            dangling = list(self._pending.values())
            self._pending.clear()
            for handle in self._handles:
                handle.inflight = 0
        if dangling:
            clean = False
        for future, shard_id, _ in dangling:
            if not future.done():
                future.set_exception(
                    ShardError(
                        f"query abandoned: shard {shard_id} did not "
                        f"respond before drain completed",
                        shard_id=shard_id,
                    )
                )
        for handle in self._handles:
            handle.request_queue.close()
            handle.request_queue.cancel_join_thread()
        self._response_queue.close()
        self._response_queue.cancel_join_thread()
        self._drained = clean
        return clean

    def close(self) -> None:
        """Alias for :meth:`drain` with no grace bound override."""
        self.drain()

    # ------------------------------------------------------------------
    # Post-drain aggregation
    # ------------------------------------------------------------------

    def worker_exits(self) -> Dict[int, WorkerExit]:
        """Per-shard final state (only populated after :meth:`drain`)."""
        return {
            handle.shard_id: handle.exit
            for handle in self._handles
            if handle.exit is not None
        }

    def final_snapshot(self) -> Dict[str, Any]:
        """The post-drain cluster snapshot (merged from worker exits)."""
        exits = self.worker_exits()
        per_shard = {
            shard_id: exit_.snapshot for shard_id, exit_ in exits.items()
        }
        return self._assemble_snapshot(
            per_shard,
            [
                handle.shard_id
                for handle in self._handles
                if handle.exit is None
            ],
        )

    def span_records(self) -> List[Dict[str, Any]]:
        """Merged, shard-tagged span records from every worker's tracer."""
        return merge_span_records(
            {
                shard_id: exit_.span_records
                for shard_id, exit_ in self.worker_exits().items()
            }
        )

    def spans_dropped(self) -> int:
        return sum(
            exit_.spans_dropped for exit_ in self.worker_exits().values()
        )

    def open_spans(self) -> int:
        return sum(
            exit_.open_spans for exit_ in self.worker_exits().values()
        )

    def lock_violations(self) -> Dict[int, str]:
        """Shard id → witnessed lock-order cycle (empty when clean)."""
        return {
            shard_id: exit_.lock_violation
            for shard_id, exit_ in self.worker_exits().items()
            if exit_.lock_violation
        }

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Multi-process sharded serving for the structural optimizer.

``repro.shard`` scales the single-process :class:`QueryService` across N
deterministic worker processes:

* :mod:`repro.shard.hashring` — consistent hashing of canonical template
  fingerprints to shards (template affinity: isomorphic queries share a
  shard, so each shard's plan cache stays small and hot);
* :mod:`repro.shard.messages` — the picklable wire protocol and the
  typed-error codec across the process boundary;
* :mod:`repro.shard.worker` — the worker process: one
  :class:`~repro.service.server.QueryService` (own plan cache, metrics,
  tracer, fault injector) behind a request/response queue pair;
* :mod:`repro.shard.router` — :class:`ShardRouter`: spawn, route,
  multiplex, watch liveness, drain gracefully;
* :mod:`repro.shard.supervisor` — :class:`ShardSupervisor`: self-healing
  (seeded restarts with jittered backoff and a per-shard breaker, ring
  failover, deadline-aware retries of crash-stranded queries);
* :mod:`repro.shard.frontdoor` — :class:`AsyncFrontDoor`: an asyncio
  submission front with per-shard backpressure;
* :mod:`repro.shard.aggregate` — merging per-shard metric snapshots and
  span records into one validated cluster view.
"""

from repro.shard.aggregate import (
    SPAN_ID_STRIDE,
    merge_metric_snapshots,
    merge_registry_exports,
    merge_span_records,
    registry_export,
    render_prometheus,
    shard_cache_hit_rates,
)
from repro.shard.frontdoor import AsyncFrontDoor
from repro.shard.hashring import ConsistentHashRing
from repro.shard.messages import (
    DrainCommand,
    QueryAnswer,
    QueryFailure,
    QueryRequest,
    RestartEvent,
    SnapshotCommand,
    SnapshotReply,
    WorkerExit,
    WorkerReady,
    decode_error,
    encode_error,
)
from repro.shard.router import ShardRouter
from repro.shard.supervisor import ShardSupervisor, SupervisorPolicy
from repro.shard.worker import ShardConfig, shard_worker_main

__all__ = [
    "SPAN_ID_STRIDE",
    "AsyncFrontDoor",
    "ConsistentHashRing",
    "DrainCommand",
    "QueryAnswer",
    "QueryFailure",
    "QueryRequest",
    "RestartEvent",
    "ShardConfig",
    "ShardRouter",
    "ShardSupervisor",
    "SnapshotCommand",
    "SnapshotReply",
    "SupervisorPolicy",
    "WorkerExit",
    "WorkerReady",
    "decode_error",
    "encode_error",
    "merge_metric_snapshots",
    "merge_registry_exports",
    "merge_span_records",
    "registry_export",
    "render_prometheus",
    "shard_cache_hit_rates",
    "shard_worker_main",
]

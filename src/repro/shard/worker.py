"""The shard worker process: one :class:`QueryService` behind two queues.

Each worker is spawned (never forked — a fresh interpreter, no inherited
locks or thread state), receives its :class:`ShardConfig` pickled through
the process arguments, builds its own deterministic world — database,
:class:`~repro.service.server.QueryService`, plan cache, metrics registry,
per-shard :class:`~repro.resilience.faults.FaultInjector` seeded
``seed + shard_id``, and (optionally) a
:class:`~repro.obs.tracing.Tracer` — then serves a simple loop:

* :class:`~repro.shard.messages.QueryRequest` → submitted to the shard's
  own executor pool (intra-shard concurrency), the outcome posted back as
  :class:`~repro.shard.messages.QueryAnswer` or
  :class:`~repro.shard.messages.QueryFailure`;
* :class:`~repro.shard.messages.SnapshotCommand` → the service snapshot;
* :class:`~repro.shard.messages.DrainCommand` → graceful shutdown: the
  service drains (queued queries cancel, in-flight queries abort at their
  next cooperative checkpoint), a response is flushed for every
  outstanding request, and the final metrics + span records leave in a
  :class:`~repro.shard.messages.WorkerExit` before the process ends.

Workers ignore SIGINT/SIGTERM: shutdown is *coordinated* by the router
(terminal signals hit the whole foreground process group, and a worker
dying mid-protocol would strand in-flight futures), and a worker that
outlives the grace period is killed hard by the router.
"""

from __future__ import annotations

import os
import signal
import threading
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.lockwitness import make_lock
from repro.errors import QueryCancelled, ReproError
from repro.relational.database import Database
from repro.shard.aggregate import registry_export
from repro.shard.messages import (
    DrainCommand,
    QueryAnswer,
    QueryFailure,
    QueryRequest,
    SnapshotCommand,
    SnapshotReply,
    WorkerExit,
    WorkerReady,
    encode_error,
)

#: How long the exit path waits for the last response callbacks after the
#: service itself has drained (they only have to enqueue a message).
_FLUSH_TIMEOUT = 10.0


@dataclass
class ShardConfig:
    """Everything a worker needs to rebuild its serving world, picklable.

    One config is shared by every shard of a cluster; the only per-shard
    variation is derived deterministically from ``shard_id`` (the fault
    injector's seed), so a cluster is reproducible end to end.

    Attributes mirror :class:`~repro.service.server.QueryService` plus:

    Attributes:
        database: the (pickled) database every shard serves.
        profile: the simulated-engine profile.
        fault_spec: fault-injection spec string (chaos testing); each
            shard runs its own injector seeded ``seed + shard_id``.
        seed: base seed for per-shard derived randomness.
        trace: run a per-shard tracer; span records are shipped back on
            exit for cross-shard merging.
        trace_max_spans: the shard tracer's retention cap.
        insights: run a per-shard
            :class:`~repro.obs.insights.registry.InsightsRegistry`; its
            snapshot rides inside the service snapshot (the ``insights``
            key) and merges exactly in
            :func:`~repro.shard.aggregate.merge_metric_snapshots`.
    """

    database: Database
    profile: object = None
    max_width: int = 4
    workers: int = 4
    queue_capacity: int = 64
    cache_capacity: int = 128
    cache_ttl_seconds: Optional[float] = None
    work_budget: Optional[int] = None
    fallback_to_builtin: bool = True
    optimize: bool = True
    deadline_seconds: Optional[float] = None
    memory_budget_cells: Optional[int] = None
    max_intermediate_rows: Optional[int] = None
    fault_spec: Optional[str] = None
    seed: int = 0
    parallel_workers: int = 0
    trace: bool = False
    trace_max_spans: int = 100_000
    insights: bool = False
    extra: Dict[str, object] = field(default_factory=dict)


class _InflightTable:
    """Request-id → future bookkeeping shared by the loop and callbacks."""

    def __init__(self) -> None:
        self._lock = make_lock("ShardWorker._inflight")
        self._cond = threading.Condition(self._lock)
        self._futures: Dict[int, Future] = {}

    def add(self, request_id: int, future: Future) -> None:
        with self._cond:
            self._futures[request_id] = future

    def remove(self, request_id: int) -> None:
        with self._cond:
            self._futures.pop(request_id, None)
            if not self._futures:
                self._cond.notify_all()

    def wait_empty(self, timeout: float) -> bool:
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._futures, timeout=timeout
            )


def _answer_from_result(request_id: int, shard_id: int, result) -> QueryAnswer:
    relation = result.relation
    return QueryAnswer(
        request_id=request_id,
        shard_id=shard_id,
        attributes=tuple(relation.attributes) if relation is not None else (),
        tuples=list(relation.tuples) if relation is not None else [],
        work=result.work,
        simulated_seconds=result.simulated_seconds,
        elapsed_seconds=result.elapsed_seconds,
        finished=result.finished,
        used_statistics=result.used_statistics,
        optimizer=result.optimizer,
        work_breakdown=dict(result.work_breakdown),
    )


def shard_worker_main(
    shard_id: int,
    config: ShardConfig,
    request_queue,
    response_queue,
    incarnation: int = 0,
) -> None:
    """Entry point of a shard worker process (spawn target).

    ``incarnation`` is 0 for the original process and increments on
    every supervised restart.  The serving world is rebuilt from the
    *same* config either way — all per-shard randomness derives from
    ``config.seed + shard_id`` — so a restarted shard is
    deterministically identical to its predecessor.
    """
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    from repro.engine.dbms import COMMDB_PROFILE, SimulatedDBMS
    from repro.obs.tracing import Tracer, set_tracer
    from repro.resilience.faults import FaultInjector
    from repro.service.server import QueryService

    tracer = None
    if config.trace:
        tracer = Tracer(max_spans=config.trace_max_spans)
        set_tracer(tracer)

    injector = (
        FaultInjector(config.fault_spec, seed=config.seed + shard_id)
        if config.fault_spec
        else None
    )
    insights = None
    if config.insights:
        from repro.obs.insights.registry import InsightsRegistry

        insights = InsightsRegistry()
    profile = config.profile if config.profile is not None else COMMDB_PROFILE
    service = QueryService(
        SimulatedDBMS(config.database, profile),
        max_width=config.max_width,
        workers=config.workers,
        queue_capacity=config.queue_capacity,
        cache_capacity=config.cache_capacity,
        cache_ttl_seconds=config.cache_ttl_seconds,
        work_budget=config.work_budget,
        fallback_to_builtin=config.fallback_to_builtin,
        optimize=config.optimize,
        deadline_seconds=config.deadline_seconds,
        memory_budget_cells=config.memory_budget_cells,
        max_intermediate_rows=config.max_intermediate_rows,
        fault_injector=injector,
        parallel_workers=config.parallel_workers,
        insights=insights,
    )
    inflight = _InflightTable()

    def finish(request_id: int, future: Future) -> None:
        """Done-callback (runs on a pool worker thread): post the outcome."""
        try:
            try:
                result = future.result()
            except CancelledError:
                # Queued but never started: the drain cancelled it.
                exc = QueryCancelled("shard draining", site="shard.queue")
                response_queue.put(
                    QueryFailure(request_id, shard_id, *encode_error(exc))
                )
            except BaseException as exc:  # hdqo: ignore[error-swallowing] — delivered as a typed QueryFailure response
                response_queue.put(
                    QueryFailure(request_id, shard_id, *encode_error(exc))
                )
            else:
                response_queue.put(
                    _answer_from_result(request_id, shard_id, result)
                )
        finally:
            inflight.remove(request_id)

    response_queue.put(
        WorkerReady(
            shard_id=shard_id, pid=os.getpid(), incarnation=incarnation
        )
    )

    grace: Optional[float] = None
    while True:
        message = request_queue.get()
        if isinstance(message, QueryRequest):
            try:
                future = service.submit(
                    message.sql,
                    work_budget=message.work_budget,
                    deadline_seconds=message.deadline_seconds,
                )
            except ReproError as exc:  # overloaded/closed: still explicit
                response_queue.put(
                    QueryFailure(
                        message.request_id, shard_id, *encode_error(exc)
                    )
                )
                continue
            request_id = message.request_id
            inflight.add(request_id, future)
            future.add_done_callback(
                lambda fut, request_id=request_id: finish(request_id, fut)
            )
        elif isinstance(message, SnapshotCommand):
            response_queue.put(
                SnapshotReply(
                    message.request_id,
                    shard_id,
                    service.snapshot(),
                    registry=registry_export(service.metrics.registry),
                )
            )
        elif isinstance(message, DrainCommand):
            grace = message.grace_seconds
            break
        # Unknown message types are dropped: a router newer than this
        # worker must not wedge it.

    # -- graceful exit ---------------------------------------------------
    drained = service.drain(grace_seconds=grace)
    # The drain cancelled/aborted everything; callbacks only need to flush
    # their response messages.
    flushed = inflight.wait_empty(timeout=_FLUSH_TIMEOUT)

    span_records = []
    spans_dropped = 0
    open_spans = 0
    if tracer is not None:
        span_records = tracer.to_records()
        spans_dropped = tracer.dropped
        open_spans = tracer.open_spans

    lock_violation = None
    from repro.analysis.lockwitness import GLOBAL_WITNESS, lockcheck_enabled

    if lockcheck_enabled():
        violations = GLOBAL_WITNESS.violations
        if violations:
            lock_violation = str(violations[0])

    response_queue.put(
        WorkerExit(
            shard_id=shard_id,
            drained=drained and flushed,
            snapshot=service.snapshot(),
            registry=registry_export(service.metrics.registry),
            span_records=span_records,
            spans_dropped=spans_dropped,
            open_spans=open_spans,
            lock_violation=lock_violation,
            incarnation=incarnation,
        )
    )
    # Let the feeder thread flush the exit message before the process ends.
    response_queue.close()
    response_queue.join_thread()

"""The sharding wire protocol: picklable messages and the error codec.

Everything that crosses the process boundary between the
:class:`~repro.shard.router.ShardRouter` and its workers is one of the
small dataclasses here — no live objects (services, relations, futures)
ever cross, only plain data.  Two conversions make the boundary
transparent to callers:

* **results** travel as :class:`QueryAnswer` (attribute names + tuples +
  the deterministic counters) and are rebuilt into a real
  :class:`~repro.engine.dbms.DBMSResult` on the router side, so a sharded
  answer is byte-identical — rows *and* order — to a single-process one;
* **errors** travel as :class:`QueryFailure` through
  :func:`encode_error`/:func:`decode_error`, which reconstruct the typed
  :class:`~repro.errors.ReproError` subclasses (their constructors take
  structured arguments, so naive exception pickling would break).  An
  error type the codec does not know degrades to :class:`ShardError`
  carrying the original type name — still explicit, still typed.

Deadlines do not pickle as absolute times: monotonic clocks are
per-process, so a deadline crosses the boundary as *remaining seconds*
(:attr:`QueryRequest.deadline_seconds`), re-anchored by the worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import errors as errors_module
from repro.errors import ReproError, ShardError


# ---------------------------------------------------------------------------
# Requests (router -> worker)
# ---------------------------------------------------------------------------


@dataclass
class QueryRequest:
    """One query dispatched to a shard.

    Attributes:
        request_id: router-unique id the response echoes back.
        sql: the SQL text to execute.
        work_budget: per-query work-unit budget (None = service default).
        deadline_seconds: *remaining* wall-clock budget at dispatch time;
            the worker re-anchors it on its own monotonic clock (this is
            how deadlines propagate across the process boundary — queue
            wait on the router side has already been subtracted).
    """

    request_id: int
    sql: str
    work_budget: Optional[int] = None
    deadline_seconds: Optional[float] = None


@dataclass
class SnapshotCommand:
    """Ask a shard for its current metrics/cache snapshot."""

    request_id: int


@dataclass
class DrainCommand:
    """Graceful shutdown: drain the shard's service and exit.

    The worker stops admitting, cancels queued queries, lets in-flight
    queries abort at their next cooperative checkpoint, flushes a
    response for every outstanding request, and replies with
    :class:`WorkerExit` before its process ends.
    """

    grace_seconds: Optional[float] = None


# ---------------------------------------------------------------------------
# Responses (worker -> router)
# ---------------------------------------------------------------------------


@dataclass
class WorkerReady:
    """Sent once by each worker after its service is built and serving."""

    shard_id: int
    pid: int


@dataclass
class QueryAnswer:
    """A finished (or DNF) query result in plain-data form."""

    request_id: int
    shard_id: int
    attributes: Tuple[str, ...]
    tuples: List[Tuple[object, ...]]
    work: int
    simulated_seconds: float
    elapsed_seconds: float
    finished: bool
    used_statistics: bool
    optimizer: str
    work_breakdown: Dict[str, int] = field(default_factory=dict)

    def to_result(self) -> "Any":
        """Rebuild the :class:`~repro.engine.dbms.DBMSResult` callers expect."""
        from repro.engine.dbms import DBMSResult
        from repro.relational.relation import Relation

        relation = (
            Relation(self.attributes, self.tuples)
            if self.finished
            else None
        )
        return DBMSResult(
            relation=relation,
            answer=relation,
            work=self.work,
            simulated_seconds=self.simulated_seconds,
            elapsed_seconds=self.elapsed_seconds,
            plan_text=f"(executed on shard {self.shard_id})",
            finished=self.finished,
            used_statistics=self.used_statistics,
            optimizer=self.optimizer,
            work_breakdown=dict(self.work_breakdown),
        )


@dataclass
class QueryFailure:
    """A typed error outcome, encoded for reconstruction on the router."""

    request_id: int
    shard_id: int
    error_type: str
    message: str
    details: Dict[str, object] = field(default_factory=dict)

    def to_error(self) -> ReproError:
        return decode_error(self.error_type, self.message, self.details)


@dataclass
class SnapshotReply:
    """A shard's metrics snapshot (see :meth:`QueryService.snapshot`).

    Attributes:
        registry: the shard's kind-tagged Prometheus registry export
            (:func:`repro.shard.aggregate.registry_export`), merged by
            the router into one cluster exposition.
    """

    request_id: int
    shard_id: int
    snapshot: Dict[str, object]
    registry: Dict[str, object] = field(default_factory=dict)


@dataclass
class WorkerExit:
    """The worker's last message: final state for cross-shard aggregation.

    Attributes:
        shard_id: which shard exited.
        drained: every worker thread finished within the grace period.
        snapshot: final metrics/cache snapshot.
        registry: the shard's kind-tagged Prometheus registry export
            (:func:`repro.shard.aggregate.registry_export`).
        span_records: the shard tracer's exported span records (empty when
            tracing was off).
        spans_dropped: spans lost to the tracer's retention cap.
        open_spans: spans still open at exit (0 on a clean drain).
        lock_violation: a witnessed lock-order cycle rendered as text, or
            None — workers run their own
            :class:`~repro.analysis.lockwitness.LockWitness` under
            ``HDQO_LOCKCHECK=1`` and report rather than die.
    """

    shard_id: int
    drained: bool
    snapshot: Dict[str, object]
    registry: Dict[str, object] = field(default_factory=dict)
    span_records: List[Dict[str, object]] = field(default_factory=list)
    spans_dropped: int = 0
    open_spans: int = 0
    lock_violation: Optional[str] = None


# ---------------------------------------------------------------------------
# Error codec
# ---------------------------------------------------------------------------

#: Attributes worth carrying across the boundary, per error type.  The
#: decoder passes them straight back to the constructor, so each tuple
#: must match the constructor's signature (checked by tests).
_ERROR_FIELDS: Dict[str, Tuple[str, ...]] = {
    "WorkBudgetExceeded": ("budget", "spent", "phase"),
    "DeadlineExceeded": ("deadline_seconds", "elapsed_seconds", "site"),
    "QueryCancelled": ("reason", "site"),
    "MemoryBudgetExceeded": (
        "site", "rows", "row_width", "cells", "budget_cells", "max_rows"
    ),
    "InjectedFault": ("site",),
    "ServiceOverloaded": ("queued", "capacity"),
    "SqlSyntaxError": ("args0", "position"),
    "DecompositionNotFound": ("args0", "width"),
}

#: Error types whose constructor takes just a message string.
_MESSAGE_ONLY = frozenset({
    "ReproError", "HypergraphError", "QueryError", "SchemaError",
    "ExecutionError", "DecompositionError", "OptimizationError",
    "ServiceError", "ServiceClosed", "ShardError",
})


def encode_error(exc: BaseException) -> Tuple[str, str, Dict[str, object]]:
    """``(type_name, message, details)`` for a :class:`QueryFailure`."""
    name = type(exc).__name__
    details: Dict[str, object] = {}
    for attr in _ERROR_FIELDS.get(name, ()):
        if attr == "args0":
            details[attr] = str(exc.args[0]) if exc.args else str(exc)
        else:
            details[attr] = getattr(exc, attr, None)
    return name, str(exc), details


def decode_error(
    error_type: str, message: str, details: Dict[str, object]
) -> ReproError:
    """Rebuild the typed error; unknown types become :class:`ShardError`."""
    cls = getattr(errors_module, error_type, None)
    if cls is not None and isinstance(cls, type) and issubclass(cls, ReproError):
        fields = _ERROR_FIELDS.get(error_type)
        try:
            if fields is not None:
                args = [details.get(attr) for attr in fields]
                return cls(*args)
            if error_type in _MESSAGE_ONLY:
                return cls(message)
        except TypeError:
            pass  # constructor drifted; fall through to the generic carrier
    return ShardError(message, original_type=error_type)

"""The sharding wire protocol: picklable messages and the error codec.

Everything that crosses the process boundary between the
:class:`~repro.shard.router.ShardRouter` and its workers is one of the
small dataclasses here — no live objects (services, relations, futures)
ever cross, only plain data.  Two conversions make the boundary
transparent to callers:

* **results** travel as :class:`QueryAnswer` (attribute names + tuples +
  the deterministic counters) and are rebuilt into a real
  :class:`~repro.engine.dbms.DBMSResult` on the router side, so a sharded
  answer is byte-identical — rows *and* order — to a single-process one;
* **errors** travel as :class:`QueryFailure` through
  :func:`encode_error`/:func:`decode_error`, which reconstruct the typed
  :class:`~repro.errors.ReproError` subclasses (their constructors take
  structured arguments, so naive exception pickling would break).  An
  error type the codec does not know degrades to :class:`ShardError`
  carrying the original type name — still explicit, still typed.

Deadlines do not pickle as absolute times: monotonic clocks are
per-process, so a deadline crosses the boundary as *remaining seconds*
(:attr:`QueryRequest.deadline_seconds`), re-anchored by the worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import errors as errors_module
from repro.errors import ReproError, ShardError


# ---------------------------------------------------------------------------
# Requests (router -> worker)
# ---------------------------------------------------------------------------


@dataclass
class QueryRequest:
    """One query dispatched to a shard.

    Attributes:
        request_id: router-unique id the response echoes back.
        sql: the SQL text to execute.
        work_budget: per-query work-unit budget (None = service default).
        deadline_seconds: *remaining* wall-clock budget at dispatch time;
            the worker re-anchors it on its own monotonic clock (this is
            how deadlines propagate across the process boundary — queue
            wait on the router side has already been subtracted).
    """

    request_id: int
    sql: str
    work_budget: Optional[int] = None
    deadline_seconds: Optional[float] = None


@dataclass
class SnapshotCommand:
    """Ask a shard for its current metrics/cache snapshot."""

    request_id: int


@dataclass
class DrainCommand:
    """Graceful shutdown: drain the shard's service and exit.

    The worker stops admitting, cancels queued queries, lets in-flight
    queries abort at their next cooperative checkpoint, flushes a
    response for every outstanding request, and replies with
    :class:`WorkerExit` before its process ends.
    """

    grace_seconds: Optional[float] = None


# ---------------------------------------------------------------------------
# Responses (worker -> router)
# ---------------------------------------------------------------------------


@dataclass
class WorkerReady:
    """Sent once by each worker after its service is built and serving.

    ``incarnation`` distinguishes supervised restarts of the same shard:
    the router ignores ready messages from incarnations it no longer
    tracks (a worker that managed to announce itself just before dying).
    """

    shard_id: int
    pid: int
    incarnation: int = 0


@dataclass
class QueryAnswer:
    """A finished (or DNF) query result in plain-data form."""

    request_id: int
    shard_id: int
    attributes: Tuple[str, ...]
    tuples: List[Tuple[object, ...]]
    work: int
    simulated_seconds: float
    elapsed_seconds: float
    finished: bool
    used_statistics: bool
    optimizer: str
    work_breakdown: Dict[str, int] = field(default_factory=dict)

    def to_result(self) -> "Any":
        """Rebuild the :class:`~repro.engine.dbms.DBMSResult` callers expect."""
        from repro.engine.dbms import DBMSResult
        from repro.relational.relation import Relation

        relation = (
            Relation(self.attributes, self.tuples)
            if self.finished
            else None
        )
        return DBMSResult(
            relation=relation,
            answer=relation,
            work=self.work,
            simulated_seconds=self.simulated_seconds,
            elapsed_seconds=self.elapsed_seconds,
            plan_text=f"(executed on shard {self.shard_id})",
            finished=self.finished,
            used_statistics=self.used_statistics,
            optimizer=self.optimizer,
            work_breakdown=dict(self.work_breakdown),
        )


@dataclass
class QueryFailure:
    """A typed error outcome, encoded for reconstruction on the router."""

    request_id: int
    shard_id: int
    error_type: str
    message: str
    details: Dict[str, object] = field(default_factory=dict)

    def to_error(self) -> ReproError:
        return decode_error(self.error_type, self.message, self.details)


@dataclass
class SnapshotReply:
    """A shard's metrics snapshot (see :meth:`QueryService.snapshot`).

    Attributes:
        registry: the shard's kind-tagged Prometheus registry export
            (:func:`repro.shard.aggregate.registry_export`), merged by
            the router into one cluster exposition.
    """

    request_id: int
    shard_id: int
    snapshot: Dict[str, object]
    registry: Dict[str, object] = field(default_factory=dict)


@dataclass
class RestartEvent:
    """One supervision transition of a shard worker, in plain-data form.

    The supervisor records these for the cluster slow log and the
    ``supervisor`` section of the router snapshot; :meth:`to_entry` /
    :meth:`from_entry` give the record a stable dict form (the shape that
    crosses snapshot-merge boundaries), mirroring the error codec's
    round-trip discipline.

    Attributes:
        shard_id: which shard the event concerns.
        kind: ``"worker-death"``, ``"restart-scheduled"``,
            ``"worker-restarted"``, ``"shard-recovered"``, or
            ``"breaker-open"``.
        incarnation: the worker incarnation the event applies to
            (0 = the original process; each restart increments it).
        attempt: consecutive restart attempt number since the shard was
            last healthy (0 when not a restart event).
        exitcode: the dead process's exit code, when known.
        backoff_seconds: the jittered backoff chosen before the restart
            (0.0 when not a restart event).
        inflight_lost: in-flight queries stranded by a death.
    """

    shard_id: int
    kind: str
    incarnation: int = 0
    attempt: int = 0
    exitcode: Optional[int] = None
    backoff_seconds: float = 0.0
    inflight_lost: int = 0

    def to_entry(self) -> Dict[str, object]:
        """The stable dict form used in slow-log events and snapshots."""
        return {
            "shard_id": self.shard_id,
            "kind": self.kind,
            "incarnation": self.incarnation,
            "attempt": self.attempt,
            "exitcode": self.exitcode,
            "backoff_seconds": self.backoff_seconds,
            "inflight_lost": self.inflight_lost,
        }

    @classmethod
    def from_entry(cls, entry: Dict[str, object]) -> "RestartEvent":
        """Rebuild an event from :meth:`to_entry`'s dict (round-trips)."""
        return cls(
            shard_id=int(entry["shard_id"]),  # type: ignore[arg-type]
            kind=str(entry["kind"]),
            incarnation=int(entry.get("incarnation", 0)),  # type: ignore[arg-type]
            attempt=int(entry.get("attempt", 0)),  # type: ignore[arg-type]
            exitcode=(
                None
                if entry.get("exitcode") is None
                else int(entry["exitcode"])  # type: ignore[arg-type]
            ),
            backoff_seconds=float(
                entry.get("backoff_seconds", 0.0)  # type: ignore[arg-type]
            ),
            inflight_lost=int(
                entry.get("inflight_lost", 0)  # type: ignore[arg-type]
            ),
        )


@dataclass
class WorkerExit:
    """The worker's last message: final state for cross-shard aggregation.

    Attributes:
        shard_id: which shard exited.
        drained: every worker thread finished within the grace period.
        snapshot: final metrics/cache snapshot.
        registry: the shard's kind-tagged Prometheus registry export
            (:func:`repro.shard.aggregate.registry_export`).
        span_records: the shard tracer's exported span records (empty when
            tracing was off).
        spans_dropped: spans lost to the tracer's retention cap.
        open_spans: spans still open at exit (0 on a clean drain).
        lock_violation: a witnessed lock-order cycle rendered as text, or
            None — workers run their own
            :class:`~repro.analysis.lockwitness.LockWitness` under
            ``HDQO_LOCKCHECK=1`` and report rather than die.
        incarnation: which supervised incarnation of the shard exited.
    """

    shard_id: int
    drained: bool
    snapshot: Dict[str, object]
    registry: Dict[str, object] = field(default_factory=dict)
    span_records: List[Dict[str, object]] = field(default_factory=list)
    spans_dropped: int = 0
    open_spans: int = 0
    lock_violation: Optional[str] = None
    incarnation: int = 0


# ---------------------------------------------------------------------------
# Error codec
# ---------------------------------------------------------------------------

#: Attributes worth carrying across the boundary, per error type.  The
#: decoder passes them straight back to the constructor, so each tuple
#: must match the constructor's signature (checked by tests).
_ERROR_FIELDS: Dict[str, Tuple[str, ...]] = {
    "WorkBudgetExceeded": ("budget", "spent", "phase"),
    "DeadlineExceeded": ("deadline_seconds", "elapsed_seconds", "site"),
    "QueryCancelled": ("reason", "site"),
    "MemoryBudgetExceeded": (
        "site", "rows", "row_width", "cells", "budget_cells", "max_rows"
    ),
    "InjectedFault": ("site",),
    "ServiceOverloaded": ("queued", "capacity"),
    "SqlSyntaxError": ("args0", "position"),
    "DecompositionNotFound": ("args0", "width"),
    "ShardError": ("args0", "original_type", "shard_id"),
    "ShardUnavailable": ("args0", "shard_id", "attempts", "reason"),
    "LockOrderViolation": ("cycle",),
}

#: Error types whose constructor takes just a message string.
_MESSAGE_ONLY = frozenset({
    "ReproError", "HypergraphError", "QueryError", "SchemaError",
    "ExecutionError", "DecompositionError", "OptimizationError",
    "ServiceError", "ServiceClosed",
})


def encode_error(exc: BaseException) -> Tuple[str, str, Dict[str, object]]:
    """``(type_name, message, details)`` for a :class:`QueryFailure`."""
    name = type(exc).__name__
    details: Dict[str, object] = {}
    for attr in _ERROR_FIELDS.get(name, ()):
        if attr == "args0":
            details[attr] = str(exc.args[0]) if exc.args else str(exc)
        else:
            details[attr] = getattr(exc, attr, None)
    return name, str(exc), details


def decode_error(
    error_type: str, message: str, details: Dict[str, object]
) -> ReproError:
    """Rebuild the typed error; unknown types become :class:`ShardError`."""
    cls = getattr(errors_module, error_type, None)
    if cls is not None and isinstance(cls, type) and issubclass(cls, ReproError):
        fields = _ERROR_FIELDS.get(error_type)
        try:
            if fields is not None:
                args = [details.get(attr) for attr in fields]
                return cls(*args)
            if error_type in _MESSAGE_ONLY:
                return cls(message)
        except TypeError:
            pass  # constructor drifted; fall through to the generic carrier
    return ShardError(message, original_type=error_type)

"""``AsyncFrontDoor``: an asyncio multiplexer over the shard router.

The router's :meth:`~repro.shard.router.ShardRouter.submit` is a
*blocking* entry point (it waits for per-shard room on a condition
variable), which is the wrong shape for an event-loop server.  The front
door gives the cluster an async face with explicit, per-shard
backpressure:

* every submission is routed first, then enqueued on its **own shard's**
  bounded :class:`asyncio.Queue` — a hot shard exerts backpressure on
  its own callers (``await`` in :meth:`submit`, immediate
  :class:`~repro.errors.ServiceOverloaded` in :meth:`submit_nowait`)
  without stalling traffic for cold shards;
* one dispatcher task per shard forwards submissions to the router,
  holding a per-shard semaphore sized to the router's own in-flight
  bound — so the blocking ``router.submit`` never actually blocks and
  the event loop stays responsive;
* **deadlines keep ticking in the queue**: the wall-clock budget is
  decremented by the time spent waiting for a dispatcher, and a
  submission that expires before dispatch fails with
  :class:`~repro.errors.DeadlineExceeded` at site ``shard.frontdoor``
  instead of wasting a worker on an already-dead query;
* completions are relayed from the router's collector thread back onto
  the event loop with ``call_soon_threadsafe`` — no thread ever touches
  an asyncio future directly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import (
    DeadlineExceeded,
    QueryCancelled,
    ReproError,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.shard.router import ShardRouter

#: Sentinel closing a dispatcher loop.
_CLOSE = object()


@dataclass
class _Submission:
    sql: str
    work_budget: Optional[int]
    deadline_seconds: Optional[float]
    enqueued_at: float
    future: "asyncio.Future" = field(repr=False, default=None)  # type: ignore[assignment]


class AsyncFrontDoor:
    """Async submission front for a :class:`ShardRouter`.

    Use as an async context manager (the dispatcher tasks live on the
    running loop)::

        router = ShardRouter(config, shards=4)
        async with AsyncFrontDoor(router) as door:
            result = await door.submit("SELECT ...")

    Args:
        router: the (already started) shard router.
        queue_depth: per-shard submission queue bound; a full queue makes
            :meth:`submit` await and :meth:`submit_nowait` reject.

    The front door multiplexes; it does not own the router — draining the
    cluster remains the router's job (and should happen *after*
    ``__aexit__``, so queued submissions resolve first).
    """

    def __init__(self, router: ShardRouter, *, queue_depth: int = 64):
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self.router = router
        self.queue_depth = queue_depth
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queues: List["asyncio.Queue"] = []
        self._semaphores: List[asyncio.Semaphore] = []
        self._dispatchers: List["asyncio.Task"] = []
        self._enqueued = [0] * router.shards
        self._expired_in_queue = 0
        self._closed = False

    async def __aenter__(self) -> "AsyncFrontDoor":
        self._loop = asyncio.get_running_loop()
        for shard_id in range(self.router.shards):
            self._queues.append(asyncio.Queue(maxsize=self.queue_depth))
            self._semaphores.append(
                asyncio.Semaphore(self.router.max_inflight_per_shard)
            )
            self._dispatchers.append(
                self._loop.create_task(
                    self._dispatch(shard_id),
                    name=f"hdqo-frontdoor-{shard_id}",
                )
            )
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _make_submission(
        self,
        sql: str,
        work_budget: Optional[int],
        deadline_seconds: Optional[float],
    ) -> "tuple[int, _Submission]":
        if self._loop is None:
            raise RuntimeError(
                "AsyncFrontDoor must be entered (async with) before use"
            )
        if self._closed:
            raise ServiceClosed("front door is closed")
        shard_id = self.router.route(sql)
        submission = _Submission(
            sql=sql,
            work_budget=work_budget,
            deadline_seconds=deadline_seconds,
            enqueued_at=self._loop.time(),
        )
        submission.future = self._loop.create_future()
        return shard_id, submission

    async def submit(
        self,
        sql: str,
        work_budget: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> Any:
        """Route, enqueue (awaiting room — backpressure), and resolve.

        Returns the shard's :class:`~repro.engine.dbms.DBMSResult`;
        raises the worker-side typed error otherwise.
        """
        shard_id, submission = self._make_submission(
            sql, work_budget, deadline_seconds
        )
        await self._queues[shard_id].put(submission)
        self._enqueued[shard_id] += 1
        return await submission.future

    async def submit_nowait(
        self,
        sql: str,
        work_budget: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> Any:
        """Like :meth:`submit`, but reject instead of waiting for room.

        Raises:
            ServiceOverloaded: the target shard's submission queue is
                full — the async analogue of the service's bounded-queue
                admission control.
        """
        shard_id, submission = self._make_submission(
            sql, work_budget, deadline_seconds
        )
        try:
            self._queues[shard_id].put_nowait(submission)
        except asyncio.QueueFull:
            raise ServiceOverloaded(
                queued=self._queues[shard_id].qsize(),
                capacity=self.queue_depth,
            ) from None
        self._enqueued[shard_id] += 1
        return await submission.future

    async def run_all(
        self,
        queries: Sequence[str],
        work_budget: Optional[int] = None,
        return_exceptions: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> "List[Union[Any, Exception]]":
        """Submit a batch concurrently; results in submission order.

        Same contract as :meth:`QueryService.run_all`: with
        ``return_exceptions``, typed library errors come back in place
        of results; :class:`~repro.errors.QueryCancelled` and
        non-library exceptions always propagate.
        """
        outcomes = await asyncio.gather(
            *(
                self.submit(
                    sql,
                    work_budget=work_budget,
                    deadline_seconds=deadline_seconds,
                )
                for sql in queries
            ),
            return_exceptions=True,
        )
        results: "List[Union[Any, Exception]]" = []
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                if (
                    isinstance(outcome, ReproError)
                    and not isinstance(outcome, QueryCancelled)
                    and return_exceptions
                ):
                    results.append(outcome)
                    continue
                raise outcome
            results.append(outcome)
        return results

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, shard_id: int) -> None:
        queue = self._queues[shard_id]
        semaphore = self._semaphores[shard_id]
        while True:
            item = await queue.get()
            if item is _CLOSE:
                return
            # Reject dead items *before* taking a semaphore slot: an
            # expired or abandoned submission must not strand dispatch
            # capacity behind it (the slot would only come back when the
            # collector relayed a completion that will never happen).
            if item.future.done():  # caller gave up while queued
                continue
            if self._expired(item):
                continue
            await semaphore.acquire()
            if item.future.done():  # gave up while we waited for a slot
                semaphore.release()
                continue
            remaining = item.deadline_seconds
            if remaining is not None:
                waited = self._loop.time() - item.enqueued_at
                remaining = item.deadline_seconds - waited
                if remaining <= 0:
                    semaphore.release()
                    self._expire(item, waited)
                    continue
            try:
                shard_future = self.router.submit(
                    item.sql,
                    work_budget=item.work_budget,
                    deadline_seconds=remaining,
                )
            except ReproError as exc:
                semaphore.release()
                item.future.set_exception(exc)
                continue
            shard_future.add_done_callback(
                lambda fut, item=item, semaphore=semaphore: (
                    self._relay(fut, item, semaphore)
                )
            )

    def _expired(self, item: _Submission) -> bool:
        """Fail an already-expired submission; True when it was dead."""
        if item.deadline_seconds is None:
            return False
        waited = self._loop.time() - item.enqueued_at
        if waited < item.deadline_seconds:
            return False
        self._expire(item, waited)
        return True

    def _expire(self, item: _Submission, waited: float) -> None:
        self._expired_in_queue += 1
        item.future.set_exception(
            DeadlineExceeded(
                item.deadline_seconds,
                waited,
                site="shard.frontdoor",
            )
        )

    def _relay(self, shard_future, item: _Submission, semaphore) -> None:
        """Runs on the router's collector thread: hop back onto the loop."""
        try:
            self._loop.call_soon_threadsafe(
                self._finish, shard_future, item, semaphore
            )
        except RuntimeError:
            pass  # loop already closed; the run is over

    def _finish(self, shard_future, item: _Submission, semaphore) -> None:
        semaphore.release()
        if item.future.done():
            return
        error = shard_future.exception()
        if error is not None:
            item.future.set_exception(error)
        else:
            item.future.set_result(shard_future.result())

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------

    async def close(self) -> None:
        """Stop the dispatchers after everything already queued resolves."""
        if self._closed:
            return
        self._closed = True
        for queue in self._queues:
            await queue.put(_CLOSE)
        if self._dispatchers:
            await asyncio.gather(*self._dispatchers)

    def snapshot(self) -> Dict[str, Any]:
        """Front-door view: per-shard queue depth and enqueue counts."""
        return {
            "queue_depth": self.queue_depth,
            "expired_in_queue": self._expired_in_queue,
            "per_shard": {
                shard_id: {
                    "queued": self._queues[shard_id].qsize()
                    if shard_id < len(self._queues)
                    else 0,
                    "enqueued": self._enqueued[shard_id],
                }
                for shard_id in range(self.router.shards)
            },
        }

"""``ShardSupervisor``: the cluster's self-healing layer.

The router's liveness watchdog detects that a worker process died; the
supervisor decides *what happens next*.  Without it (the pre-supervision
default) a dead shard's templates error forever.  With it, the cluster
heals through a small per-shard state machine:

::

    up ──death──▶ backoff ──due──▶ starting ──ready──▶ up
                     │                 │
                     │ budget          │ death (startup crash)
                     ▼ exhausted      ─┘ (back to backoff)
                   open ──cooldown──▶ backoff (half-open trial)

* **backoff** — a restart is scheduled after a *seeded, jittered,
  capped* exponential backoff (:func:`repro.resilience.retry.
  jittered_backoff`; the RNG is ``Random(seed, shard_id)``-derived, so a
  supervised cluster restarts on a reproducible schedule).
* **starting** — the worker was respawned with the *same*
  :class:`~repro.shard.worker.ShardConfig` and an incremented
  incarnation; because every per-shard source of randomness derives from
  ``config.seed + shard_id``, the replacement rebuilds an identical
  serving world.
* **open** — the per-shard restart budget (``max_restarts`` consecutive
  failures) is spent; a shard-level :class:`~repro.resilience.breaker.
  CircuitBreaker` opens and restarts stop for ``breaker_cooldown_seconds``,
  after which exactly one half-open trial restart is admitted (success
  closes the breaker and refreshes the budget; failure re-opens it).

While a shard is anywhere but *up*, the router fails its templates over
to the next live node on the SHA-256 ring and retries its stranded
in-flight queries under the deadline-aware
:class:`~repro.resilience.retry.RetryPolicy` — see
:meth:`repro.shard.router.ShardRouter._retry_or_fail`.

The supervisor never touches routing state directly: the router owns the
down-set, ring epoch, and route LRU under its own lock, and the two
layers interact through three narrow calls (``on_worker_death``,
``on_worker_ready``, ``router._respawn_shard``) that are never made while
holding the other side's lock — the lock-order witness keeps that
honest under ``HDQO_LOCKCHECK=1``.
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass, field
from threading import Condition, Thread
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.analysis.lockwitness import make_lock
from repro.obs.insights.slowlog import SlowQueryLog
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy, jittered_backoff
from repro.service.metrics import SupervisorMetrics
from repro.shard.messages import RestartEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.router import ShardRouter

#: Per-shard supervision states (see the module docstring's machine).
UP = "up"
BACKOFF = "backoff"
STARTING = "starting"
OPEN = "open"

#: Slack added to the breaker cooldown before the half-open trial, so the
#: trial's ``allow`` check is guaranteed to land after the cooldown.
_REVIVAL_SLACK = 0.05


@dataclass(frozen=True)
class SupervisorPolicy:
    """Tunables of the self-healing layer (all deterministic given seed).

    Args:
        max_restarts: consecutive restart budget per shard; one more
            death opens the shard's circuit breaker.
        backoff_base_seconds: first-restart backoff span.
        backoff_cap_seconds: exponential backoff cap.
        breaker_cooldown_seconds: how long an exhausted shard stays
            parked before a half-open trial restart.
        retry: deadline-aware re-dispatch budget for in-flight queries
            stranded by a crash.
        seed: base seed of the per-shard backoff jitter RNGs.
        start_timeout_seconds: how long a respawned worker may take to
            become ready before the watchdog treats it as dead (enforced
            by process liveness, not a timer — a hung-but-alive worker
            is out of scope here).
    """

    max_restarts: int = 5
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 2.0
    breaker_cooldown_seconds: float = 30.0
    retry: RetryPolicy = RetryPolicy(max_retries=2)
    seed: int = 0
    start_timeout_seconds: float = 120.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.backoff_base_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.breaker_cooldown_seconds < 0:
            raise ValueError("breaker_cooldown_seconds must be non-negative")


@dataclass
class _ShardState:
    state: str = UP
    consecutive_failures: int = 0
    restarts: int = 0
    down_since: Optional[float] = None
    incarnation: int = 0


class ShardSupervisor:
    """Restart scheduling + budgets for one :class:`ShardRouter`.

    Owns a single daemon thread that sleeps until the next scheduled
    restart is due, a per-shard :class:`CircuitBreaker` (the restart
    budget), :class:`SupervisorMetrics`, and a bounded event log whose
    entries surface in the merged insights slow log.

    Args:
        router: the router to heal (narrow interface: only
            ``_respawn_shard`` is called, never while holding the
            supervisor lock).
        policy: the :class:`SupervisorPolicy`.
        clock: injectable monotonic clock (tests drive the schedule).
    """

    def __init__(
        self,
        router: "ShardRouter",
        policy: SupervisorPolicy,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self.metrics = SupervisorMetrics()
        self._router = router
        self._clock = clock
        # max_restarts consecutive failures are restartable; the breaker
        # opens on failure number max_restarts + 1.
        self.breaker = CircuitBreaker(
            failure_threshold=policy.max_restarts + 1,
            cooldown_seconds=policy.breaker_cooldown_seconds,
            clock=clock,
        )
        self._events = SlowQueryLog(top_k=1, max_events=256)
        self._lock = make_lock("ShardSupervisor._state")
        self._cond = Condition(self._lock)
        self._states: Dict[int, _ShardState] = {
            shard_id: _ShardState() for shard_id in range(router.shards)
        }
        self._rngs: Dict[int, random.Random] = {
            shard_id: random.Random(policy.seed * 1_000_003 + shard_id)
            for shard_id in range(router.shards)
        }
        # (due_at, shard_id, attempt) min-heap of scheduled restarts.
        self._due: List["tuple[float, int, int]"] = []
        self._stopped = False
        self._thread = Thread(
            target=self._run, name="hdqo-shard-supervisor", daemon=True
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        """Stop scheduling (idempotent); joins the supervisor thread."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        if self._thread.is_alive():
            self._thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    # Router-facing notifications
    # ------------------------------------------------------------------

    def on_worker_death(
        self, shard_id: int, exitcode: Optional[int], inflight_lost: int
    ) -> None:
        """A worker process died (called by the router's collector).

        Records the death, charges the shard's breaker, and schedules a
        restart after a seeded jittered backoff.  If the budget is
        already exhausted the scheduled attempt parks the shard (state
        *open*) and re-schedules itself past the cooldown — the breaker's
        half-open trial.
        """
        key = self._breaker_key(shard_id)
        self.breaker.record_failure(key)
        with self._cond:
            state = self._states[shard_id]
            if state.down_since is None:
                state.down_since = self._clock()
            state.consecutive_failures += 1
            attempt = state.consecutive_failures
            state.state = BACKOFF
            incarnation = state.incarnation
            backoff = jittered_backoff(
                attempt - 1,
                base_seconds=self.policy.backoff_base_seconds,
                cap_seconds=self.policy.backoff_cap_seconds,
                rng=self._rngs[shard_id],
            )
            heapq.heappush(
                self._due, (self._clock() + backoff, shard_id, attempt)
            )
            self._cond.notify_all()
        self.metrics.record_worker_death()
        self._record(
            RestartEvent(
                shard_id=shard_id,
                kind="worker-death",
                incarnation=incarnation,
                attempt=attempt,
                exitcode=exitcode,
                inflight_lost=inflight_lost,
            )
        )
        self._record(
            RestartEvent(
                shard_id=shard_id,
                kind="restart-scheduled",
                incarnation=incarnation,
                attempt=attempt,
                exitcode=exitcode,
                backoff_seconds=backoff,
            )
        )

    def on_worker_ready(self, shard_id: int, incarnation: int) -> None:
        """A restarted worker came up serving (collector, post-failover).

        Closes the breaker (refreshing the restart budget), records the
        down-to-ready recovery time, and returns the shard to *up*.
        """
        with self._cond:
            state = self._states[shard_id]
            down_since = state.down_since
            state.down_since = None
            state.consecutive_failures = 0
            state.state = UP
            state.incarnation = incarnation
        self.breaker.record_success(self._breaker_key(shard_id))
        if down_since is not None:
            self.metrics.observe_recovery(self._clock() - down_since)
        self._record(
            RestartEvent(
                shard_id=shard_id,
                kind="shard-recovered",
                incarnation=incarnation,
            )
        )

    # ------------------------------------------------------------------
    # The supervisor thread
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._stopped and (
                    not self._due or self._due[0][0] > self._clock()
                ):
                    if self._due:
                        self._cond.wait(
                            timeout=max(
                                0.0, self._due[0][0] - self._clock()
                            )
                        )
                    else:
                        self._cond.wait()
                if self._stopped:
                    return
                _, shard_id, attempt = heapq.heappop(self._due)
            self._attempt_restart(shard_id, attempt)

    def _attempt_restart(self, shard_id: int, attempt: int) -> None:
        key = self._breaker_key(shard_id)
        if not self.breaker.allow(key):
            # Budget exhausted: park the shard and come back for the
            # half-open trial once the cooldown has elapsed.
            with self._cond:
                state = self._states[shard_id]
                newly_open = state.state != OPEN
                state.state = OPEN
                incarnation = state.incarnation
                heapq.heappush(
                    self._due,
                    (
                        self._clock()
                        + self.policy.breaker_cooldown_seconds
                        + _REVIVAL_SLACK,
                        shard_id,
                        attempt,
                    ),
                )
                self._cond.notify_all()
            if newly_open:
                self.metrics.record_breaker_open()
                self._record(
                    RestartEvent(
                        shard_id=shard_id,
                        kind="breaker-open",
                        incarnation=incarnation,
                        attempt=attempt,
                    )
                )
            return
        with self._cond:
            state = self._states[shard_id]
            state.state = STARTING
            state.restarts += 1
            state.incarnation += 1
            incarnation = state.incarnation
        if not self._router._respawn_shard(shard_id, incarnation):
            return  # router draining/closed; nothing left to heal
        self.metrics.record_restart()
        self._record(
            RestartEvent(
                shard_id=shard_id,
                kind="worker-restarted",
                incarnation=incarnation,
                attempt=attempt,
            )
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _breaker_key(self, shard_id: int) -> str:
        return f"shard:{shard_id}"

    def _record(self, event: RestartEvent) -> None:
        self._events.record_event(
            f"shard:{event.shard_id}", event.kind, event.to_entry()
        )

    def events(self) -> List[Dict[str, object]]:
        """The bounded supervision event log (plain dicts, oldest first)."""
        return list(self._events.snapshot()["events"])  # type: ignore[arg-type]

    def snapshot(self) -> Dict[str, object]:
        """Supervision state for the router snapshot's ``supervisor`` key."""
        with self._cond:
            per_shard = {
                shard_id: {
                    "state": state.state,
                    "consecutive_failures": state.consecutive_failures,
                    "restarts": state.restarts,
                    "incarnation": state.incarnation,
                    "breaker": self.breaker.state_of(
                        self._breaker_key(shard_id)
                    ),
                }
                for shard_id, state in sorted(self._states.items())
            }
            scheduled = len(self._due)
        return {
            "policy": {
                "max_restarts": self.policy.max_restarts,
                "backoff_base_seconds": self.policy.backoff_base_seconds,
                "backoff_cap_seconds": self.policy.backoff_cap_seconds,
                "breaker_cooldown_seconds": (
                    self.policy.breaker_cooldown_seconds
                ),
                "max_query_retries": self.policy.retry.max_retries,
            },
            "metrics": self.metrics.snapshot(),
            "per_shard": per_shard,
            "scheduled_restarts": scheduled,
            "events": self.events(),
        }

"""In-memory relations and the tuple-at-a-time relational algebra.

A :class:`Relation` is an ordered attribute list plus a list of value
tuples.  Every operator charges *work units* (≈ tuples touched) to a
:class:`repro.metering.WorkMeter`, which is how both the simulated DBMS and
the decomposition evaluator are compared fairly — and how runaway plans are
aborted (the meter's budget raises mid-join, before a cartesian product
materializes).

Natural joins are hash joins on the shared attribute names; a join with no
shared attributes degenerates to a cartesian product, exactly the failure
mode of bad quantitative plans the paper's Fig. 7/8 expose.
"""

from __future__ import annotations

import operator
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import SchemaError
from repro.metering import NULL_METER, WorkMeter
from repro.resilience.context import current_context

#: Join kernels poll the resilience context (deadline/cancel/faults) every
#: this many rows — frequent enough that a cartesian blow-up aborts within
#: milliseconds, rare enough to stay off the per-tuple hot path.
_CHECK_EVERY = 4096

_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _key_getter(indices: Sequence[int]) -> Callable[[Tuple[object, ...]], object]:
    """Hash/sort key extractor built once per relation, not once per row.

    A single-column key stays a bare value (cheaper to hash and compare
    than a 1-tuple, with identical equality/ordering semantics); zero
    columns — the cartesian case — collapse to one constant key.
    """
    if not indices:
        return lambda row: ()
    if len(indices) == 1:
        return operator.itemgetter(indices[0])
    return operator.itemgetter(*indices)


def _row_getter(
    indices: Sequence[int],
) -> Callable[[Tuple[object, ...]], Tuple[object, ...]]:
    """Like :func:`_key_getter` but always yields a tuple (output rows)."""
    if not indices:
        return lambda row: ()
    if len(indices) == 1:
        index = indices[0]
        return lambda row: (row[index],)
    return operator.itemgetter(*indices)


class Relation:
    """A named, attribute-addressed bag of tuples.

    Args:
        attributes: ordered attribute names (unique).
        tuples: row values, each of length ``len(attributes)``.
        name: display name for plans and EXPLAIN output.
    """

    __slots__ = ("name", "attributes", "tuples", "_index")

    def __init__(
        self,
        attributes: Sequence[str],
        tuples: Iterable[Tuple[object, ...]] = (),
        name: str = "",
    ):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attribute names: {self.attributes}")
        self.tuples: List[Tuple[object, ...]] = list(tuples)
        self.name = name
        self._index: Dict[str, int] = {
            attr: i for i, attr in enumerate(self.attributes)
        }
        for row in self.tuples:
            if len(row) != len(self.attributes):
                raise SchemaError(
                    f"tuple arity {len(row)} != schema arity "
                    f"{len(self.attributes)} in relation {self.name!r}"
                )

    @classmethod
    def _trusted(
        cls,
        attributes: Sequence[str],
        tuples: List[Tuple[object, ...]],
        name: str = "",
    ) -> "Relation":
        """Construct without the per-row arity scan.

        For hot paths (the parallel batch kernels) whose rows are
        arity-correct by construction; ``tuples`` is adopted, not copied.
        """
        rel = cls.__new__(cls)
        rel.attributes = tuple(attributes)
        rel.tuples = tuples
        rel.name = name
        rel._index = {attr: i for i, attr in enumerate(rel.attributes)}
        return rel

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self.tuples)

    def __repr__(self) -> str:
        label = self.name or "?"
        return f"Relation({label}{list(self.attributes)}, {len(self.tuples)} tuples)"

    def index_of(self, attribute: str) -> int:
        try:
            return self._index[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"has {list(self.attributes)}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self._index

    def column(self, attribute: str) -> List[object]:
        """All values of one attribute, in row order."""
        idx = self.index_of(attribute)
        return [row[idx] for row in self.tuples]

    def to_multiset(self) -> Dict[Tuple[object, ...], int]:
        """Attribute-order-normalized multiset view (for equality in tests)."""
        order = sorted(range(len(self.attributes)), key=lambda i: self.attributes[i])
        counts: Dict[Tuple[object, ...], int] = {}
        for row in self.tuples:
            key = tuple(row[i] for i in order)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def same_content(self, other: "Relation") -> bool:
        """Bag equality modulo attribute order."""
        if set(self.attributes) != set(other.attributes):
            return False
        return self.to_multiset() == other.to_multiset()

    def copy(self, name: "str | None" = None) -> "Relation":
        return Relation(self.attributes, list(self.tuples), name or self.name)

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------

    def project(
        self,
        attributes: Sequence[str],
        dedup: bool = True,
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """π over ``attributes``; set semantics when ``dedup`` (the default)."""
        indices = [self.index_of(a) for a in attributes]
        meter.charge(len(self.tuples), "project")
        row_of = _row_getter(indices)
        if dedup:
            seen: set = set()
            seen_add = seen.add
            out: List[Tuple[object, ...]] = []
            out_append = out.append
            for row in self.tuples:
                key = row_of(row)
                if key not in seen:
                    seen_add(key)
                    out_append(key)
        else:
            out = list(map(row_of, self.tuples))
        return Relation(attributes, out, name=self.name)

    def select(
        self,
        predicate: Callable[[Tuple[object, ...]], bool],
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """σ with an arbitrary tuple predicate."""
        meter.charge(len(self.tuples), "select")
        kept = [row for row in self.tuples if predicate(row)]
        return Relation(self.attributes, kept, name=self.name)

    def select_compare(
        self,
        attribute: str,
        op: str,
        value: object,
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """σ attribute ⟨op⟩ constant, with op in ``= <> < <= > >=``."""
        compare = _COMPARATORS.get(op)
        if compare is None:
            raise SchemaError(f"unsupported comparison operator {op!r}")
        idx = self.index_of(attribute)
        meter.charge(len(self.tuples), "select")
        kept = [row for row in self.tuples if compare(row[idx], value)]
        return Relation(self.attributes, kept, name=self.name)

    def select_attr_eq(
        self, left: str, right: str, meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """σ left = right between two attributes of this relation."""
        li, ri = self.index_of(left), self.index_of(right)
        meter.charge(len(self.tuples), "select")
        kept = [row for row in self.tuples if row[li] == row[ri]]
        return Relation(self.attributes, kept, name=self.name)

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """ρ: rename attributes; unmentioned attributes keep their names."""
        new_attrs = tuple(mapping.get(a, a) for a in self.attributes)
        return Relation(new_attrs, self.tuples, name=self.name)

    def distinct(self, meter: WorkMeter = NULL_METER) -> "Relation":
        meter.charge(len(self.tuples), "distinct")
        seen = set()
        out = []
        for row in self.tuples:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Relation(self.attributes, out, name=self.name)

    def sort_by(
        self,
        keys: Sequence[Tuple[str, bool]],
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """Sort by ``(attribute, descending)`` keys, stably, right-to-left."""
        meter.charge(len(self.tuples), "sort")
        rows = list(self.tuples)
        for attribute, descending in reversed(list(keys)):
            idx = self.index_of(attribute)
            rows.sort(key=lambda row: row[idx], reverse=descending)
        return Relation(self.attributes, rows, name=self.name)

    def limit(self, count: int) -> "Relation":
        return Relation(self.attributes, self.tuples[:count], name=self.name)

    # ------------------------------------------------------------------
    # Binary operators
    # ------------------------------------------------------------------

    def shared_attributes(self, other: "Relation") -> Tuple[str, ...]:
        """Join attributes: shared names, in this relation's order."""
        other_set = set(other.attributes)
        return tuple(a for a in self.attributes if a in other_set)

    def natural_join(
        self, other: "Relation", meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """⋈ hash join on shared attribute names.

        With no shared attributes this is the cartesian product.  Work is
        charged per input tuple and per output tuple *as produced*, so a
        budgeted meter aborts a blow-up before it is materialized.
        """
        shared = self.shared_attributes(other)
        # Build on the smaller side.
        build, probe = (self, other) if len(self) <= len(other) else (other, self)
        build_idx = [build.index_of(a) for a in shared]
        probe_idx = [probe.index_of(a) for a in shared]

        out_attrs = list(probe.attributes) + [
            a for a in build.attributes if a not in probe._index
        ]
        build_rest_idx = [
            i for i, a in enumerate(build.attributes) if a not in probe._index
        ]

        context = current_context()
        build_key = _key_getter(build_idx)
        probe_key = _key_getter(probe_idx)
        rest_of = _row_getter(build_rest_idx)

        # Build phase: one hash-table insert per row, keys extracted by a
        # precompiled itemgetter, the non-key suffix precomputed once per
        # build row (it is re-emitted for every probe match).  Work is
        # charged in ≤ _CHECK_EVERY blocks with identical totals.
        table: Dict[object, List[Tuple[object, ...]]] = {}
        table_get = table.get
        build_rows = build.tuples
        for start in range(0, len(build_rows), _CHECK_EVERY):
            context.checkpoint("exec.join")
            chunk = build_rows[start : start + _CHECK_EVERY]
            meter.charge(len(chunk), "join-build")
            for row in chunk:
                key = build_key(row)
                bucket = table_get(key)
                if bucket is None:
                    table[key] = [rest_of(row)]
                else:
                    bucket.append(rest_of(row))

        # Probe phase.  The checkpoint is driven by *probe-row* count, not
        # output count: a long probe with few or no matches must still be
        # interruptible by deadlines and cancellation.
        out: List[Tuple[object, ...]] = []
        out_extend = out.extend
        probe_rows = probe.tuples
        for start in range(0, len(probe_rows), _CHECK_EVERY):
            context.checkpoint("exec.join")
            chunk = probe_rows[start : start + _CHECK_EVERY]
            meter.charge(len(chunk), "join-probe")
            for row in chunk:
                matches = table_get(probe_key(row))
                if not matches:
                    continue
                if len(matches) <= _CHECK_EVERY:
                    # Charged *before* materialization so a budgeted meter
                    # aborts a blow-up before its rows exist.
                    meter.charge(len(matches), "join-out")
                    out_extend([row + rest for rest in matches])
                else:
                    for mstart in range(0, len(matches), _CHECK_EVERY):
                        context.checkpoint("exec.join")
                        run = matches[mstart : mstart + _CHECK_EVERY]
                        meter.charge(len(run), "join-out")
                        out_extend([row + rest for rest in run])
        name = f"({self.name}⋈{other.name})" if self.name and other.name else ""
        return Relation(out_attrs, out, name=name)

    def nested_loop_join(
        self, other: "Relation", meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """⋈ by nested loops — O(|R|·|S|); the right choice only when one
        side is tiny (no hash-table build cost)."""
        shared = self.shared_attributes(other)
        self_idx = [self.index_of(a) for a in shared]
        other_idx = [other.index_of(a) for a in shared]
        out_attrs = list(self.attributes) + [
            a for a in other.attributes if a not in self._index
        ]
        other_rest_idx = [
            i for i, a in enumerate(other.attributes) if a not in self._index
        ]
        context = current_context()
        self_key = _key_getter(self_idx)
        # Inner-side keys and output suffixes are extracted once, not once
        # per outer row.
        other_keys = [_key_getter(other_idx)(row) for row in other.tuples]
        other_rests = [_row_getter(other_rest_idx)(row) for row in other.tuples]
        pairs = 0
        out: List[Tuple[object, ...]] = []
        for row in self.tuples:
            key = self_key(row)
            for j, other_key in enumerate(other_keys):
                if pairs % _CHECK_EVERY == 0:
                    context.checkpoint("exec.join")
                pairs += 1
                meter.charge(1, "nlj-pair")
                if other_key == key:
                    if len(out) % _CHECK_EVERY == 0:
                        context.checkpoint("exec.join")
                    meter.charge(1, "nlj-out")
                    out.append(row + other_rests[j])
        name = f"({self.name}⋈{other.name})" if self.name and other.name else ""
        return Relation(out_attrs, out, name=name)

    def merge_join(
        self, other: "Relation", meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """⋈ by sort-merge on the shared attributes.

        Sorts both inputs on the join key (charged), then merges runs of
        equal keys.  Requires at least one shared attribute — with none, a
        merge join degenerates to a cross product, which
        :meth:`natural_join` handles.
        """
        shared = self.shared_attributes(other)
        if not shared:
            return self.natural_join(other, meter=meter)
        self_idx = [self.index_of(a) for a in shared]
        other_idx = [other.index_of(a) for a in shared]
        left_key_of = _key_getter(self_idx)
        right_key_of = _key_getter(other_idx)
        meter.charge(len(self.tuples) + len(other.tuples), "merge-sort")
        left_rows = sorted(self.tuples, key=left_key_of)
        right_rows = sorted(other.tuples, key=right_key_of)
        # Key arrays are materialized once after the sort; the merge loop
        # below never re-extracts a key tuple.
        left_keys = list(map(left_key_of, left_rows))
        right_keys = list(map(right_key_of, right_rows))
        out_attrs = list(self.attributes) + [
            a for a in other.attributes if a not in self._index
        ]
        other_rest_idx = [
            i for i, a in enumerate(other.attributes) if a not in self._index
        ]
        right_rests = list(map(_row_getter(other_rest_idx), right_rows))

        context = current_context()
        steps = 0
        out: List[Tuple[object, ...]] = []
        out_extend = out.extend
        n_left, n_right = len(left_rows), len(right_rows)
        i = j = 0
        while i < n_left and j < n_right:
            if steps % _CHECK_EVERY == 0:
                context.checkpoint("exec.join")
            steps += 1
            left_key = left_keys[i]
            right_key = right_keys[j]
            meter.charge(1, "merge-advance")
            if left_key < right_key:
                i += 1
            elif left_key > right_key:
                j += 1
            else:
                # Collect the run of equal keys on both sides.
                i_end = i + 1
                while i_end < n_left and left_keys[i_end] == left_key:
                    i_end += 1
                j_end = j + 1
                while j_end < n_right and right_keys[j_end] == right_key:
                    j_end += 1
                run_rests = right_rests[j:j_end]
                for li in range(i, i_end):
                    context.tick("exec.join")
                    left_row = left_rows[li]
                    meter.charge(len(run_rests), "join-out")
                    out_extend([left_row + rest for rest in run_rests])
                i, j = i_end, j_end
        name = f"({self.name}⋈{other.name})" if self.name and other.name else ""
        return Relation(out_attrs, out, name=name)

    def semijoin(
        self, other: "Relation", meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """⋉ keep tuples of self that match ``other`` on shared attributes.

        With no shared attributes, returns self unchanged when ``other`` is
        non-empty and the empty relation otherwise (standard semantics).
        """
        shared = self.shared_attributes(other)
        if not shared:
            if len(other) == 0:
                return Relation(self.attributes, [], name=self.name)
            return self.copy()
        context = current_context()
        context.checkpoint("exec.join")
        other_idx = [other.index_of(a) for a in shared]
        meter.charge(len(other.tuples), "semijoin-build")
        keys = set(map(_key_getter(other_idx), other.tuples))
        self_key = _key_getter([self.index_of(a) for a in shared])
        meter.charge(len(self.tuples), "semijoin-probe")
        kept: List[Tuple[object, ...]] = []
        rows = self.tuples
        for start in range(0, len(rows), _CHECK_EVERY):
            if start:
                context.checkpoint("exec.join")
            chunk = rows[start : start + _CHECK_EVERY]
            kept.extend([row for row in chunk if self_key(row) in keys])
        return Relation(self.attributes, kept, name=self.name)

    def union(self, other: "Relation", meter: WorkMeter = NULL_METER) -> "Relation":
        """Bag union; requires identical attribute sets (order-normalized)."""
        if set(self.attributes) != set(other.attributes):
            raise SchemaError(
                "union requires identical attribute sets: "
                f"{self.attributes} vs {other.attributes}"
            )
        reorder = [other.index_of(a) for a in self.attributes]
        context = current_context()
        aligned = reorder == list(range(len(self.attributes)))
        row_of = _row_getter(reorder)
        merged = list(self.tuples)
        rows = other.tuples
        for start in range(0, len(rows), _CHECK_EVERY):
            context.checkpoint("exec.union")
            chunk = rows[start : start + _CHECK_EVERY]
            meter.charge(len(chunk), "union")
            merged.extend(chunk if aligned else list(map(row_of, chunk)))
        return Relation(self.attributes, merged, name=self.name)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def group_aggregate(
        self,
        group_by: Sequence[str],
        aggregates: Sequence[Tuple[str, Optional[str], str]],
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """γ group-by + aggregates.

        Args:
            group_by: grouping attributes (may be empty: single global group).
            aggregates: ``(function, attribute, output_name)`` triples where
                function ∈ {sum, count, min, max, avg} and attribute is
                ``None`` for ``count(*)``.

        Returns:
            One row per group: group attributes then aggregate outputs.
        """
        group_idx = [self.index_of(a) for a in group_by]
        agg_idx: List[Optional[int]] = []
        for func, attribute, _out in aggregates:
            if func not in ("sum", "count", "min", "max", "avg"):
                raise SchemaError(f"unsupported aggregate function {func!r}")
            agg_idx.append(None if attribute is None else self.index_of(attribute))

        meter.charge(len(self.tuples), "aggregate")
        groups: Dict[Tuple[object, ...], List[Tuple[object, ...]]] = {}
        for row in self.tuples:
            key = tuple(row[i] for i in group_idx)
            groups.setdefault(key, []).append(row)
        if not group_by and not groups:
            groups[()] = []  # global aggregate over the empty relation

        out_attrs = list(group_by) + [out for _f, _a, out in aggregates]
        out_rows: List[Tuple[object, ...]] = []
        for key in groups:
            rows = groups[key]
            values: List[object] = list(key)
            for (func, _attribute, _out), idx in zip(aggregates, agg_idx):
                column = [row[idx] for row in rows] if idx is not None else rows
                values.append(_apply_aggregate(func, column, idx is not None))
            out_rows.append(tuple(values))
        return Relation(out_attrs, out_rows, name=self.name)


def _numeric_sum(column: List[object]) -> object:
    """Order-independent summation.

    Different query plans enumerate a group's rows in different orders;
    naive float addition is not associative, so two correct plans could
    disagree in the last ulp.  ``math.fsum`` computes the correctly-rounded
    sum regardless of order whenever any float is involved; pure-integer
    columns keep exact integer arithmetic.
    """
    import math

    if any(isinstance(value, float) for value in column):
        return math.fsum(column)  # type: ignore[arg-type]
    return sum(column)  # type: ignore[arg-type]


def _apply_aggregate(func: str, column: List[object], has_attr: bool) -> object:
    """Evaluate one aggregate over a materialized group column."""
    if func == "count":
        return len(column)
    if not has_attr:
        raise SchemaError(f"aggregate {func!r} requires an attribute")
    if not column:
        return None  # SQL: aggregates over empty groups are NULL
    if func == "sum":
        return _numeric_sum(column)
    if func == "min":
        return min(column)  # type: ignore[type-var]
    if func == "max":
        return max(column)  # type: ignore[type-var]
    if func == "avg":
        return _numeric_sum(column) / len(column)  # type: ignore[operator]
    raise SchemaError(f"unsupported aggregate function {func!r}")  # pragma: no cover

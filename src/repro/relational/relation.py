"""In-memory relations and the tuple-at-a-time relational algebra.

A :class:`Relation` is an ordered attribute list plus a list of value
tuples.  Every operator charges *work units* (≈ tuples touched) to a
:class:`repro.metering.WorkMeter`, which is how both the simulated DBMS and
the decomposition evaluator are compared fairly — and how runaway plans are
aborted (the meter's budget raises mid-join, before a cartesian product
materializes).

Natural joins are hash joins on the shared attribute names; a join with no
shared attributes degenerates to a cartesian product, exactly the failure
mode of bad quantitative plans the paper's Fig. 7/8 expose.
"""

from __future__ import annotations

import operator
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import SchemaError
from repro.metering import NULL_METER, WorkMeter
from repro.resilience.context import current_context

#: Join kernels poll the resilience context (deadline/cancel/faults) every
#: this many rows — frequent enough that a cartesian blow-up aborts within
#: milliseconds, rare enough to stay off the per-tuple hot path.
_CHECK_EVERY = 4096

_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Relation:
    """A named, attribute-addressed bag of tuples.

    Args:
        attributes: ordered attribute names (unique).
        tuples: row values, each of length ``len(attributes)``.
        name: display name for plans and EXPLAIN output.
    """

    __slots__ = ("name", "attributes", "tuples", "_index")

    def __init__(
        self,
        attributes: Sequence[str],
        tuples: Iterable[Tuple[object, ...]] = (),
        name: str = "",
    ):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attribute names: {self.attributes}")
        self.tuples: List[Tuple[object, ...]] = list(tuples)
        self.name = name
        self._index: Dict[str, int] = {
            attr: i for i, attr in enumerate(self.attributes)
        }
        for row in self.tuples:
            if len(row) != len(self.attributes):
                raise SchemaError(
                    f"tuple arity {len(row)} != schema arity "
                    f"{len(self.attributes)} in relation {self.name!r}"
                )

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple[object, ...]]:
        return iter(self.tuples)

    def __repr__(self) -> str:
        label = self.name or "?"
        return f"Relation({label}{list(self.attributes)}, {len(self.tuples)} tuples)"

    def index_of(self, attribute: str) -> int:
        try:
            return self._index[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"has {list(self.attributes)}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self._index

    def column(self, attribute: str) -> List[object]:
        """All values of one attribute, in row order."""
        idx = self.index_of(attribute)
        return [row[idx] for row in self.tuples]

    def to_multiset(self) -> Dict[Tuple[object, ...], int]:
        """Attribute-order-normalized multiset view (for equality in tests)."""
        order = sorted(range(len(self.attributes)), key=lambda i: self.attributes[i])
        counts: Dict[Tuple[object, ...], int] = {}
        for row in self.tuples:
            key = tuple(row[i] for i in order)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def same_content(self, other: "Relation") -> bool:
        """Bag equality modulo attribute order."""
        if set(self.attributes) != set(other.attributes):
            return False
        return self.to_multiset() == other.to_multiset()

    def copy(self, name: "str | None" = None) -> "Relation":
        return Relation(self.attributes, list(self.tuples), name or self.name)

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------

    def project(
        self,
        attributes: Sequence[str],
        dedup: bool = True,
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """π over ``attributes``; set semantics when ``dedup`` (the default)."""
        indices = [self.index_of(a) for a in attributes]
        meter.charge(len(self.tuples), "project")
        if dedup:
            seen = set()
            out: List[Tuple[object, ...]] = []
            for row in self.tuples:
                key = tuple(row[i] for i in indices)
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        else:
            out = [tuple(row[i] for i in indices) for row in self.tuples]
        return Relation(attributes, out, name=self.name)

    def select(
        self,
        predicate: Callable[[Tuple[object, ...]], bool],
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """σ with an arbitrary tuple predicate."""
        meter.charge(len(self.tuples), "select")
        kept = [row for row in self.tuples if predicate(row)]
        return Relation(self.attributes, kept, name=self.name)

    def select_compare(
        self,
        attribute: str,
        op: str,
        value: object,
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """σ attribute ⟨op⟩ constant, with op in ``= <> < <= > >=``."""
        compare = _COMPARATORS.get(op)
        if compare is None:
            raise SchemaError(f"unsupported comparison operator {op!r}")
        idx = self.index_of(attribute)
        meter.charge(len(self.tuples), "select")
        kept = [row for row in self.tuples if compare(row[idx], value)]
        return Relation(self.attributes, kept, name=self.name)

    def select_attr_eq(
        self, left: str, right: str, meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """σ left = right between two attributes of this relation."""
        li, ri = self.index_of(left), self.index_of(right)
        meter.charge(len(self.tuples), "select")
        kept = [row for row in self.tuples if row[li] == row[ri]]
        return Relation(self.attributes, kept, name=self.name)

    def rename(self, mapping: Dict[str, str]) -> "Relation":
        """ρ: rename attributes; unmentioned attributes keep their names."""
        new_attrs = tuple(mapping.get(a, a) for a in self.attributes)
        return Relation(new_attrs, self.tuples, name=self.name)

    def distinct(self, meter: WorkMeter = NULL_METER) -> "Relation":
        meter.charge(len(self.tuples), "distinct")
        seen = set()
        out = []
        for row in self.tuples:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Relation(self.attributes, out, name=self.name)

    def sort_by(
        self,
        keys: Sequence[Tuple[str, bool]],
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """Sort by ``(attribute, descending)`` keys, stably, right-to-left."""
        meter.charge(len(self.tuples), "sort")
        rows = list(self.tuples)
        for attribute, descending in reversed(list(keys)):
            idx = self.index_of(attribute)
            rows.sort(key=lambda row: row[idx], reverse=descending)
        return Relation(self.attributes, rows, name=self.name)

    def limit(self, count: int) -> "Relation":
        return Relation(self.attributes, self.tuples[:count], name=self.name)

    # ------------------------------------------------------------------
    # Binary operators
    # ------------------------------------------------------------------

    def shared_attributes(self, other: "Relation") -> Tuple[str, ...]:
        """Join attributes: shared names, in this relation's order."""
        other_set = set(other.attributes)
        return tuple(a for a in self.attributes if a in other_set)

    def natural_join(
        self, other: "Relation", meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """⋈ hash join on shared attribute names.

        With no shared attributes this is the cartesian product.  Work is
        charged per input tuple and per output tuple *as produced*, so a
        budgeted meter aborts a blow-up before it is materialized.
        """
        shared = self.shared_attributes(other)
        # Build on the smaller side.
        build, probe = (self, other) if len(self) <= len(other) else (other, self)
        build_idx = [build.index_of(a) for a in shared]
        probe_idx = [probe.index_of(a) for a in shared]

        out_attrs = list(probe.attributes) + [
            a for a in build.attributes if a not in probe._index
        ]
        build_rest_idx = [
            i for i, a in enumerate(build.attributes) if a not in probe._index
        ]

        context = current_context()
        table: Dict[Tuple[object, ...], List[Tuple[object, ...]]] = {}
        for n, row in enumerate(build.tuples):
            if n % _CHECK_EVERY == 0:
                context.checkpoint("exec.join")
            meter.charge(1, "join-build")
            key = tuple(row[i] for i in build_idx)
            table.setdefault(key, []).append(row)

        out: List[Tuple[object, ...]] = []
        for row in probe.tuples:
            meter.charge(1, "join-probe")
            key = tuple(row[i] for i in probe_idx)
            matches = table.get(key)
            if not matches:
                continue
            for match in matches:
                if len(out) % _CHECK_EVERY == 0:
                    context.checkpoint("exec.join")
                meter.charge(1, "join-out")
                out.append(row + tuple(match[i] for i in build_rest_idx))
        name = f"({self.name}⋈{other.name})" if self.name and other.name else ""
        return Relation(out_attrs, out, name=name)

    def nested_loop_join(
        self, other: "Relation", meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """⋈ by nested loops — O(|R|·|S|); the right choice only when one
        side is tiny (no hash-table build cost)."""
        shared = self.shared_attributes(other)
        self_idx = [self.index_of(a) for a in shared]
        other_idx = [other.index_of(a) for a in shared]
        out_attrs = list(self.attributes) + [
            a for a in other.attributes if a not in self._index
        ]
        other_rest_idx = [
            i for i, a in enumerate(other.attributes) if a not in self._index
        ]
        context = current_context()
        pairs = 0
        out: List[Tuple[object, ...]] = []
        for row in self.tuples:
            for other_row in other.tuples:
                if pairs % _CHECK_EVERY == 0:
                    context.checkpoint("exec.join")
                pairs += 1
                meter.charge(1, "nlj-pair")
                if all(
                    row[i] == other_row[j]
                    for i, j in zip(self_idx, other_idx)
                ):
                    out.append(row + tuple(other_row[i] for i in other_rest_idx))
        name = f"({self.name}⋈{other.name})" if self.name and other.name else ""
        return Relation(out_attrs, out, name=name)

    def merge_join(
        self, other: "Relation", meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """⋈ by sort-merge on the shared attributes.

        Sorts both inputs on the join key (charged), then merges runs of
        equal keys.  Requires at least one shared attribute — with none, a
        merge join degenerates to a cross product, which
        :meth:`natural_join` handles.
        """
        shared = self.shared_attributes(other)
        if not shared:
            return self.natural_join(other, meter=meter)
        self_idx = [self.index_of(a) for a in shared]
        other_idx = [other.index_of(a) for a in shared]
        meter.charge(len(self.tuples) + len(other.tuples), "merge-sort")
        left_rows = sorted(
            self.tuples, key=lambda row: tuple(row[i] for i in self_idx)
        )
        right_rows = sorted(
            other.tuples, key=lambda row: tuple(row[i] for i in other_idx)
        )
        out_attrs = list(self.attributes) + [
            a for a in other.attributes if a not in self._index
        ]
        other_rest_idx = [
            i for i, a in enumerate(other.attributes) if a not in self._index
        ]

        context = current_context()
        steps = 0
        out: List[Tuple[object, ...]] = []
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            if steps % _CHECK_EVERY == 0:
                context.checkpoint("exec.join")
            steps += 1
            left_key = tuple(left_rows[i][k] for k in self_idx)
            right_key = tuple(right_rows[j][k] for k in other_idx)
            meter.charge(1, "merge-advance")
            if left_key < right_key:
                i += 1
            elif left_key > right_key:
                j += 1
            else:
                # Collect the run of equal keys on both sides.
                i_end = i
                while i_end < len(left_rows) and tuple(
                    left_rows[i_end][k] for k in self_idx
                ) == left_key:
                    i_end += 1
                j_end = j
                while j_end < len(right_rows) and tuple(
                    right_rows[j_end][k] for k in other_idx
                ) == right_key:
                    j_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        meter.charge(1, "join-out")
                        out.append(
                            left_rows[li]
                            + tuple(right_rows[rj][k] for k in other_rest_idx)
                        )
                i, j = i_end, j_end
        name = f"({self.name}⋈{other.name})" if self.name and other.name else ""
        return Relation(out_attrs, out, name=name)

    def semijoin(
        self, other: "Relation", meter: WorkMeter = NULL_METER
    ) -> "Relation":
        """⋉ keep tuples of self that match ``other`` on shared attributes.

        With no shared attributes, returns self unchanged when ``other`` is
        non-empty and the empty relation otherwise (standard semantics).
        """
        shared = self.shared_attributes(other)
        if not shared:
            if len(other) == 0:
                return Relation(self.attributes, [], name=self.name)
            return self.copy()
        current_context().checkpoint("exec.join")
        other_idx = [other.index_of(a) for a in shared]
        meter.charge(len(other.tuples), "semijoin-build")
        keys = {tuple(row[i] for i in other_idx) for row in other.tuples}
        self_idx = [self.index_of(a) for a in shared]
        meter.charge(len(self.tuples), "semijoin-probe")
        kept = [
            row
            for row in self.tuples
            if tuple(row[i] for i in self_idx) in keys
        ]
        return Relation(self.attributes, kept, name=self.name)

    def union(self, other: "Relation", meter: WorkMeter = NULL_METER) -> "Relation":
        """Bag union; requires identical attribute sets (order-normalized)."""
        if set(self.attributes) != set(other.attributes):
            raise SchemaError(
                "union requires identical attribute sets: "
                f"{self.attributes} vs {other.attributes}"
            )
        reorder = [other.index_of(a) for a in self.attributes]
        meter.charge(len(other.tuples), "union")
        merged = list(self.tuples) + [
            tuple(row[i] for i in reorder) for row in other.tuples
        ]
        return Relation(self.attributes, merged, name=self.name)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def group_aggregate(
        self,
        group_by: Sequence[str],
        aggregates: Sequence[Tuple[str, Optional[str], str]],
        meter: WorkMeter = NULL_METER,
    ) -> "Relation":
        """γ group-by + aggregates.

        Args:
            group_by: grouping attributes (may be empty: single global group).
            aggregates: ``(function, attribute, output_name)`` triples where
                function ∈ {sum, count, min, max, avg} and attribute is
                ``None`` for ``count(*)``.

        Returns:
            One row per group: group attributes then aggregate outputs.
        """
        group_idx = [self.index_of(a) for a in group_by]
        agg_idx: List[Optional[int]] = []
        for func, attribute, _out in aggregates:
            if func not in ("sum", "count", "min", "max", "avg"):
                raise SchemaError(f"unsupported aggregate function {func!r}")
            agg_idx.append(None if attribute is None else self.index_of(attribute))

        meter.charge(len(self.tuples), "aggregate")
        groups: Dict[Tuple[object, ...], List[Tuple[object, ...]]] = {}
        for row in self.tuples:
            key = tuple(row[i] for i in group_idx)
            groups.setdefault(key, []).append(row)
        if not group_by and not groups:
            groups[()] = []  # global aggregate over the empty relation

        out_attrs = list(group_by) + [out for _f, _a, out in aggregates]
        out_rows: List[Tuple[object, ...]] = []
        for key in groups:
            rows = groups[key]
            values: List[object] = list(key)
            for (func, _attribute, _out), idx in zip(aggregates, agg_idx):
                column = [row[idx] for row in rows] if idx is not None else rows
                values.append(_apply_aggregate(func, column, idx is not None))
            out_rows.append(tuple(values))
        return Relation(out_attrs, out_rows, name=self.name)


def _numeric_sum(column: List[object]) -> object:
    """Order-independent summation.

    Different query plans enumerate a group's rows in different orders;
    naive float addition is not associative, so two correct plans could
    disagree in the last ulp.  ``math.fsum`` computes the correctly-rounded
    sum regardless of order whenever any float is involved; pure-integer
    columns keep exact integer arithmetic.
    """
    import math

    if any(isinstance(value, float) for value in column):
        return math.fsum(column)  # type: ignore[arg-type]
    return sum(column)  # type: ignore[arg-type]


def _apply_aggregate(func: str, column: List[object], has_attr: bool) -> object:
    """Evaluate one aggregate over a materialized group column."""
    if func == "count":
        return len(column)
    if not has_attr:
        raise SchemaError(f"aggregate {func!r} requires an attribute")
    if not column:
        return None  # SQL: aggregates over empty groups are NULL
    if func == "sum":
        return _numeric_sum(column)
    if func == "min":
        return min(column)  # type: ignore[type-var]
    if func == "max":
        return max(column)  # type: ignore[type-var]
    if func == "avg":
        return _numeric_sum(column) / len(column)  # type: ignore[operator]
    raise SchemaError(f"unsupported aggregate function {func!r}")  # pragma: no cover

"""ANALYZE-style statistics over stored relations.

Statistics drive two consumers:

* the quantitative optimizer of the simulated DBMS (join ordering);
* the cost model of cost-k-decomp (weighting candidate decompositions),
  exactly the hybrid coupling of the paper's *Statistics Picker* module.

The paper stresses that gathering statistics is expensive (≈800 s for 1 GB)
while the structural plan costs ~1.5 s regardless of size; to reproduce the
overhead experiment, :func:`analyze_relation` charges one work unit per
scanned tuple to an optional meter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import SchemaError
from repro.metering import NULL_METER, WorkMeter
from repro.relational.relation import Relation
from repro.resilience.context import current_context


@dataclass(frozen=True)
class AttributeStatistics:
    """Per-attribute statistics gathered by ANALYZE.

    Attributes:
        n_distinct: number of distinct non-null values.
        min_value / max_value: extrema (None on empty input).
        most_common: up to ``mcv_limit`` ``(value, frequency)`` pairs, by
            descending frequency — the PostgreSQL MCV list equivalent.
    """

    n_distinct: int
    min_value: Optional[object]
    max_value: Optional[object]
    most_common: Tuple[Tuple[object, int], ...] = ()

    @property
    def selectivity(self) -> float:
        """Equality selectivity estimate 1/V (uniformity assumption)."""
        return 1.0 / self.n_distinct if self.n_distinct > 0 else 1.0


@dataclass(frozen=True)
class TableStatistics:
    """Statistics for one relation: cardinality + per-attribute details."""

    relation: str
    row_count: int
    attributes: Mapping[str, AttributeStatistics] = field(default_factory=dict)

    def attribute(self, name: str) -> AttributeStatistics:
        try:
            return self.attributes[name]
        except KeyError:
            raise SchemaError(
                f"no statistics for attribute {name!r} of {self.relation!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self.attributes

    def distinct(self, attribute: str) -> int:
        """V(R, a): distinct-value count, defaulting to row_count when unknown."""
        stats = self.attributes.get(attribute)
        if stats is None:
            return max(self.row_count, 1)
        return max(stats.n_distinct, 1)


def analyze_relation(
    relation: Relation,
    mcv_limit: int = 10,
    meter: WorkMeter = NULL_METER,
) -> TableStatistics:
    """Full-scan ANALYZE of a relation.

    Charges one work unit per tuple per attribute to ``meter`` — statistics
    gathering cost grows linearly with the database, which is the point of
    the paper's overhead comparison (§6.1).
    """
    context = current_context()
    attr_stats: Dict[str, AttributeStatistics] = {}
    for attribute in relation.attributes:
        context.checkpoint("analyze")
        idx = relation.index_of(attribute)
        counts: Dict[object, int] = {}
        meter.charge(len(relation.tuples), "analyze")
        for row in relation.tuples:
            value = row[idx]
            counts[value] = counts.get(value, 0) + 1
        if counts:
            values = list(counts)
            minimum, maximum = min(values), max(values)  # type: ignore[type-var]
        else:
            minimum = maximum = None
        most_common = tuple(
            sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))[:mcv_limit]
        )
        attr_stats[attribute] = AttributeStatistics(
            n_distinct=len(counts),
            min_value=minimum,
            max_value=maximum,
            most_common=most_common,
        )
    return TableStatistics(
        relation=relation.name,
        row_count=len(relation.tuples),
        attributes=attr_stats,
    )


class StatisticsCatalog:
    """The *Metadata Repository* of the paper's architecture (Fig. 5).

    Maps relation name → :class:`TableStatistics`.  The stand-alone
    optimizer mode lets the user supply these by hand; the tight coupling
    fills them via :meth:`analyze_database`.

    Attributes:
        version: monotonically increasing counter, bumped on every mutation
            (``put``, ``clear``).  Consumers that cache statistics-derived
            artifacts — the serving layer's plan cache, the tight coupling's
            cost-model cache — key on this version so an ANALYZE refresh
            lazily invalidates them.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, TableStatistics] = {}
        self.version = 0

    def put(self, stats: TableStatistics) -> None:
        self._tables[stats.relation.lower()] = stats
        self.version += 1

    def get(self, relation: str) -> Optional[TableStatistics]:
        return self._tables.get(relation.lower())

    def require(self, relation: str) -> TableStatistics:
        stats = self.get(relation)
        if stats is None:
            raise SchemaError(f"no statistics for relation {relation!r}")
        return stats

    def __contains__(self, relation: object) -> bool:
        return isinstance(relation, str) and relation.lower() in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def clear(self) -> None:
        self._tables.clear()
        self.version += 1

    def put_manual(
        self,
        relation: str,
        row_count: int,
        distinct_counts: Mapping[str, int] = (),
    ) -> None:
        """User-supplied statistics for the stand-alone mode (§5).

        Only cardinality and per-attribute distinct counts are needed by
        the cost model; extrema and MCVs stay empty.
        """
        attributes = {
            name: AttributeStatistics(
                n_distinct=count, min_value=None, max_value=None
            )
            for name, count in dict(distinct_counts).items()
        }
        self.put(
            TableStatistics(
                relation=relation.lower(),
                row_count=row_count,
                attributes=attributes,
            )
        )

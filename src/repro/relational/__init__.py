"""Storage substrate: schemas, in-memory relations, catalogs, statistics.

This is the ground the simulated DBMS engines and the decomposition
evaluator share: an attribute-named, tuple-at-a-time relational algebra with
work accounting, plus an ANALYZE-style statistics collector (cardinalities,
distinct counts, min/max) feeding both the quantitative optimizer and the
cost model of cost-k-decomp.
"""

from repro.relational.schema import (
    AttributeType,
    DatabaseSchema,
    RelationSchema,
)
from repro.relational.relation import Relation
from repro.relational.database import Database
from repro.relational.csvio import (
    database_from_json,
    database_to_json,
    export_database_csv,
    load_database_csv,
    read_relation_csv,
    write_relation_csv,
)
from repro.relational.statistics import (
    AttributeStatistics,
    StatisticsCatalog,
    TableStatistics,
    analyze_relation,
)

__all__ = [
    "AttributeType",
    "RelationSchema",
    "DatabaseSchema",
    "Relation",
    "Database",
    "database_from_json",
    "database_to_json",
    "export_database_csv",
    "load_database_csv",
    "read_relation_csv",
    "write_relation_csv",
    "AttributeStatistics",
    "TableStatistics",
    "StatisticsCatalog",
    "analyze_relation",
]

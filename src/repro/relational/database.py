"""Database catalog: stored relations, their schemas, and statistics.

A :class:`Database` couples the three pieces every engine needs:

* a :class:`repro.relational.schema.DatabaseSchema` for name resolution;
* the stored :class:`repro.relational.relation.Relation` instances;
* a :class:`repro.relational.statistics.StatisticsCatalog`, populated by
  :meth:`Database.analyze` (the tight coupling) or by hand (stand-alone
  mode, §5 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.errors import SchemaError
from repro.metering import NULL_METER, WorkMeter
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.statistics import (
    StatisticsCatalog,
    TableStatistics,
    analyze_relation,
)


class Database:
    """A named collection of stored relations plus statistics."""

    def __init__(self, name: str = "db"):
        from repro.relational.indexes import IndexCatalog

        self.name = name
        self.schema = DatabaseSchema()
        self.statistics = StatisticsCatalog()
        self.indexes = IndexCatalog()
        self._tables: Dict[str, Relation] = {}

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------

    def create_table(
        self,
        schema: RelationSchema,
        tuples: Iterable[Tuple[object, ...]] = (),
        validate: bool = False,
    ) -> Relation:
        """Create and store a relation under ``schema``.

        Args:
            validate: type-check every value against the schema (slow;
                meant for tests and small loads).
        """
        relation = Relation(schema.attribute_names, tuples, name=schema.name)
        if validate:
            for row in relation.tuples:
                for (attr, attr_type), value in zip(schema.attributes, row):
                    if not attr_type.validate(value):
                        raise SchemaError(
                            f"value {value!r} invalid for "
                            f"{schema.name}.{attr} ({attr_type.value})"
                        )
        self.schema.add(schema)
        self._tables[schema.name] = relation
        return relation

    def drop_table(self, name: str) -> None:
        lowered = name.lower()
        if lowered not in self._tables:
            raise SchemaError(f"unknown relation {name!r}")
        del self._tables[lowered]
        # Rebuild the schema without the dropped relation.
        remaining = [s for s in self.schema if s.name != lowered]
        self.schema = DatabaseSchema(remaining)

    def table(self, name: str) -> Relation:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._tables

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def total_tuples(self) -> int:
        """Total stored tuples across all relations (a database-size proxy)."""
        return sum(len(rel) for rel in self._tables.values())

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def analyze(
        self, relation: "str | None" = None, meter: WorkMeter = NULL_METER
    ) -> None:
        """Gather statistics for one relation, or for all when None.

        Charges the full scan cost to ``meter`` (the overhead experiment of
        §6.1 measures exactly this).
        """
        names = [relation.lower()] if relation else list(self._tables)
        for name in names:
            self.statistics.put(analyze_relation(self.table(name), meter=meter))

    def create_index(self, relation: str, attributes: Tuple[str, ...]):
        """Build and register a hash index on a stored relation."""
        return self.indexes.create(self.table(relation), tuple(attributes))

    def stats_for(self, relation: str) -> Optional[TableStatistics]:
        return self.statistics.get(relation)

    @property
    def stats_version(self) -> int:
        """The statistics catalog's mutation counter.

        Plan and cost-model caches key on this: re-running ANALYZE bumps it,
        so entries built under stale statistics are lazily evicted.
        """
        return self.statistics.version

    def has_statistics(self) -> bool:
        """True when every stored relation has statistics."""
        return all(name in self.statistics for name in self._tables)

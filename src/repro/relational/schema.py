"""Relation and database schemas.

Schemas are deliberately light: ordered attribute names with coarse types
(enough to type-check loads and generate data), an optional primary key, and
lookup helpers.  The SQL translator only needs ``attribute_names``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError


class AttributeType(enum.Enum):
    """Coarse attribute types used for validation and data generation."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"  # ISO "YYYY-MM-DD" strings; lexicographic order is correct

    def validate(self, value: object) -> bool:
        """True when ``value`` inhabits this type (None is never valid)."""
        if self is AttributeType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is AttributeType.STRING:
            return isinstance(value, str)
        if self is AttributeType.DATE:
            return isinstance(value, str) and len(value) == 10 and value[4] == "-"
        raise AssertionError(f"unknown type {self}")  # pragma: no cover


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: name, typed attributes, optional key.

    Args:
        name: relation name (lower-cased on construction by convention).
        attributes: ordered ``(attribute_name, type)`` pairs.
        key: names of the primary-key attributes, or empty.
    """

    name: str
    attributes: Tuple[Tuple[str, AttributeType], ...]
    key: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        names = [a for a, _ in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute in relation {self.name!r}")
        for attr in self.key:
            if attr not in names:
                raise SchemaError(
                    f"key attribute {attr!r} not in relation {self.name!r}"
                )

    @classmethod
    def of(
        cls,
        name: str,
        attributes: Mapping[str, AttributeType] | Sequence[Tuple[str, AttributeType]],
        key: Sequence[str] = (),
    ) -> "RelationSchema":
        """Convenience constructor accepting a mapping or pair sequence."""
        if isinstance(attributes, Mapping):
            pairs = tuple(attributes.items())
        else:
            pairs = tuple(attributes)
        return cls(name.lower(), pairs, tuple(key))

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a for a, _ in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def type_of(self, attribute: str) -> AttributeType:
        for attr, attr_type in self.attributes:
            if attr == attribute:
                return attr_type
        raise SchemaError(
            f"relation {self.name!r} has no attribute {attribute!r}"
        )

    def index_of(self, attribute: str) -> int:
        for index, (attr, _) in enumerate(self.attributes):
            if attr == attribute:
                return index
        raise SchemaError(
            f"relation {self.name!r} has no attribute {attribute!r}"
        )

    def has_attribute(self, attribute: str) -> bool:
        return any(attr == attribute for attr, _ in self.attributes)


class DatabaseSchema:
    """A collection of relation schemas with name-based lookup."""

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: Dict[str, RelationSchema] = {}
        for schema in relations:
            self.add(schema)

    def add(self, schema: RelationSchema) -> None:
        if schema.name in self._relations:
            raise SchemaError(f"duplicate relation {schema.name!r}")
        self._relations[schema.name] = schema

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._relations

    def __iter__(self):
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def as_mapping(self) -> Dict[str, Tuple[str, ...]]:
        """``{relation: attribute_names}`` — the shape the SQL translator wants."""
        return {
            name: schema.attribute_names
            for name, schema in self._relations.items()
        }

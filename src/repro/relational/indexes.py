"""Hash indexes over stored relations.

A light physical-design layer: the engine's hash joins build their tables
on the fly, but persistent :class:`HashIndex` structures let repeated
lookups (index nested-loop joins, indexed semijoins) skip the build cost —
the trade-off a disk-based DBMS makes with B-trees.  Indexes are registered
on the :class:`repro.relational.database.Database` catalog and exercised by
dedicated operators; they are deliberately *not* wired into the default
planner, keeping the paper's experiments index-neutral (as its synthetic
setup was).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.metering import NULL_METER, WorkMeter
from repro.relational.relation import _CHECK_EVERY, Relation, _row_getter
from repro.resilience.context import current_context

Key = Tuple[object, ...]


class HashIndex:
    """A hash index over one or more attributes of a relation.

    Args:
        relation: the indexed relation (a snapshot — the index does not
            track later mutation, like a real index without maintenance).
        attributes: indexed attribute names, in key order.
    """

    def __init__(self, relation: Relation, attributes: Sequence[str]):
        if not attributes:
            raise SchemaError("an index needs at least one attribute")
        self.relation = relation
        self.attributes: Tuple[str, ...] = tuple(attributes)
        key_of = _row_getter([relation.index_of(a) for a in self.attributes])
        self._buckets: Dict[Key, List[Tuple[object, ...]]] = {}
        buckets = self._buckets
        for row in relation.tuples:
            key = key_of(row)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row]
            else:
                bucket.append(row)

    def __len__(self) -> int:
        return len(self._buckets)

    def lookup(self, key: Key, meter: WorkMeter = NULL_METER) -> List[Tuple[object, ...]]:
        """All rows matching ``key`` (charged one probe unit)."""
        meter.charge(1, "index-probe")
        return self._buckets.get(tuple(key), [])

    def contains(self, key: Key, meter: WorkMeter = NULL_METER) -> bool:
        meter.charge(1, "index-probe")
        return tuple(key) in self._buckets

    @property
    def build_cost(self) -> int:
        """Work units spent building (≈ one per indexed tuple)."""
        return len(self.relation)


def index_nested_loop_join(
    probe: Relation,
    index: HashIndex,
    meter: WorkMeter = NULL_METER,
) -> Relation:
    """⋈ probe against an index on the shared attributes.

    The index's attributes must all be present in ``probe``; remaining
    shared attributes (if any) are checked residually.
    """
    build = index.relation
    for attribute in index.attributes:
        if not probe.has_attribute(attribute):
            raise SchemaError(
                f"probe side lacks indexed attribute {attribute!r}"
            )
    probe_key_idx = [probe.index_of(a) for a in index.attributes]
    shared = tuple(a for a in probe.attributes if build.has_attribute(a))
    residual = [a for a in shared if a not in index.attributes]
    probe_res_idx = [probe.index_of(a) for a in residual]
    build_res_idx = [build.index_of(a) for a in residual]

    out_attrs = list(probe.attributes) + [
        a for a in build.attributes if not probe.has_attribute(a)
    ]
    build_rest_idx = [
        i for i, a in enumerate(build.attributes) if not probe.has_attribute(a)
    ]

    context = current_context()
    key_of = _row_getter(probe_key_idx)
    rest_of = _row_getter(build_rest_idx)
    residual_pairs = list(zip(probe_res_idx, build_res_idx))
    buckets = index._buckets
    probe_rows = probe.tuples
    out: List[Tuple[object, ...]] = []
    # Charge in chunk batches (probe + index-probe per row up front, output
    # rows after each chunk): same categories and totals as the per-row
    # loop, two meter acquisitions per chunk instead of per row.
    for start in range(0, len(probe_rows), _CHECK_EVERY):
        context.checkpoint("exec.inl-join")
        chunk = probe_rows[start : start + _CHECK_EVERY]
        meter.charge(len(chunk), "inl-probe")
        meter.charge(len(chunk), "index-probe")
        emitted = len(out)
        for row in chunk:
            matches = buckets.get(key_of(row))
            if not matches:
                continue
            for match in matches:
                if any(row[pi] != match[bi] for pi, bi in residual_pairs):
                    continue
                out.append(row + rest_of(match))
        if len(out) > emitted:
            meter.charge(len(out) - emitted, "inl-out")
    return Relation(out_attrs, out, name=f"({probe.name}⋈idx)")


def indexed_semijoin(
    left: Relation,
    index: HashIndex,
    meter: WorkMeter = NULL_METER,
) -> Relation:
    """⋉ keep rows of ``left`` whose indexed key exists in the index."""
    for attribute in index.attributes:
        if not left.has_attribute(attribute):
            raise SchemaError(f"left side lacks indexed attribute {attribute!r}")
    key_of = _row_getter([left.index_of(a) for a in index.attributes])
    meter.charge(len(left), "semijoin-probe")
    meter.charge(len(left), "index-probe")
    buckets = index._buckets
    kept = [row for row in left.tuples if key_of(row) in buckets]
    return Relation(left.attributes, kept, name=left.name)


class IndexCatalog:
    """Registered indexes: (relation, attributes) → HashIndex."""

    def __init__(self) -> None:
        self._indexes: Dict[Tuple[str, Tuple[str, ...]], HashIndex] = {}

    def create(self, relation: Relation, attributes: Sequence[str]) -> HashIndex:
        key = (relation.name, tuple(attributes))
        if key in self._indexes:
            raise SchemaError(f"index already exists on {key}")
        index = HashIndex(relation, attributes)
        self._indexes[key] = index
        return index

    def find(
        self, relation_name: str, attributes: Sequence[str]
    ) -> Optional[HashIndex]:
        return self._indexes.get((relation_name, tuple(attributes)))

    def drop(self, relation_name: str, attributes: Sequence[str]) -> None:
        key = (relation_name, tuple(attributes))
        if key not in self._indexes:
            raise SchemaError(f"no index on {key}")
        del self._indexes[key]

    def __len__(self) -> int:
        return len(self._indexes)

"""Hash indexes over stored relations.

A light physical-design layer: the engine's hash joins build their tables
on the fly, but persistent :class:`HashIndex` structures let repeated
lookups (index nested-loop joins, indexed semijoins) skip the build cost —
the trade-off a disk-based DBMS makes with B-trees.  Indexes are registered
on the :class:`repro.relational.database.Database` catalog and exercised by
dedicated operators; they are deliberately *not* wired into the default
planner, keeping the paper's experiments index-neutral (as its synthetic
setup was).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.metering import NULL_METER, WorkMeter
from repro.relational.relation import _CHECK_EVERY, Relation
from repro.resilience.context import current_context

Key = Tuple[object, ...]


class HashIndex:
    """A hash index over one or more attributes of a relation.

    Args:
        relation: the indexed relation (a snapshot — the index does not
            track later mutation, like a real index without maintenance).
        attributes: indexed attribute names, in key order.
    """

    def __init__(self, relation: Relation, attributes: Sequence[str]):
        if not attributes:
            raise SchemaError("an index needs at least one attribute")
        self.relation = relation
        self.attributes: Tuple[str, ...] = tuple(attributes)
        indices = [relation.index_of(a) for a in self.attributes]
        self._buckets: Dict[Key, List[Tuple[object, ...]]] = {}
        for row in relation.tuples:
            key = tuple(row[i] for i in indices)
            self._buckets.setdefault(key, []).append(row)

    def __len__(self) -> int:
        return len(self._buckets)

    def lookup(self, key: Key, meter: WorkMeter = NULL_METER) -> List[Tuple[object, ...]]:
        """All rows matching ``key`` (charged one probe unit)."""
        meter.charge(1, "index-probe")
        return self._buckets.get(tuple(key), [])

    def contains(self, key: Key, meter: WorkMeter = NULL_METER) -> bool:
        meter.charge(1, "index-probe")
        return tuple(key) in self._buckets

    @property
    def build_cost(self) -> int:
        """Work units spent building (≈ one per indexed tuple)."""
        return len(self.relation)


def index_nested_loop_join(
    probe: Relation,
    index: HashIndex,
    meter: WorkMeter = NULL_METER,
) -> Relation:
    """⋈ probe against an index on the shared attributes.

    The index's attributes must all be present in ``probe``; remaining
    shared attributes (if any) are checked residually.
    """
    build = index.relation
    for attribute in index.attributes:
        if not probe.has_attribute(attribute):
            raise SchemaError(
                f"probe side lacks indexed attribute {attribute!r}"
            )
    probe_key_idx = [probe.index_of(a) for a in index.attributes]
    shared = tuple(a for a in probe.attributes if build.has_attribute(a))
    residual = [a for a in shared if a not in index.attributes]
    probe_res_idx = [probe.index_of(a) for a in residual]
    build_res_idx = [build.index_of(a) for a in residual]

    out_attrs = list(probe.attributes) + [
        a for a in build.attributes if not probe.has_attribute(a)
    ]
    build_rest_idx = [
        i for i, a in enumerate(build.attributes) if not probe.has_attribute(a)
    ]

    context = current_context()
    out: List[Tuple[object, ...]] = []
    for n, row in enumerate(probe.tuples):
        if n % _CHECK_EVERY == 0:
            context.checkpoint("exec.inl-join")
        meter.charge(1, "inl-probe")
        key = tuple(row[i] for i in probe_key_idx)
        for match in index.lookup(key, meter):
            if any(
                row[pi] != match[bi]
                for pi, bi in zip(probe_res_idx, build_res_idx)
            ):
                continue
            meter.charge(1, "inl-out")
            out.append(row + tuple(match[i] for i in build_rest_idx))
    return Relation(out_attrs, out, name=f"({probe.name}⋈idx)")


def indexed_semijoin(
    left: Relation,
    index: HashIndex,
    meter: WorkMeter = NULL_METER,
) -> Relation:
    """⋉ keep rows of ``left`` whose indexed key exists in the index."""
    for attribute in index.attributes:
        if not left.has_attribute(attribute):
            raise SchemaError(f"left side lacks indexed attribute {attribute!r}")
    key_idx = [left.index_of(a) for a in index.attributes]
    meter.charge(len(left), "semijoin-probe")
    kept = [
        row
        for row in left.tuples
        if index.contains(tuple(row[i] for i in key_idx))
    ]
    return Relation(left.attributes, kept, name=left.name)


class IndexCatalog:
    """Registered indexes: (relation, attributes) → HashIndex."""

    def __init__(self) -> None:
        self._indexes: Dict[Tuple[str, Tuple[str, ...]], HashIndex] = {}

    def create(self, relation: Relation, attributes: Sequence[str]) -> HashIndex:
        key = (relation.name, tuple(attributes))
        if key in self._indexes:
            raise SchemaError(f"index already exists on {key}")
        index = HashIndex(relation, attributes)
        self._indexes[key] = index
        return index

    def find(
        self, relation_name: str, attributes: Sequence[str]
    ) -> Optional[HashIndex]:
        return self._indexes.get((relation_name, tuple(attributes)))

    def drop(self, relation_name: str, attributes: Sequence[str]) -> None:
        key = (relation_name, tuple(attributes))
        if key not in self._indexes:
            raise SchemaError(f"no index on {key}")
        del self._indexes[key]

    def __len__(self) -> int:
        return len(self._indexes)

"""Relation and database import/export (CSV and JSON).

The paper's stand-alone mode expects users to bring their own data; this
module provides the loading path: CSV files with a header row (one file per
relation) or a single JSON document.  Values are coerced to the relation
schema's types on load (``dbgen`` emits text, like every CSV source).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import AttributeType, DatabaseSchema, RelationSchema

PathLike = Union[str, Path]


def _coerce(value: str, attr_type: AttributeType) -> object:
    """Coerce one CSV text field to a schema type."""
    if attr_type is AttributeType.INT:
        try:
            return int(value)
        except ValueError as exc:
            raise SchemaError(f"cannot read {value!r} as INT") from exc
    if attr_type is AttributeType.FLOAT:
        try:
            return float(value)
        except ValueError as exc:
            raise SchemaError(f"cannot read {value!r} as FLOAT") from exc
    # STRING and DATE stay text (dates are ISO strings by convention).
    return value


def write_relation_csv(relation: Relation, path: PathLike) -> None:
    """Write a relation as a CSV file with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.attributes)
        writer.writerows(relation.tuples)


def read_relation_csv(
    path: PathLike,
    schema: Optional[RelationSchema] = None,
    name: str = "",
) -> Relation:
    """Read a relation from a CSV file with a header row.

    With a schema, column order and types are validated/coerced; without
    one, every value stays a string.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty CSV file (missing header)") from None
        rows = list(reader)

    if schema is None:
        return Relation(header, [tuple(row) for row in rows], name=name or Path(path).stem)

    if tuple(header) != schema.attribute_names:
        raise SchemaError(
            f"{path}: header {header} does not match schema "
            f"{list(schema.attribute_names)}"
        )
    types = [attr_type for _name, attr_type in schema.attributes]
    coerced: List[Tuple[object, ...]] = []
    for row in rows:
        if len(row) != len(types):
            raise SchemaError(f"{path}: row arity {len(row)} != {len(types)}")
        coerced.append(tuple(_coerce(v, t) for v, t in zip(row, types)))
    return Relation(schema.attribute_names, coerced, name=schema.name)


def export_database_csv(database: Database, directory: PathLike) -> List[Path]:
    """Write every relation of a database as ``<directory>/<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in database.table_names:
        path = directory / f"{name}.csv"
        write_relation_csv(database.table(name), path)
        written.append(path)
    return written


def load_database_csv(
    schema: DatabaseSchema,
    directory: PathLike,
    name: str = "db",
    analyze: bool = False,
) -> Database:
    """Load a database from per-relation CSV files.

    Every relation of ``schema`` must have a ``<name>.csv`` file in
    ``directory``.
    """
    directory = Path(directory)
    database = Database(name)
    for rel_schema in schema:
        path = directory / f"{rel_schema.name}.csv"
        if not path.exists():
            raise SchemaError(f"missing CSV file for relation {rel_schema.name!r}: {path}")
        relation = read_relation_csv(path, rel_schema)
        database.create_table(rel_schema, relation.tuples)
    if analyze:
        database.analyze()
    return database


# ---------------------------------------------------------------------------
# JSON round-trip (schema + data in one document)
# ---------------------------------------------------------------------------


def database_to_json(database: Database) -> str:
    """Serialize schema + data as a JSON document."""
    doc = {"name": database.name, "relations": []}
    for rel_schema in database.schema:
        relation = database.table(rel_schema.name)
        doc["relations"].append(
            {
                "name": rel_schema.name,
                "attributes": [
                    {"name": attr, "type": attr_type.value}
                    for attr, attr_type in rel_schema.attributes
                ],
                "key": list(rel_schema.key),
                "tuples": [list(row) for row in relation.tuples],
            }
        )
    return json.dumps(doc)


def database_from_json(text: str, analyze: bool = False) -> Database:
    """Deserialize a database produced by :func:`database_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"invalid database JSON: {exc}") from exc
    database = Database(doc.get("name", "db"))
    for entry in doc.get("relations", []):
        attributes = [
            (a["name"], AttributeType(a["type"])) for a in entry["attributes"]
        ]
        rel_schema = RelationSchema(
            entry["name"], tuple(attributes), tuple(entry.get("key", []))
        )
        database.create_table(
            rel_schema, [tuple(row) for row in entry.get("tuples", [])]
        )
    if analyze:
        database.analyze()
    return database

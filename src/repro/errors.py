"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the optimizer can catch a single base class.  More specific
subclasses are raised close to the failure site and carry enough context to
diagnose the problem without reading library source.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class HypergraphError(ReproError):
    """Malformed hypergraph input or an operation on missing vertices/edges."""


class QueryError(ReproError):
    """Malformed query (conjunctive or SQL) or unsupported construct."""


class SqlSyntaxError(QueryError):
    """Raised by the SQL lexer/parser on syntactically invalid input.

    Attributes:
        position: character offset in the input where the error was detected,
            or ``None`` when the error is not tied to one position.
    """

    def __init__(self, message: str, position: "int | None" = None):
        super().__init__(message)
        self.position = position


class SchemaError(ReproError):
    """Schema violation: unknown relation/attribute, arity or type mismatch."""


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan."""


class WorkBudgetExceeded(ExecutionError):
    """The executor's work budget was exhausted.

    The benchmark harness catches this to record a did-not-finish data point
    (the paper reports such runs as "> 10 minutes").
    """

    def __init__(self, budget: int, spent: int):
        super().__init__(
            f"work budget exceeded: spent {spent} work units of {budget} allowed"
        )
        self.budget = budget
        self.spent = spent


class DecompositionError(ReproError):
    """A decomposition-related invariant was violated."""


class DecompositionNotFound(DecompositionError):
    """No decomposition with the requested properties exists.

    Mirrors the "Failure" output of Algorithm q-HypertreeDecomp (Fig. 4 of
    the paper): there is no hypertree decomposition of width at most ``k``
    whose root covers the output variables.
    """

    def __init__(self, message: str, width: "int | None" = None):
        super().__init__(message)
        self.width = width


class OptimizationError(ReproError):
    """The quantitative optimizer could not produce a plan."""


class ServiceError(ReproError):
    """A failure in the concurrent query-serving layer."""


class ServiceOverloaded(ServiceError):
    """Admission control rejected a query: the service queue is full.

    Carries the saturation details so a client can implement backpressure
    (retry with jitter, shed load, or route elsewhere).
    """

    def __init__(self, queued: int, capacity: int):
        super().__init__(
            f"service overloaded: {queued} queries queued, capacity {capacity}"
        )
        self.queued = queued
        self.capacity = capacity


class ServiceClosed(ServiceError):
    """A query was submitted to a service that has been shut down."""

"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the optimizer can catch a single base class.  More specific
subclasses are raised close to the failure site and carry enough context to
diagnose the problem without reading library source.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class HypergraphError(ReproError):
    """Malformed hypergraph input or an operation on missing vertices/edges."""


class QueryError(ReproError):
    """Malformed query (conjunctive or SQL) or unsupported construct."""


class SqlSyntaxError(QueryError):
    """Raised by the SQL lexer/parser on syntactically invalid input.

    Attributes:
        position: character offset in the input where the error was detected,
            or ``None`` when the error is not tied to one position.
    """

    def __init__(self, message: str, position: "int | None" = None):
        super().__init__(message)
        self.position = position


class SchemaError(ReproError):
    """Schema violation: unknown relation/attribute, arity or type mismatch."""


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan."""


class WorkBudgetExceeded(ExecutionError):
    """The executor's work budget was exhausted.

    The benchmark harness catches this to record a did-not-finish data point
    (the paper reports such runs as "> 10 minutes").

    Attributes:
        budget: the work-unit limit that was crossed.
        spent: units charged when the limit was crossed — because the meter
            checks on *every* charge, this is at most one charge beyond the
            budget, even mid-join (the blow-up is aborted before it
            materializes, not at the next operator boundary).
        phase: the meter category of the charge that crossed the line
            (``"join-out"``, ``"plan"``, …), locating the failure inside an
            operator rather than between operators.
    """

    def __init__(self, budget: int, spent: int, phase: str = ""):
        detail = f" during {phase!r}" if phase else ""
        super().__init__(
            f"work budget exceeded{detail}: spent {spent} work units "
            f"of {budget} allowed"
        )
        self.budget = budget
        self.spent = spent
        self.phase = phase


class DeadlineExceeded(ExecutionError):
    """A query ran past its deadline and was aborted at a checkpoint.

    Attributes:
        deadline_seconds: the allotted wall-clock budget.
        elapsed_seconds: time elapsed when the overrun was detected.
        site: the checkpoint that detected it (``"decompose.search"``,
            ``"exec.join"``, …).
    """

    def __init__(
        self,
        deadline_seconds: float,
        elapsed_seconds: float,
        site: str = "",
    ):
        where = f" at {site}" if site else ""
        super().__init__(
            f"deadline exceeded{where}: {elapsed_seconds:.3f}s elapsed "
            f"of {deadline_seconds:.3f}s allowed"
        )
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds
        self.site = site


class QueryCancelled(ExecutionError):
    """A query observed its cancellation token and stopped cooperatively.

    Attributes:
        reason: the reason given to :meth:`CancellationToken.cancel`.
        site: the checkpoint that observed the cancellation.
    """

    def __init__(self, reason: str = "", site: str = ""):
        where = f" at {site}" if site else ""
        why = f": {reason}" if reason else ""
        super().__init__(f"query cancelled{where}{why}")
        self.reason = reason
        self.site = site


class MemoryBudgetExceeded(ExecutionError):
    """An intermediate result exceeded the per-query memory budget.

    Estimated via row-width accounting (rows × attributes = cells) on every
    materialized intermediate, so a blow-up aborts deterministically instead
    of OOM-ing the worker.

    Attributes:
        site: the operator that materialized the oversized intermediate.
        rows: rows of the offending intermediate.
        row_width: attributes per row.
        cells: estimated cells (rows × row_width) held by the query when
            the guard fired.
        budget_cells: the cell budget (None when only the row guard fired).
        max_rows: the max-intermediate-rows guard (None when only the cell
            budget fired).
    """

    def __init__(
        self,
        site: str,
        rows: int,
        row_width: int,
        cells: int,
        budget_cells: "int | None" = None,
        max_rows: "int | None" = None,
    ):
        if max_rows is not None and budget_cells is None:
            detail = f"{rows} intermediate rows > {max_rows} allowed"
        else:
            detail = f"{cells} estimated cells > {budget_cells} allowed"
        where = f" at {site}" if site else ""
        super().__init__(f"memory budget exceeded{where}: {detail}")
        self.site = site
        self.rows = rows
        self.row_width = row_width
        self.cells = cells
        self.budget_cells = budget_cells
        self.max_rows = max_rows


class InjectedFault(ExecutionError):
    """A deterministic fault raised by the chaos-testing fault injector.

    Attributes:
        site: the named injection site that fired.
    """

    def __init__(self, site: str):
        super().__init__(f"injected fault at {site}")
        self.site = site


class DecompositionError(ReproError):
    """A decomposition-related invariant was violated."""


class DecompositionNotFound(DecompositionError):
    """No decomposition with the requested properties exists.

    Mirrors the "Failure" output of Algorithm q-HypertreeDecomp (Fig. 4 of
    the paper): there is no hypertree decomposition of width at most ``k``
    whose root covers the output variables.
    """

    def __init__(self, message: str, width: "int | None" = None):
        super().__init__(message)
        self.width = width


class OptimizationError(ReproError):
    """The quantitative optimizer could not produce a plan."""


class ServiceError(ReproError):
    """A failure in the concurrent query-serving layer."""


class ServiceOverloaded(ServiceError):
    """Admission control rejected a query: the service queue is full.

    Carries the saturation details so a client can implement backpressure
    (retry with jitter, shed load, or route elsewhere).
    """

    def __init__(self, queued: int, capacity: int):
        super().__init__(
            f"service overloaded: {queued} queries queued, capacity {capacity}"
        )
        self.queued = queued
        self.capacity = capacity


class ServiceClosed(ServiceError):
    """A query was submitted to a service that has been shut down."""


class ShardError(ServiceError):
    """A failure in the multi-process shard layer.

    Raised by the router for cluster-level faults (a worker died, a reply
    timed out) and used as the carrier for worker-side errors whose
    concrete type could not be reconstructed across the process boundary.

    Attributes:
        original_type: the worker-side exception type name when this error
            wraps one, else ``None``.
        shard_id: the shard involved, when known.
    """

    def __init__(
        self,
        message: str,
        original_type: "str | None" = None,
        shard_id: "int | None" = None,
    ):
        super().__init__(message)
        self.original_type = original_type
        self.shard_id = shard_id


class ShardUnavailable(ShardError):
    """No live shard could serve a query before its budgets ran out.

    Raised by the supervised router when a worker died with the query in
    flight and every recovery avenue is exhausted: the deadline-aware
    retry budget hit zero, the original deadline expired before a retry
    could be dispatched, or no live failover shard remains on the ring.
    Queries are read-only and idempotent, so the router retries them
    transparently first — this error is the explicit end of that road.

    Attributes:
        shard_id: the shard whose death stranded the query (the *last*
            one, if the query was retried across several).
        attempts: dispatch attempts made (1 = the original only).
        reason: which budget ran out (``"retry-budget"``,
            ``"deadline"``, ``"no-live-shard"``, or ``"draining"``).
    """

    def __init__(
        self,
        message: str,
        shard_id: "int | None" = None,
        attempts: int = 1,
        reason: str = "retry-budget",
    ):
        super().__init__(message, shard_id=shard_id)
        self.attempts = attempts
        self.reason = reason


class LockOrderViolation(ReproError):
    """The dynamic lock-order witness observed a cyclic acquisition order.

    Raised (only under ``HDQO_LOCKCHECK=1``) when two threads acquire the
    same pair of named locks in opposite orders — the classic deadlock
    recipe.  Carries the witnessed cycle so the offending lock pair can be
    identified without reproducing the interleaving.

    Attributes:
        cycle: lock names forming the ordering cycle, e.g.
            ``("PlanCache._lock", "ServiceMetrics._lock",
            "PlanCache._lock")``.
    """

    def __init__(self, cycle: "tuple[str, ...]"):
        super().__init__(
            "lock-order cycle witnessed: " + " -> ".join(cycle)
        )
        self.cycle = cycle

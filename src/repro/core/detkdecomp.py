"""det-k-decomp: search for a hypertree decomposition of width ≤ k.

A memoized recursive search in the style of Gottlob–Leone–Scarcello's
opt-k-decomp / det-k-decomp family.  Subproblems are pairs
``(component, connector)`` where *component* is a set of hyperedge names
still to decompose and *connector* is the set of variables shared with the
parent's χ label.  For each subproblem the algorithm enumerates λ-candidates
(≤ k hyperedges covering the connector and touching the component), sets

    χ(p) = var(λ(p)) ∩ (connector ∪ var(component)),

splits the component against χ(p) (see
:func:`repro.hypergraph.algorithms.connected_components`) and recurses.
This construction yields decompositions satisfying all four conditions of
Definition 1 (in particular the Special Descendant Condition), i.e. genuine
normal-form-style hypertree decompositions.

The top-level call may impose a set of variables the *root* χ must cover —
that is exactly how Algorithm q-HypertreeDecomp (Fig. 4 of the paper)
obtains condition 2 of Definition 2 (out(Q) ⊆ χ(root)).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import DecompositionError
from repro.hypergraph.algorithms import connected_components
from repro.hypergraph.hypergraph import Hypergraph
from repro.core.hypertree import Hypertree, HypertreeNode

_FAIL = None


def _candidate_separators(
    hypergraph: Hypergraph,
    component: FrozenSet[str],
    connector: FrozenSet[str],
    k: int,
) -> Iterator[Tuple[str, ...]]:
    """Enumerate λ-candidates for a (component, connector) subproblem.

    A candidate is a set of 1..k hyperedges (from the *whole* hypergraph —
    edges outside the component may be needed to cover the connector) such
    that:

    * every connector variable is covered: connector ⊆ var(λ);
    * at least one candidate edge intersects the component's variables
      (progress guarantee);
    * no candidate edge is useless (each must intersect
      connector ∪ var(component)).
    """
    component_vars = hypergraph.variables_of(component)
    relevant_vars = connector | component_vars
    relevant_edges = sorted(
        edge.name
        for edge in hypergraph
        if edge.vertices & relevant_vars
    )
    for size in range(1, k + 1):
        for combo in itertools.combinations(relevant_edges, size):
            lam_vars = hypergraph.variables_of(combo)
            if not connector <= lam_vars:
                continue
            if not lam_vars & component_vars:
                continue
            yield combo


def _split(
    hypergraph: Hypergraph,
    component: FrozenSet[str],
    chi: FrozenSet[str],
) -> List[Tuple[FrozenSet[str], FrozenSet[str]]]:
    """Split a component against χ; returns (sub-component, connector) pairs."""
    subcomponents = connected_components(hypergraph, component, chi)
    result = []
    for sub in subcomponents:
        connector = hypergraph.variables_of(sub) & chi
        result.append((sub, frozenset(connector)))
    return result


class DetKDecomp:
    """Stateful det-k-decomp search with success/failure memoization."""

    def __init__(self, hypergraph: Hypergraph, k: int):
        if k < 1:
            raise DecompositionError("width bound k must be at least 1")
        self.hypergraph = hypergraph
        self.k = k
        self._memo: Dict[
            Tuple[FrozenSet[str], FrozenSet[str]], Optional[HypertreeNode]
        ] = {}

    def decompose(
        self, required_root_cover: Iterable[str] = ()
    ) -> Optional[Hypertree]:
        """Search for a width-≤k decomposition.

        Args:
            required_root_cover: variables the root's χ must contain (the
                out(Q) requirement of Def. 2).  They must be covered by the
                root's λ since this search keeps χ ⊆ var(λ).

        Returns:
            A :class:`Hypertree` satisfying Definition 1, or None.
        """
        all_edges = frozenset(edge.name for edge in self.hypergraph)
        cover = frozenset(required_root_cover)
        unknown = cover - self.hypergraph.vertices
        if unknown:
            raise DecompositionError(
                f"required root-cover variables not in hypergraph: {sorted(unknown)}"
            )
        if not all_edges:
            root = HypertreeNode(chi=cover, lam=())
            return Hypertree(root, self.hypergraph)
        node = self._solve(all_edges, cover)
        if node is None:
            return None
        return Hypertree(node.clone(), self.hypergraph)

    # ------------------------------------------------------------------

    def _solve(
        self, component: FrozenSet[str], connector: FrozenSet[str]
    ) -> Optional[HypertreeNode]:
        key = (component, connector)
        if key in self._memo:
            cached = self._memo[key]
            return cached.clone() if cached is not None else None

        result = self._search(component, connector)
        self._memo[key] = result.clone() if result is not None else None
        return result

    def _search(
        self, component: FrozenSet[str], connector: FrozenSet[str]
    ) -> Optional[HypertreeNode]:
        component_vars = self.hypergraph.variables_of(component)
        for lam in _candidate_separators(
            self.hypergraph, component, connector, self.k
        ):
            lam_vars = self.hypergraph.variables_of(lam)
            chi = lam_vars & (connector | component_vars)
            pieces = _split(self.hypergraph, component, chi)
            # Progress guarantee: every sub-component must be strictly
            # smaller, otherwise the candidate made no headway.
            if any(len(sub) >= len(component) for sub, _ in pieces):
                continue
            children: List[HypertreeNode] = []
            failed = False
            for sub, sub_connector in pieces:
                child = self._solve(sub, sub_connector)
                if child is None:
                    failed = True
                    break
                children.append(child)
            if failed:
                continue
            return HypertreeNode(chi=chi, lam=lam, children=children)
        return None


def det_k_decomp(
    hypergraph: Hypergraph,
    k: int,
    required_root_cover: Iterable[str] = (),
) -> Optional[Hypertree]:
    """Find a hypertree decomposition of width ≤ k, or None.

    Args:
        hypergraph: the query hypergraph H(Q).
        k: the width bound (the paper notes k = 4 suffices for database
            queries in practice).
        required_root_cover: variables the root χ must contain — pass
            out(Q) to satisfy Definition 2's condition 2.
    """
    return DetKDecomp(hypergraph, k).decompose(required_root_cover)


def hypertree_width(hypergraph: Hypergraph, max_k: int = 8) -> int:
    """Exact hypertree width via iterative deepening on det-k-decomp.

    Raises:
        DecompositionError: when the width exceeds ``max_k``.
    """
    if len(hypergraph) == 0:
        return 0
    for k in range(1, max_k + 1):
        if det_k_decomp(hypergraph, k) is not None:
            return k
    raise DecompositionError(
        f"hypertree width exceeds the search bound max_k={max_k}"
    )

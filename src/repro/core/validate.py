"""Decomposition validation with human-readable diagnostics.

The boolean checkers on :class:`repro.core.hypertree.Hypertree` answer
*whether* a condition holds; this module explains *where it fails* — which
edge is uncovered, which variable's occurrence set is disconnected, which
node breaks the Special Descendant Condition, which atom is joined nowhere.
Useful for debugging hand-built decompositions and for the test-suite's
negative cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.query.conjunctive import ConjunctiveQuery
from repro.core.hypertree import Hypertree, HypertreeNode


@dataclass
class Violation:
    """One diagnostic finding.

    Attributes:
        condition: short identifier ("edge-coverage", "connectedness",
            "chi-subset-lambda", "special-descendant", "output-cover",
            "atom-assignment", "guard-integrity").
        message: human-readable explanation.
        node_id: decomposition node involved, when applicable.
    """

    condition: str
    message: str
    node_id: Optional[int] = None

    def __str__(self) -> str:
        where = f" (node {self.node_id})" if self.node_id is not None else ""
        return f"[{self.condition}]{where} {self.message}"


@dataclass
class ValidationReport:
    """All violations found, grouped by severity-free condition ids."""

    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_condition(self, condition: str) -> List[Violation]:
        return [v for v in self.violations if v.condition == condition]

    def render(self) -> str:
        if self.ok:
            return "decomposition valid: no violations"
        return "\n".join(str(v) for v in self.violations)


def validate_decomposition(
    decomposition: Hypertree,
    query: Optional[ConjunctiveQuery] = None,
    require_hd_conditions: bool = False,
) -> ValidationReport:
    """Validate a decomposition, optionally against a query (Def. 2).

    Args:
        decomposition: the hypertree to check.
        query: when given, also check the q-HD requirements — out(Q)
            covered by the root's χ, and every atom assigned to some λ.
        require_hd_conditions: additionally check conditions 3 and 4 of
            Definition 1 (χ ⊆ var(λ), Special Descendant Condition) — these
            do NOT hold for optimized q-hypertree decompositions, by design.
    """
    report = ValidationReport()
    hypergraph = decomposition.hypergraph
    nodes = decomposition.nodes()

    # Condition 1: edge coverage.
    for edge_name in decomposition.uncovered_edges():
        report.violations.append(
            Violation(
                "edge-coverage",
                f"hyperedge {edge_name!r} is contained in no node's χ label",
            )
        )

    # Connectedness.
    holders: Dict[str, List[HypertreeNode]] = {}
    for node in nodes:
        for variable in node.chi:
            holders.setdefault(variable, []).append(node)
    for variable, nodes_with in holders.items():
        linked = sum(
            1
            for node in nodes_with
            if node.parent is not None and variable in node.parent.chi
        )
        if linked != len(nodes_with) - 1:
            report.violations.append(
                Violation(
                    "connectedness",
                    f"variable {variable!r} occurs in {len(nodes_with)} nodes "
                    f"but only {linked} of them connect to a parent holding it",
                )
            )

    if require_hd_conditions:
        for node in nodes:
            lam_vars = decomposition.lambda_variables(node)
            extra = node.chi - lam_vars
            if extra:
                report.violations.append(
                    Violation(
                        "chi-subset-lambda",
                        f"χ variables {sorted(extra)} not covered by λ",
                        node_id=node.node_id,
                    )
                )
            stray = (lam_vars & node.subtree_chi()) - node.chi
            if stray:
                report.violations.append(
                    Violation(
                        "special-descendant",
                        f"λ variables {sorted(stray)} reappear below but are "
                        "missing from this node's χ",
                        node_id=node.node_id,
                    )
                )

    if query is not None:
        out = query.output_variables
        if not out <= decomposition.root.chi:
            missing = sorted(out - decomposition.root.chi)
            report.violations.append(
                Violation(
                    "output-cover",
                    f"output variables {missing} missing from the root's χ "
                    "(Definition 2, condition 2)",
                    node_id=decomposition.root.node_id,
                )
            )
        placed = set()
        for node in nodes:
            placed.update(node.lam)
        for atom in query.atoms:
            if atom.variables and atom.name not in placed:
                report.violations.append(
                    Violation(
                        "atom-assignment",
                        f"atom {atom.name!r} occurs in no λ label: its "
                        "relation would never be joined",
                    )
                )

    # Guard integrity (set by Procedure Optimize).
    for node in nodes:
        for atom_name, guard in node.guards.items():
            if guard not in node.children:
                report.violations.append(
                    Violation(
                        "guard-integrity",
                        f"guard for removed atom {atom_name!r} is not a "
                        "child of the node",
                        node_id=node.node_id,
                    )
                )
            if atom_name in node.lam:
                report.violations.append(
                    Violation(
                        "guard-integrity",
                        f"atom {atom_name!r} has a guard but still sits in λ",
                        node_id=node.node_id,
                    )
                )
    return report

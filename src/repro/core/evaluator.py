"""Query evaluation over decompositions.

Three evaluators, matching §3.2 and §4 of the paper:

* :func:`yannakakis_boolean` — the classical bottom-up semijoin pass over a
  join tree (Boolean acyclic queries);
* :func:`yannakakis_acyclic` — the full three-phase Yannakakis algorithm
  (bottom-up semijoins, top-down semijoins, bottom-up joins) computing all
  answers of a non-Boolean acyclic query in input+output polynomial time;
* :class:`QHDEvaluator` — the paper's *q-hypertree evaluator* (steps
  P′/P″/P‴): one bottom-up pass over a q-hypertree decomposition whose
  root covers out(Q), joining Optimize-guard children before their
  siblings.

All evaluators consume *atom relations*: per query atom, its base relation
filtered by the pushed-down constant predicates and renamed so attributes
are CQ variables — see :func:`atom_relations`.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ExecutionError
from repro.hypergraph.jointree import JoinTreeNode, build_join_forest
from repro.metering import NULL_METER, SpillModel, WorkMeter
from repro.obs.tracing import NullTracer, Tracer, current_tracer
from repro.query.conjunctive import ConjunctiveQuery
from repro.relational.relation import Relation
from repro.resilience.context import current_context
from repro.core.hypertree import Hypertree, HypertreeNode

# ---------------------------------------------------------------------------
# Base scans live in the engine substrate; re-exported here for convenience.
# ---------------------------------------------------------------------------

from repro.engine.scans import atom_relations  # noqa: E402  (re-export)


def _constant_atoms_satisfiable(
    query: ConjunctiveQuery, relations: Mapping[str, Relation]
) -> bool:
    """Check atoms without variables: each must have a non-empty relation."""
    for atom in query.atoms:
        if not atom.variables and len(relations.get(atom.name, ())) == 0:
            return False
    return True


# ---------------------------------------------------------------------------
# Yannakakis over join trees (acyclic queries)
# ---------------------------------------------------------------------------


def yannakakis_boolean(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    meter: WorkMeter = NULL_METER,
) -> bool:
    """Boolean acyclic evaluation: bottom-up semijoins over a join forest.

    Returns True iff the query body is satisfiable on the given relations.
    Raises :class:`repro.errors.HypergraphError` when the query is cyclic.
    """
    hypergraph = query.hypergraph()
    if len(hypergraph) == 0:
        return _constant_atoms_satisfiable(query, relations)
    roots = build_join_forest(hypergraph)
    current = {name: relations[name] for name in hypergraph.edge_names}
    for root in roots:
        for node in root.postorder():
            rel = current[node.edge.name]
            for child in node.children:
                rel = rel.semijoin(current[child.edge.name], meter=meter)
            current[node.edge.name] = rel
        if len(current[root.edge.name]) == 0:
            return False
    return _constant_atoms_satisfiable(query, relations)


def yannakakis_acyclic(
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    meter: WorkMeter = NULL_METER,
) -> Relation:
    """Full three-phase Yannakakis evaluation of a non-Boolean acyclic query.

    (i) bottom-up semijoins, (ii) top-down semijoins, (iii) bottom-up joins
    projecting, at each node, onto the node's variables plus the output
    variables gathered from its subtree (§3.2 of the paper).
    """
    hypergraph = query.hypergraph()
    output = list(query.output)
    if len(hypergraph) == 0:
        satisfiable = _constant_atoms_satisfiable(query, relations)
        return Relation(output, [()] if satisfiable and not output else [])
    if not _constant_atoms_satisfiable(query, relations):
        return Relation(output, [])

    roots = build_join_forest(hypergraph)
    current: Dict[str, Relation] = {
        name: relations[name] for name in hypergraph.edge_names
    }
    out_set = frozenset(output)

    # Phase (i): bottom-up semijoins.
    for root in roots:
        for node in root.postorder():
            rel = current[node.edge.name]
            for child in node.children:
                rel = rel.semijoin(current[child.edge.name], meter=meter)
            current[node.edge.name] = rel

    # Phase (ii): top-down semijoins.
    for root in roots:
        for node in root.walk():
            rel = current[node.edge.name]
            for child in node.children:
                current[child.edge.name] = current[child.edge.name].semijoin(
                    rel, meter=meter
                )

    # Phase (iii): bottom-up joins with output projection.
    def eval_subtree(node: JoinTreeNode) -> Relation:
        rel = current[node.edge.name]
        for child in node.children:
            rel = rel.natural_join(eval_subtree(child), meter=meter)
        keep = [
            a
            for a in rel.attributes
            if a in node.edge.vertices or a in out_set
        ]
        return rel.project(keep, dedup=True, meter=meter)

    partials = [eval_subtree(root) for root in roots]
    answer = partials[0]
    for partial in partials[1:]:
        if len(partial) == 0:
            answer = Relation(answer.attributes, [])
            break
        answer = answer.natural_join(partial, meter=meter)
    ordered = [v for v in output if answer.has_attribute(v)]
    missing = [v for v in output if not answer.has_attribute(v)]
    if missing:
        raise ExecutionError(
            f"output variables missing from the answer: {missing}"
        )
    return answer.project(ordered, dedup=True, meter=meter)


# ---------------------------------------------------------------------------
# The q-hypertree evaluator (P′ / P″ / P‴)
# ---------------------------------------------------------------------------


class QHDEvaluator:
    """Single-pass bottom-up evaluation of a q-hypertree decomposition.

    Step P′: at each node, join the λ atoms' relations (smallest first) and
    project onto χ(p).  Step P″: bottom-up over the tree, join each node
    with its children — Optimize-guard children *first* — projecting onto
    χ(p) after every child.  Step P‴: project the root onto out(Q).

    The per-child projection onto χ(p) is what keeps intermediate results
    bounded: since out(Q) ⊆ χ(root), no information needed by the answer is
    ever discarded (feature (a) of Definition 2).
    """

    def __init__(
        self,
        decomposition: Hypertree,
        query: ConjunctiveQuery,
        meter: WorkMeter = NULL_METER,
        spill: Optional[SpillModel] = None,
        tracer: "Optional[Union[Tracer, NullTracer]]" = None,
    ):
        self.decomposition = decomposition
        self.query = query
        self.meter = meter
        self.spill = spill
        self.tracer = tracer if tracer is not None else current_tracer()
        self._trace: List[str] = []

    # ------------------------------------------------------------------

    def evaluate(self, relations: Mapping[str, Relation]) -> Relation:
        """Run P′+P″+P‴ and return the answer relation (set semantics).

        Args:
            relations: atom name → variable-named relation (see
                :func:`atom_relations`).
        """
        output = list(self.query.output)
        if not _constant_atoms_satisfiable(self.query, relations):
            return Relation(output, [])
        root_rel = self._evaluate_node(
            self.decomposition.root, relations, keep=None
        )
        if root_rel is None:
            raise ExecutionError(
                "decomposition root produced no relation (empty λ and no children)"
            )
        missing = [v for v in output if not root_rel.has_attribute(v)]
        if missing:
            raise ExecutionError(
                f"output variables missing at the decomposition root: {missing} "
                "(the root must cover out(Q) — Definition 2, condition 2)"
            )
        return root_rel.project(output, dedup=True, meter=self.meter)

    # ------------------------------------------------------------------

    def _evaluate_node(
        self,
        node: HypertreeNode,
        relations: Mapping[str, Relation],
        keep: "Optional[FrozenSet[str]]" = None,
    ) -> Optional[Relation]:
        current_context().checkpoint("exec.qhd")
        with self.tracer.span(
            "qhd.node",
            meter=self.meter,
            node=node.node_id,
            atoms=len(node.lam),
            children=len(node.children),
        ) as span:
            folds_before = len(self._trace)
            rel = self._fold_node(node, relations, keep)
            span.tag(
                rows_out=len(rel) if rel is not None else 0,
                folds=len(self._trace) - folds_before,
            )
        return rel

    def _fold_node(
        self,
        node: HypertreeNode,
        relations: Mapping[str, Relation],
        keep: "Optional[FrozenSet[str]]" = None,
    ) -> Optional[Relation]:
        # Children are evaluated first (bottom-up), then steps P′/P″ fold
        # the node's λ relations and its children's results.  The paper
        # leaves the topological order free ("there are different ways of
        # evaluating Q w.r.t. HD, depending on the choice of the
        # topological order"); we exploit that freedom: Optimize-guard
        # children are folded first (the §4.1 soundness caveat), the other
        # sources greedily smallest-first.  After each join the result is
        # projected onto χ(p) plus whatever variables still link it to the
        # sources not yet folded.
        guard_ids = {id(child) for child in node.guards.values()}
        guard_rels: List[Relation] = []
        other_rels: List[Relation] = []
        for child in node.ordered_children():
            # A child's result only matters to this node through their
            # shared χ variables: everything else is dropped by this
            # node's projection anyway, so ask the child to return only
            # the interface (a legal choice of evaluation, and the one
            # that keeps intermediate results semijoin-sized).
            child_rel = self._evaluate_node(
                child, relations, keep=frozenset(child.chi & node.chi)
            )
            if child_rel is None:
                continue
            if id(child) in guard_ids:
                guard_rels.append(child_rel)
            else:
                other_rels.append(child_rel)
        other_rels.extend(relations[name] for name in node.lam)

        # Guard children are folded first (the §4.1 soundness caveat); the
        # remaining sources greedily — smallest among those sharing a
        # variable with the current result, to avoid cartesian steps.
        context = current_context()
        rel: Optional[Relation] = None
        pending = sorted(guard_rels, key=len) + sorted(other_rels, key=len)
        n_guards = len(guard_rels)
        while pending:
            context.checkpoint("exec.qhd")
            if n_guards > 0 or rel is None:
                index = 0
                n_guards = max(n_guards - 1, 0)
            else:
                attrs = set(rel.attributes)
                index = next(
                    (
                        i
                        for i, candidate in enumerate(pending)
                        if attrs & set(candidate.attributes)
                    ),
                    0,
                )
            source = pending.pop(index)
            rel = source if rel is None else rel.natural_join(source, meter=self.meter)
            context.account(len(rel), len(rel.attributes), "exec.qhd")
            if self.spill is not None:
                self.spill.charge(self.meter, len(rel))
            linking: set = set()
            for remaining in pending:
                linking.update(remaining.attributes)
            target = node.chi if keep is None else keep
            kept_attrs = [
                a
                for a in rel.attributes
                if a in target or a in linking or (keep is not None and a in node.chi and pending)
            ]
            rel = rel.project(kept_attrs, dedup=True, meter=self.meter)
            self._trace.append(
                f"node {node.node_id}: fold {source.name or 'child'} "
                f"-> {len(rel)} tuples"
            )
        return rel

    def trace(self) -> List[str]:
        """Evaluation log (node order, intermediate sizes) for EXPLAIN output."""
        return list(self._trace)


def evaluate_qhd(
    decomposition: Hypertree,
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    meter: WorkMeter = NULL_METER,
    spill: Optional[SpillModel] = None,
) -> Relation:
    """Convenience wrapper: run the q-hypertree evaluator once."""
    return QHDEvaluator(decomposition, query, meter, spill).evaluate(relations)


# ---------------------------------------------------------------------------
# Classic decomposition evaluation (S₂′ + S₂″) for comparison
# ---------------------------------------------------------------------------


def evaluate_hd_classic(
    decomposition: Hypertree,
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    meter: WorkMeter = NULL_METER,
    spill: Optional[SpillModel] = None,
) -> Relation:
    """The two-step evaluation of §3.2: materialize, then full Yannakakis.

    Step S₂′ joins each node's λ atoms and projects onto χ(p), producing an
    acyclic instance whose join tree is the decomposition tree itself; step
    S₂″ runs the three-phase Yannakakis algorithm on it.  Used as the
    baseline that q-hypertree evaluation (single pass, no steps (ii)/(iii))
    improves upon.
    """
    output = list(query.output)
    if not _constant_atoms_satisfiable(query, relations):
        return Relation(output, [])

    context = current_context()

    # S₂′: materialize node relations.
    node_rels: Dict[int, Relation] = {}
    for node in decomposition.root.walk():
        context.checkpoint("exec.classic")
        rel: Optional[Relation] = None
        for atom_rel in sorted((relations[n] for n in node.lam), key=len):
            rel = atom_rel if rel is None else rel.natural_join(atom_rel, meter=meter)
            if spill is not None:
                spill.charge(meter, len(rel))
        if rel is None:
            rel = Relation((), [()])
        keep = [a for a in rel.attributes if a in node.chi]
        node_rels[node.node_id] = rel.project(keep, dedup=True, meter=meter)

    out_set = frozenset(output)

    # S₂″ phase (i): bottom-up semijoins.
    for node in decomposition.root.postorder():
        rel = node_rels[node.node_id]
        for child in node.children:
            rel = rel.semijoin(node_rels[child.node_id], meter=meter)
        node_rels[node.node_id] = rel

    # Phase (ii): top-down semijoins.
    for node in decomposition.root.walk():
        rel = node_rels[node.node_id]
        for child in node.children:
            node_rels[child.node_id] = node_rels[child.node_id].semijoin(
                rel, meter=meter
            )

    # Phase (iii): bottom-up joins with output projection.
    def eval_subtree(node: HypertreeNode) -> Relation:
        rel = node_rels[node.node_id]
        for child in node.children:
            context.checkpoint("exec.classic")
            rel = rel.natural_join(eval_subtree(child), meter=meter)
            if spill is not None:
                spill.charge(meter, len(rel))
        keep = [a for a in rel.attributes if a in node.chi or a in out_set]
        return rel.project(keep, dedup=True, meter=meter)

    answer = eval_subtree(decomposition.root)
    missing = [v for v in output if not answer.has_attribute(v)]
    if missing:
        raise ExecutionError(f"output variables missing from the answer: {missing}")
    return answer.project(output, dedup=True, meter=meter)

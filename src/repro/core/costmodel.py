"""Quantitative cost model for decomposition search.

cost-k-decomp (§4.1) does not look for *any* width-≤k decomposition: among
normal-form decompositions it picks one minimizing an estimated evaluation
cost, computed from statistics on the data (cardinalities and per-attribute
distinct counts) with the standard textbook estimators [Garcia-Molina et
al.; Ioannidis]:

* join size:  |R ⋈ S| = |R| · |S| / Π_{a ∈ shared} max(V(R,a), V(S,a))
* equality filter selectivity: 1 / V(R, a)
* range filter selectivity: a fixed default (1/3), refined by min/max when
  available.

When no statistics exist the model degrades to uniform defaults, making the
search *purely structural* — this is the mode the paper uses for the
"statistics not (yet) available" scenario of Fig. 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DecompositionError
from repro.query.conjunctive import ConjunctiveQuery

DEFAULT_CARDINALITY = 1000.0
DEFAULT_DISTINCT = 100.0
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass
class AtomEstimate:
    """Statistical summary of one query atom's (filtered) base relation.

    Attributes:
        cardinality: estimated tuple count after pushed-down filters.
        distinct: per-variable distinct-value estimates.
    """

    cardinality: float
    distinct: Dict[str, float] = field(default_factory=dict)

    def distinct_of(self, variable: str) -> float:
        value = self.distinct.get(variable, DEFAULT_DISTINCT)
        return max(min(value, self.cardinality), 1.0)


@dataclass
class JoinEstimate:
    """Estimated size and per-variable distincts of an intermediate result."""

    cardinality: float
    distinct: Dict[str, float]

    def distinct_of(self, variable: str) -> float:
        value = self.distinct.get(variable, DEFAULT_DISTINCT)
        return max(min(value, self.cardinality), 1.0)


class DecompositionCostModel:
    """Estimates evaluation cost of decomposition nodes from statistics.

    Args:
        atom_estimates: per atom name, the statistical summary of its base
            relation (already reflecting pushed-down constant filters).
    """

    def __init__(self, atom_estimates: Mapping[str, AtomEstimate]):
        self.atom_estimates: Dict[str, AtomEstimate] = dict(atom_estimates)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def uniform(
        cls,
        query: ConjunctiveQuery,
        cardinality: float = DEFAULT_CARDINALITY,
        distinct: float = DEFAULT_DISTINCT,
    ) -> "DecompositionCostModel":
        """Purely structural mode: identical estimates for every atom."""
        estimates = {}
        for atom in query.atoms:
            estimates[atom.name] = AtomEstimate(
                cardinality=cardinality,
                distinct={v: min(distinct, cardinality) for v in atom.variables},
            )
        return cls(estimates)

    # ------------------------------------------------------------------
    # Atom access
    # ------------------------------------------------------------------

    def estimate_for(self, atom_name: str) -> AtomEstimate:
        try:
            return self.atom_estimates[atom_name]
        except KeyError:
            raise DecompositionError(
                f"no cost estimate registered for atom {atom_name!r}"
            ) from None

    def atom_as_join(self, atom_name: str) -> JoinEstimate:
        est = self.estimate_for(atom_name)
        return JoinEstimate(est.cardinality, dict(est.distinct))

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------

    @staticmethod
    def join(
        left: JoinEstimate,
        right: JoinEstimate,
        shared_variables: Iterable[str],
    ) -> JoinEstimate:
        """Textbook natural-join estimate over the shared variables."""
        size = left.cardinality * right.cardinality
        for variable in shared_variables:
            size /= max(left.distinct_of(variable), right.distinct_of(variable))
        size = max(size, 0.0)
        distinct: Dict[str, float] = {}
        for variable in set(left.distinct) | set(right.distinct):
            if variable in left.distinct and variable in right.distinct:
                estimate = min(left.distinct[variable], right.distinct[variable])
            else:
                estimate = left.distinct.get(
                    variable, right.distinct.get(variable, DEFAULT_DISTINCT)
                )
            distinct[variable] = max(min(estimate, size), 1.0)
        return JoinEstimate(size, distinct)

    def join_sequence(
        self, estimates: Sequence[JoinEstimate], variables_of: Sequence[FrozenSet[str]]
    ) -> Tuple[JoinEstimate, float]:
        """Estimate joining a sequence of inputs, greedily smallest-first.

        Returns the final estimate and the accumulated *cost* (sum of input
        and intermediate sizes — the C_out metric).
        """
        if not estimates:
            return JoinEstimate(1.0, {}), 0.0
        items = sorted(
            zip(estimates, variables_of), key=lambda pair: pair[0].cardinality
        )
        current, current_vars = items[0]
        cost = current.cardinality
        for estimate, variables in items[1:]:
            shared = current_vars & variables
            current = self.join(current, estimate, shared)
            current_vars = current_vars | variables
            cost += estimate.cardinality + current.cardinality
        return current, cost

    def project(self, estimate: JoinEstimate, keep: Iterable[str]) -> JoinEstimate:
        """Projection estimate: size bounded by the product of kept distincts."""
        keep_set = set(keep)
        distinct = {v: d for v, d in estimate.distinct.items() if v in keep_set}
        bound = 1.0
        for value in distinct.values():
            bound *= value
            if bound > estimate.cardinality:
                bound = estimate.cardinality
                break
        size = min(estimate.cardinality, max(bound, 1.0))
        return JoinEstimate(size, distinct)

    # ------------------------------------------------------------------
    # Decomposition-node costing (the weighting function of cost-k-decomp)
    # ------------------------------------------------------------------

    def node_estimate(
        self,
        lam_atoms: Sequence[str],
        atom_variables: Mapping[str, FrozenSet[str]],
        chi: FrozenSet[str],
    ) -> Tuple[JoinEstimate, float]:
        """Estimate computing one node's relation (step P′).

        Joins the λ atoms (smallest-first) and projects onto χ; returns the
        projected estimate and the join cost.
        """
        estimates = [self.atom_as_join(name) for name in lam_atoms]
        variables = [frozenset(atom_variables[name]) for name in lam_atoms]
        joined, cost = self.join_sequence(estimates, variables)
        projected = self.project(joined, chi)
        return projected, cost

    @staticmethod
    def stitch_cost(parent: JoinEstimate, child: JoinEstimate) -> float:
        """Cost of joining a child's relation into its parent (step P″)."""
        shared = set(parent.distinct) & set(child.distinct)
        out = DecompositionCostModel.join(parent, child, shared)
        return parent.cardinality + child.cardinality + out.cardinality

    @staticmethod
    def stitch(
        parent: JoinEstimate, child: JoinEstimate, chi: FrozenSet[str]
    ) -> JoinEstimate:
        """Resulting parent estimate after absorbing one child (projected to χ)."""
        shared = set(parent.distinct) & set(child.distinct)
        joined = DecompositionCostModel.join(parent, child, shared)
        keep = set(joined.distinct) & chi
        distinct = {v: d for v, d in joined.distinct.items() if v in keep}
        return JoinEstimate(joined.cardinality, distinct)

"""Normal-form (NF) conditions for hypertree decompositions.

cost-k-decomp restricts its search to *normal form* decompositions
(Scarcello–Greco–Leone, PODS'04; Gottlob–Leone–Scarcello, JCSS'02): their
number is polynomially bounded, which is what makes the minimum-cost search
tractable (L^LOGCFL, as the paper notes).  A decomposition is in normal
form when, for every node p and child c with subtree variables
``V_c = χ(T_c) \\ χ(p)``:

1. **one component**: V_c is exactly one [χ(p)]-vertex-component of H;
2. **tight χ**: χ(c) = var(λ(c)) ∩ (V_c ∪ frontier), where *frontier* is
   the set of χ(p)-variables appearing on edges that touch V_c (the
   component's connector — exactly the ``conn`` set the recursive searches
   thread through their subproblems);
3. **progress**: var(λ(c)) ∩ V_c ≠ ∅.

This is the normal form maintained by :mod:`repro.core.detkdecomp` and
:mod:`repro.core.costkdecomp` (a mild variant of GLS'02 Definition 5.1,
phrased over the searches' (component, connector) subproblems); the
test-suite asserts their outputs satisfy it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.hypergraph.algorithms import vertex_connected_components
from repro.hypergraph.hypergraph import Hypergraph
from repro.core.hypertree import Hypertree, HypertreeNode


def _subtree_variables(node: HypertreeNode) -> FrozenSet[str]:
    return node.subtree_chi()


def normal_form_violations(decomposition: Hypertree) -> List[str]:
    """All NF-condition violations, as human-readable strings."""
    hypergraph = decomposition.hypergraph
    violations: List[str] = []

    for node in decomposition.root.walk():
        components = vertex_connected_components(hypergraph, node.chi)
        for child in node.children:
            subtree_vars = _subtree_variables(child) - node.chi
            if not subtree_vars:
                violations.append(
                    f"node {node.node_id} → child {child.node_id}: the child "
                    "subtree introduces no new variables (condition 1)"
                )
                continue
            matching = [c for c in components if subtree_vars <= c]
            if not matching or matching[0] != subtree_vars:
                violations.append(
                    f"node {node.node_id} → child {child.node_id}: subtree "
                    f"variables {sorted(subtree_vars)} are not exactly one "
                    f"[χ(p)]-component (condition 1)"
                )
            # Frontier: χ(p)-variables on edges touching the component.
            frontier: Set[str] = set()
            for edge in hypergraph:
                if edge.vertices & subtree_vars:
                    frontier |= edge.vertices & node.chi
            lam_vars = decomposition.lambda_variables(child)
            expected_chi = lam_vars & (subtree_vars | frontier)
            if child.chi != expected_chi:
                violations.append(
                    f"child {child.node_id}: χ = {sorted(child.chi)} but the "
                    f"normal form requires var(λ) ∩ (V_c ∪ frontier) = "
                    f"{sorted(expected_chi)} (condition 2)"
                )
            if not lam_vars & subtree_vars:
                violations.append(
                    f"child {child.node_id}: λ touches none of the component "
                    "variables — no progress (condition 3)"
                )
    return violations


def is_normal_form(decomposition: Hypertree) -> bool:
    """True when the decomposition satisfies all three NF conditions."""
    return not normal_form_violations(decomposition)

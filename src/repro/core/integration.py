"""Tight coupling with the simulated PostgreSQL engine (Fig. 6).

The paper modifies PostgreSQL's *Optimizer handler* so that control no
longer passes to the built-in exhaustive/GEQO planners: the CQ Isolator and
Statistics Picker run first, then the HDBQO ViewsBuilder turns the
cost-k-decomp output into an executable plan, each subquery of which the
built-in engine executes.

Here the same is achieved through
:meth:`repro.engine.dbms.SimulatedDBMS.set_optimizer_handler`: after
:func:`install_structural_optimizer`, every ``run_sql`` call is planned by
the hybrid optimizer — completely transparently to the caller — with an
optional fallback to the built-in planner when no width-≤k decomposition
covers the output variables.

Two serving-layer amortizations live in the installed handler:

* the **cost model** built by :func:`cost_model_from_database` is cached
  per (statistics version, query text) — repeated runs of the same query
  reuse it instead of re-reading the statistics catalog;
* with a ``plan_cache``, the completed decomposition itself is cached
  under a canonical template fingerprint, so isomorphic repetitions (same
  shape, different constants or aliases) skip the cost-k-decomp search
  entirely.  Failures are cached too: a template known to have no width-≤k
  decomposition goes straight to the built-in fallback.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Optional, Tuple, Union

from repro.analysis.lockwitness import make_lock
from repro.errors import (
    DeadlineExceeded,
    DecompositionNotFound,
    InjectedFault,
    MemoryBudgetExceeded,
    WorkBudgetExceeded,
)
from repro.engine.dbms import OptimizerHandler, SimulatedDBMS
from repro.engine.scans import atom_relations
from repro.metering import WorkMeter
from repro.obs.insights.registry import NULL_INSIGHTS
from repro.obs.tracing import current_tracer
from repro.query.translate import TranslationResult
from repro.relational.relation import Relation
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.context import current_context
from repro.core.costmodel import DecompositionCostModel
from repro.core.evaluator import QHDEvaluator
from repro.core.optimizer import cost_model_from_database
from repro.core.qhd import q_hypertree_decomp

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.obs.insights.registry import InsightsRegistry, NullInsights
    from repro.service.metrics import ServiceMetrics
    from repro.service.plancache import PlanCache

_MODEL_CACHE_LIMIT = 256

#: Planning failures the degradation ladder absorbs.  Anything else (schema
#: errors, query errors, genuine bugs) propagates to the caller untouched.
_LADDER_ERRORS = (
    DecompositionNotFound,
    DeadlineExceeded,
    WorkBudgetExceeded,
    MemoryBudgetExceeded,
    InjectedFault,
)


class _InsightScope:
    """Per-query carrier between the handler body and its insights wrapper.

    The body knows the template key, the degradation step taken, and the
    serving span ids; the wrapper knows the end-to-end latency and the
    final outcome.  One mutable scope hands the former to the latter
    without re-computing the fingerprint.
    """

    __slots__ = ("key", "degraded_to", "span_ids")

    def __init__(self) -> None:
        self.key: Optional[str] = None
        self.degraded_to: Optional[str] = None
        self.span_ids: list = []


def _span_subtree(tracer, root_ids) -> list:
    """Finished-span records under the given serving span ids.

    The slow-query log's evidence capture: the ``serve.plan`` /
    ``serve.execute`` spans of one query plus every descendant
    (``decompose.*``, ``qhd.node``, ``exec.*``).  Runs only on slow-log
    admission — bounded by the log's top-K — never on the hot path.
    """
    roots = {span_id for span_id in root_ids if span_id}
    if not roots:
        return []
    spans = tracer.spans()
    children: dict = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    selected = []
    frontier = [span for span in spans if span.span_id in roots]
    while frontier:
        span = frontier.pop()
        selected.append(span)
        frontier.extend(children.get(span.span_id, ()))
    selected.sort(key=lambda span: span.span_id)
    return [span.to_record() for span in selected]


def install_structural_optimizer(
    dbms: SimulatedDBMS,
    max_width: int = 4,
    fallback_to_builtin: bool = True,
    optimize: bool = True,
    plan_cache: "Optional[PlanCache]" = None,
    metrics: "Optional[ServiceMetrics]" = None,
    breaker: "Optional[CircuitBreaker]" = None,
    parallel_workers: int = 0,
    insights: "Optional[Union[InsightsRegistry, NullInsights]]" = None,
) -> OptimizerHandler:
    """Replace the engine's optimizer handler with the structural pipeline.

    Args:
        dbms: the engine to couple with.
        max_width: the width bound k of cost-k-decomp.
        fallback_to_builtin: when no suitable decomposition exists, hand
            the query back to the built-in quantitative planner instead of
            failing (what a production coupling must do).
        optimize: run Procedure Optimize (disable for the Fig. 10 ablation).
        plan_cache: a :class:`repro.service.plancache.PlanCache`; when set,
            completed decompositions (and known failures) are cached under
            canonical template fingerprints and invalidated by statistics
            version.
        metrics: a :class:`repro.service.metrics.ServiceMetrics` receiving
            one planning event per handled query.
        breaker: a :class:`repro.resilience.breaker.CircuitBreaker` keyed
            by template fingerprint; templates whose planning keeps failing
            skip the cost-k-decomp search (straight to the ladder's
            fallback steps) until the cooldown elapses.
        parallel_workers: ``>= 2`` evaluates decompositions on that many
            pool workers (:class:`repro.parallel.ParallelQHDEvaluator`)
            with a per-request :class:`repro.parallel.NodeMemo`; ``0``/``1``
            keeps the serial evaluator, byte-identical to previous
            releases.
        insights: a per-template
            :class:`~repro.obs.insights.registry.InsightsRegistry`
            receiving one phase observation per planning/execution step
            (keyed by canonical template fingerprint), SLO outcomes, and
            slow-query captures with the query's span subtree; the
            default :data:`~repro.obs.insights.registry.NULL_INSIGHTS`
            makes every recording call a constant-time no-op with zero
            work-unit cost.

    The installed handler plans through a **degradation ladder**: (1) the
    cost-k-decomp search at ``max_width`` (cache-accelerated); on failure
    — no decomposition, deadline, work/memory budget, injected fault —
    (2) a cached structural plan at a *smaller* width bound (lookup +
    rename only, never a new search); (3) the built-in quantitative
    planner; (4) the original typed error.  Every step taken is recorded
    on the ``serve.plan`` span (``degraded_to``, ``breaker_open`` tags)
    and as a :class:`ServiceMetrics` counter.

    In parallel mode the ladder extends into *execution*: when evaluating
    the chosen decomposition fails with a ladder error, the handler
    retries once with a cached lower-width plan — passing the **same**
    per-request node memo, so every subtree the failed attempt already
    materialized (and the retry's tree shares) is reused instead of
    recomputed.  The memo never outlives the request, so plan-cache
    stats-version invalidation still governs freshness.

    Returns:
        The installed handler (also retained on the DBMS); call
        ``dbms.set_optimizer_handler(None)`` to uninstall.
    """
    # Cost models are pure functions of (statistics version, query); cache
    # them so a repeated query re-reads the statistics catalog zero times.
    model_cache: dict = {}
    model_lock = make_lock("integration.model_cache")

    # One shared two-tier pool for every request the handler serves;
    # node tasks never wait on other node tasks, so requests interleave
    # on it without deadlock risk.
    pool = None
    if parallel_workers >= 2:
        from repro.parallel import SubtreePool

        pool = SubtreePool(parallel_workers)

    def _model_for(
        engine: SimulatedDBMS, translation: TranslationResult, use_stats: bool
    ) -> DecompositionCostModel:
        version = engine.database.stats_version
        key = (
            version,
            use_stats,
            str(translation.query),
            tuple(
                (alias, tuple(str(f) for f in filters))
                for alias, filters in sorted(translation.atom_filters.items())
            ),
        )
        with model_lock:
            model = model_cache.get(key)
            if model is not None:
                return model
        model = cost_model_from_database(translation, engine.database, use_stats)
        with model_lock:
            # A statistics refresh orphans every older-version entry; purge
            # them (and cap growth) instead of letting them accumulate.
            stale = [k for k in model_cache if k[0] != version]
            if stale or len(model_cache) >= _MODEL_CACHE_LIMIT:
                for k in stale or list(model_cache):
                    del model_cache[k]
            model_cache[key] = model
        return model

    def _fingerprint(
        engine: SimulatedDBMS,
        translation: TranslationResult,
        use_stats: bool,
        k: int,
    ):
        """The canonical template fingerprint for a given width bound."""
        from repro.service.fingerprint import fingerprint_translation, schema_digest

        context = (
            f"schema={schema_digest(engine.database)};k={k};"
            f"opt={optimize};stats={use_stats}"
        )
        return fingerprint_translation(translation, context=context)

    def _cached_lower_k(
        engine: SimulatedDBMS, translation: TranslationResult, use_stats: bool
    ):
        """Ladder step 2: a cached decomposition at a smaller width bound.

        Lookup + rename only — never triggers a new search, so this step is
        effectively free.  Returns ``(decomposition, k)`` or ``(None, None)``.
        """
        from repro.service.fingerprint import rename_hypertree

        if plan_cache is None or plan_cache.capacity == 0:
            return None, None
        stats_version = engine.database.stats_version
        for lower in range(max_width - 1, 0, -1):
            fingerprint = _fingerprint(engine, translation, use_stats, lower)
            entry = plan_cache.lookup(fingerprint, stats_version)
            if entry is None or entry.failure:
                continue
            decomposition = rename_hypertree(
                entry.tree,
                fingerprint.inverse_var_map(),
                fingerprint.inverse_atom_map(),
                hypergraph=translation.query.hypergraph(),
            )
            return decomposition, lower
        return None, None

    def _structural_plan(
        engine: SimulatedDBMS, translation: TranslationResult, use_stats: bool
    ):
        """The decomposition for this query: cached, renamed, or fresh.

        Returns ``(decomposition_or_None, cache_hit, plan_units, seconds)``
        where ``None`` means "no width-≤k decomposition exists".
        """
        from repro.service.fingerprint import rename_hypertree

        started = time.perf_counter()
        stats_version = engine.database.stats_version

        def build_fresh(fingerprint=None):
            plan_meter = WorkMeter()
            model = _model_for(engine, translation, use_stats)
            try:
                decomposition = q_hypertree_decomp(
                    translation.query,
                    max_width,
                    cost_model=model,
                    optimize=optimize,
                    meter=plan_meter,
                )
            except DecompositionNotFound:
                if plan_cache is not None and fingerprint is not None:
                    plan_cache.store(fingerprint, None, stats_version)
                raise
            if plan_cache is not None and fingerprint is not None:
                canonical = rename_hypertree(
                    decomposition, fingerprint.var_map, fingerprint.atom_map
                )
                plan_cache.store(fingerprint, canonical, stats_version)
            return (
                decomposition,
                False,
                plan_meter.total,
                time.perf_counter() - started,
            )

        if plan_cache is None or plan_cache.capacity == 0:
            # capacity 0 = caching disabled: skip fingerprinting and
            # single-flight coalescing, plan every query independently.
            return build_fresh()

        fingerprint = _fingerprint(engine, translation, use_stats, max_width)
        current_context().checkpoint("plancache.get")
        entry = plan_cache.lookup(fingerprint, stats_version)
        if entry is None:
            # Single-flight: concurrent misses on one template coalesce —
            # the first holder builds and stores, the rest re-check and hit.
            with plan_cache.build_lock(fingerprint.key):
                entry = plan_cache.lookup(fingerprint, stats_version)
                if entry is None:
                    return build_fresh(fingerprint)
        if entry.failure:
            raise DecompositionNotFound(
                f"cached: no width-≤{max_width} decomposition for "
                "this template",
                width=max_width,
            )
        decomposition = rename_hypertree(
            entry.tree,
            fingerprint.inverse_var_map(),
            fingerprint.inverse_atom_map(),
            hypergraph=translation.query.hypergraph(),
        )
        return decomposition, True, 0, time.perf_counter() - started

    sink = insights if insights is not None else NULL_INSIGHTS

    def _handle(
        engine: SimulatedDBMS,
        translation: TranslationResult,
        meter: WorkMeter,
        scope: Optional[_InsightScope],
    ) -> Tuple[Relation, str, str]:
        tracer = current_tracer()
        use_stats = engine.database.has_statistics()
        decomposition = None
        cache_hit = False
        lower_k = None
        failure: Optional[BaseException] = None
        breaker_key = None
        with tracer.span("serve.plan", query=translation.query.name) as span:
            # Ladder step 1: cost-k-decomp at max_width — unless this
            # template's breaker is open (repeated planning failures).
            skip_search = False
            if breaker is not None or scope is not None:
                breaker_key = _fingerprint(
                    engine, translation, use_stats, max_width
                ).key
                span.tag(template=breaker_key)
                if scope is not None:
                    scope.key = breaker_key
                    scope.span_ids.append(span.span_id)
                if breaker is not None and not breaker.allow(breaker_key):
                    skip_search = True
                    span.tag(breaker_open=True)
                    if metrics is not None:
                        metrics.record_breaker_skip()
                    if scope is not None:
                        sink.record_event(breaker_key, "breaker_open")
            if not skip_search:
                try:
                    decomposition, cache_hit, plan_units, plan_seconds = (
                        _structural_plan(engine, translation, use_stats)
                    )
                except _LADDER_ERRORS as exc:
                    failure = exc
                    span.tag(cache_hit=False, error=type(exc).__name__)
                    if breaker is not None:
                        breaker.record_failure(breaker_key)
                    if scope is not None and breaker_key is not None:
                        sink.record_event(
                            breaker_key, f"plan_error:{type(exc).__name__}"
                        )
                else:
                    span.tag(cache_hit=cache_hit, plan_units=plan_units)
                    if breaker is not None:
                        breaker.record_success(breaker_key)
                    if scope is not None and breaker_key is not None:
                        sink.record_phase(
                            breaker_key, "decompose", plan_seconds, plan_units
                        )
            if decomposition is None:
                # Ladder step 2: a cached plan at a smaller width bound.
                decomposition, lower_k = _cached_lower_k(
                    engine, translation, use_stats
                )
                if decomposition is not None:
                    span.tag(degraded_to=f"lower-k({lower_k})")
                    if scope is not None and breaker_key is not None:
                        scope.degraded_to = f"lower-k({lower_k})"
                        sink.record_event(breaker_key, "degraded:lower-k")
                elif fallback_to_builtin:
                    span.tag(degraded_to="builtin", fallback=True)
                    if scope is not None and breaker_key is not None:
                        scope.degraded_to = "builtin"
                        sink.record_event(breaker_key, "degraded:builtin")

        if decomposition is None:
            # Ladder step 3: the built-in quantitative planner; step 4: the
            # original typed error when fallback is disabled.
            if metrics is not None:
                metrics.record_plan(cache_hit=False, fallback=True)
            if not fallback_to_builtin:
                if failure is not None:
                    raise failure
                raise DecompositionNotFound(
                    "circuit breaker open for this template and no cached "
                    "lower-width plan available",
                    width=max_width,
                )
            answer, plan_text, label = engine.plan_and_join(
                translation, meter, use_stats, optimizer_enabled=True
            )
            return (
                answer,
                f"(builtin fallback: {label})\n{plan_text}",
                "builtin-fallback",
            )
        if metrics is not None:
            if lower_k is not None:
                metrics.record_plan(cache_hit=True)
                metrics.record_degradation("lower-k")
            else:
                metrics.record_plan(
                    cache_hit=cache_hit, units=plan_units, seconds=plan_seconds
                )
        def _evaluate(tree, memo):
            base = atom_relations(
                translation.query, engine.database, translation, meter
            )
            if parallel_workers >= 2:
                from repro.parallel import ParallelQHDEvaluator

                return ParallelQHDEvaluator(
                    tree,
                    translation.query,
                    meter,
                    spill=engine.spill_model,
                    tracer=tracer,
                    workers=parallel_workers,
                    memo=memo,
                    pool=pool,
                ).evaluate(base)
            return QHDEvaluator(
                tree,
                translation.query,
                meter,
                spill=engine.spill_model,
                tracer=tracer,
            ).evaluate(base)

        exec_started = time.perf_counter() if scope is not None else 0.0
        exec_work_start = meter.total if scope is not None else 0
        with tracer.span(
            "serve.execute",
            meter=meter,
            query=translation.query.name,
            cache_hit=cache_hit,
        ) as span:
            if scope is not None and breaker_key is not None:
                span.tag(template=breaker_key)
                scope.span_ids.append(span.span_id)
            memo = None
            if parallel_workers >= 2:
                from repro.parallel import NodeMemo

                memo = NodeMemo()
            try:
                answer = _evaluate(decomposition, memo)
            except _LADDER_ERRORS:
                # Execution-level ladder rung (parallel mode only): retry
                # once with a cached lower-width plan, sharing the same
                # per-request memo so subtrees the failed attempt already
                # materialized are reused, not recomputed.
                if memo is None or lower_k is not None:
                    raise
                retry_tree, retry_k = _cached_lower_k(
                    engine, translation, use_stats
                )
                if retry_tree is None:
                    raise
                span.tag(exec_degraded_to=f"lower-k({retry_k})")
                if metrics is not None:
                    metrics.record_degradation("exec-lower-k")
                if scope is not None and breaker_key is not None:
                    scope.degraded_to = f"exec-lower-k({retry_k})"
                    sink.record_event(breaker_key, "degraded:exec-lower-k")
                answer = _evaluate(retry_tree, memo)
                decomposition, lower_k = retry_tree, retry_k
            if memo is not None:
                span.tag(memo_hits=memo.hits)
            span.tag(rows_out=len(answer))
        if scope is not None and breaker_key is not None:
            sink.record_phase(
                breaker_key,
                "execute",
                time.perf_counter() - exec_started,
                meter.total - exec_work_start,
            )
        if lower_k is not None:
            label = f"q-hd(k={lower_k})"
        else:
            label = "q-hd(cached)" if cache_hit else "q-hd"
        return answer, decomposition.render(), label

    def handler(
        engine: SimulatedDBMS, translation: TranslationResult, meter: WorkMeter
    ) -> Tuple[Relation, str, str]:
        if not sink.enabled:
            return _handle(engine, translation, meter, None)
        # Insights wrapper: end-to-end latency, SLO outcome, and (on
        # slow-log admission only) the expensive evidence capture.
        scope = _InsightScope()
        started = time.perf_counter()
        try:
            answer, plan_text, label = _handle(
                engine, translation, meter, scope
            )
        except Exception as exc:
            if scope.key is not None:
                seconds = time.perf_counter() - started
                sink.record_event(scope.key, f"error:{type(exc).__name__}")
                sink.record_outcome(scope.key, seconds, ok=False)
            raise
        seconds = time.perf_counter() - started
        if scope.key is not None:
            sink.record_outcome(scope.key, seconds, ok=True)
            if sink.qualifies_slow(scope.key, seconds):
                tracer = current_tracer()
                sink.record_slow(
                    scope.key,
                    seconds,
                    {
                        "query": translation.query.name,
                        "plan_label": label,
                        "degraded_to": scope.degraded_to,
                        "explain": plan_text,
                        "spans": _span_subtree(tracer, scope.span_ids),
                    },
                )
        return answer, plan_text, label

    dbms.set_optimizer_handler(handler)
    handler.parallel_pool = pool  # type: ignore[attr-defined]
    return handler

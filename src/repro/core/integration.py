"""Tight coupling with the simulated PostgreSQL engine (Fig. 6).

The paper modifies PostgreSQL's *Optimizer handler* so that control no
longer passes to the built-in exhaustive/GEQO planners: the CQ Isolator and
Statistics Picker run first, then the HDBQO ViewsBuilder turns the
cost-k-decomp output into an executable plan, each subquery of which the
built-in engine executes.

Here the same is achieved through
:meth:`repro.engine.dbms.SimulatedDBMS.set_optimizer_handler`: after
:func:`install_structural_optimizer`, every ``run_sql`` call is planned by
the hybrid optimizer — completely transparently to the caller — with an
optional fallback to the built-in planner when no width-≤k decomposition
covers the output variables.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import DecompositionNotFound
from repro.engine.dbms import OptimizerHandler, SimulatedDBMS
from repro.engine.scans import atom_relations
from repro.metering import WorkMeter
from repro.query.translate import TranslationResult
from repro.relational.relation import Relation
from repro.core.evaluator import QHDEvaluator
from repro.core.optimizer import cost_model_from_database
from repro.core.qhd import q_hypertree_decomp


def install_structural_optimizer(
    dbms: SimulatedDBMS,
    max_width: int = 4,
    fallback_to_builtin: bool = True,
    optimize: bool = True,
) -> OptimizerHandler:
    """Replace the engine's optimizer handler with the structural pipeline.

    Args:
        dbms: the engine to couple with.
        max_width: the width bound k of cost-k-decomp.
        fallback_to_builtin: when no suitable decomposition exists, hand
            the query back to the built-in quantitative planner instead of
            failing (what a production coupling must do).
        optimize: run Procedure Optimize (disable for the Fig. 10 ablation).

    Returns:
        The installed handler (also retained on the DBMS); call
        ``dbms.set_optimizer_handler(None)`` to uninstall.
    """

    def handler(
        engine: SimulatedDBMS, translation: TranslationResult, meter: WorkMeter
    ) -> Tuple[Relation, str]:
        use_stats = engine.database.has_statistics()
        model = cost_model_from_database(translation, engine.database, use_stats)
        try:
            decomposition = q_hypertree_decomp(
                translation.query, max_width, cost_model=model, optimize=optimize
            )
        except DecompositionNotFound:
            if not fallback_to_builtin:
                raise
            answer, plan_text, label = engine.plan_and_join(
                translation, meter, use_stats, optimizer_enabled=True
            )
            return answer, f"(builtin fallback: {label})\n{plan_text}"
        base = atom_relations(
            translation.query, engine.database, translation, meter
        )
        evaluator = QHDEvaluator(
            decomposition, translation.query, meter, spill=engine.spill_model
        )
        answer = evaluator.evaluate(base)
        return answer, decomposition.render()

    dbms.set_optimizer_handler(handler)
    return handler

"""Stand-alone mode: rewrite a query as SQL views over its decomposition.

The paper's prototype, used on top of an external DBMS, "rewrites the user
query in a set of SQL views (based on its structural decomposition), which
can be evaluated on top of any DBMS" (§5).  This module produces exactly
that artifact:

* one ``CREATE VIEW`` per decomposition node (post-order): the view joins
  the node's λ relations with the node's child views, equates every shared
  CQ variable, applies the pushed-down constant filters, and projects
  (DISTINCT) onto χ(p);
* a final statement re-expressing the original SELECT (aggregates, GROUP
  BY, ORDER BY, LIMIT) over the root view.

The produced SQL stays inside this library's own SQL subset, so
:func:`execute_view_plan` can run the stack on a :class:`SimulatedDBMS` —
the self-contained equivalent of pointing the rewriting at CommDB.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DecompositionError, QueryError, WorkBudgetExceeded
from repro.obs.tracing import current_tracer
from repro.resilience.context import current_context
from repro.query import ast
from repro.query.translate import TranslationResult
from repro.relational.schema import AttributeType, RelationSchema
from repro.core.hypertree import Hypertree, HypertreeNode


@dataclass
class SqlViewPlan:
    """The rewritten query: ordered view definitions plus the final SELECT.

    Attributes:
        views: ``(view_name, select_sql)`` in dependency (post-)order.
        final_sql: the SELECT over the root view producing the SQL answer.
        root_view: the root view's name.
        variable_columns: CQ variable → column name used inside the views.
    """

    views: List[Tuple[str, str]]
    final_sql: str
    root_view: str
    variable_columns: Dict[str, str]

    def create_statements(self) -> List[str]:
        return [f"CREATE VIEW {name} AS {sql};" for name, sql in self.views]

    def drop_statements(self) -> List[str]:
        return [f"DROP VIEW {name};" for name, _ in reversed(self.views)]

    def render(self) -> str:
        """The full script: CREATE VIEWs then the final SELECT."""
        return "\n".join(self.create_statements() + [self.final_sql + ";"])


def _sanitize_variables(variables: Sequence[str]) -> Dict[str, str]:
    """Map CQ variables to valid, unique SQL column names."""
    mapping: Dict[str, str] = {}
    used: Dict[str, int] = {}
    for variable in sorted(variables):
        base = re.sub(r"[^A-Za-z0-9_]", "_", variable).strip("_").lower() or "v"
        if not base[0].isalpha():
            base = "v_" + base
        if base in used:
            used[base] += 1
            name = f"{base}_{used[base]}"
        else:
            used[base] = 0
            name = base
        mapping[variable] = name
    return mapping


def decomposition_to_sql_views(
    decomposition: Hypertree,
    translation: TranslationResult,
    view_prefix: str = "hdv",
) -> SqlViewPlan:
    """Rewrite the translated query as decomposition-driven SQL views.

    Args:
        decomposition: a q-hypertree decomposition of the translated query
            (root covering out(Q); every atom assigned to some λ).
        translation: the SQL→CQ translation context.
        view_prefix: prefix of generated view names.
    """
    with current_tracer().span(
        "views.generate",
        nodes=len(decomposition),
        width=decomposition.width,
    ) as span:
        plan = _build_view_plan(decomposition, translation, view_prefix)
        span.tag(views=len(plan.views))
    return plan


def _build_view_plan(
    decomposition: Hypertree,
    translation: TranslationResult,
    view_prefix: str,
) -> SqlViewPlan:
    variables = sorted(translation.variable_bindings)
    columns = _sanitize_variables(variables)
    views: List[Tuple[str, str]] = []

    def view_name(node: HypertreeNode) -> str:
        return f"{view_prefix}_{node.node_id}"

    context = current_context()

    def build(node: HypertreeNode) -> str:
        context.checkpoint("views.generate")
        for child in node.children:
            build(child)

        # Sources: λ atoms (base tables) and child views.
        sources: List[str] = []
        var_sources: Dict[str, List[str]] = {}
        for atom_name in node.lam:
            atom = translation.query.atom(atom_name)
            if atom.relation == atom_name:
                sources.append(atom.relation)
            else:
                sources.append(f"{atom.relation} {atom_name}")
            for variable in atom.terms:
                assert isinstance(variable, str)
                column = translation.variable_bindings[variable][atom_name]
                var_sources.setdefault(variable, []).append(f"{atom_name}.{column}")
        for child in node.children:
            sources.append(view_name(child))
            for variable in sorted(child.chi):
                var_sources.setdefault(variable, []).append(
                    f"{view_name(child)}.{columns[variable]}"
                )
        if not sources:
            raise DecompositionError(
                f"decomposition node {node.node_id} has neither λ atoms nor "
                "children; cannot express it as a view"
            )

        # Join conditions: equate every pair of carriers of a shared variable.
        conditions: List[str] = []
        for variable in sorted(var_sources):
            carriers = var_sources[variable]
            for other in carriers[1:]:
                conditions.append(f"{carriers[0]} = {other}")

        # Constant filters of the λ atoms (idempotent across views).
        for atom_name in node.lam:
            for comparison in translation.atom_filters.get(atom_name, ()):
                conditions.append(_render_filter(comparison, atom_name))

        # Projection: χ(p), each variable from its first carrier.
        select_parts: List[str] = []
        for variable in sorted(node.chi):
            if variable not in var_sources:
                raise DecompositionError(
                    f"variable {variable!r} of χ({node.node_id}) is carried by "
                    "no λ atom or child view — invalid decomposition"
                )
            select_parts.append(f"{var_sources[variable][0]} AS {columns[variable]}")

        sql = "SELECT DISTINCT " + ", ".join(select_parts)
        sql += " FROM " + ", ".join(sources)
        if conditions:
            sql += " WHERE " + " AND ".join(conditions)
        views.append((view_name(node), sql))
        return view_name(node)

    root_view = build(decomposition.root)
    final_sql = _final_select(translation, root_view, columns)
    return SqlViewPlan(
        views=views,
        final_sql=final_sql,
        root_view=root_view,
        variable_columns=columns,
    )


def _render_filter(comparison, alias: str) -> str:
    """Render a constant filter with alias-qualified column references."""

    def render(expression: ast.Expression) -> str:
        if isinstance(expression, ast.ColumnRef):
            return f"{alias}.{expression.column}"
        if isinstance(expression, ast.Literal):
            return str(expression)
        if isinstance(expression, ast.BinaryOp):
            return (
                f"({render(expression.left)} {expression.op} "
                f"{render(expression.right)})"
            )
        raise QueryError(f"unsupported expression in filter: {expression}")

    if isinstance(comparison, ast.InList):
        inner = ", ".join(str(ast.Literal(v)) for v in comparison.values)
        return f"{render(comparison.expr)} IN ({inner})"
    return f"{render(comparison.left)} {comparison.op} {render(comparison.right)}"


def _final_select(
    translation: TranslationResult,
    root_view: str,
    columns: Mapping[str, str],
) -> str:
    """The original SELECT re-targeted at the root view."""
    query = translation.select_query

    def rewrite(expression: ast.Expression) -> ast.Expression:
        if isinstance(expression, ast.ColumnRef):
            variable = translation.resolve_variable(expression)
            return ast.ColumnRef(None, columns[variable])
        if isinstance(expression, ast.BinaryOp):
            return ast.BinaryOp(
                expression.op, rewrite(expression.left), rewrite(expression.right)
            )
        if isinstance(expression, ast.FuncCall):
            return ast.FuncCall(
                expression.name,
                tuple(
                    arg if isinstance(arg, ast.Star) else rewrite(arg)
                    for arg in expression.args
                ),
                distinct=expression.distinct,
            )
        return expression

    select_items = tuple(
        ast.SelectItem(rewrite(item.expr), item.alias or item.output_name)
        for item in query.select_items
        if not isinstance(item.expr, ast.Star)
    ) or (ast.SelectItem(ast.Star()),)
    group_by = tuple(
        ast.ColumnRef(None, columns[translation.resolve_variable(ref)])
        for ref in query.group_by
    )
    order_by = tuple(
        ast.OrderItem(_rewrite_order_expr(o.expr, translation, columns, query), o.descending)
        for o in query.order_by
    )
    rewritten = ast.SelectQuery(
        select_items=select_items,
        tables=(ast.TableRef(root_view, root_view),),
        predicates=(),
        group_by=group_by,
        order_by=order_by,
        distinct=query.distinct,
        limit=query.limit,
    )
    return rewritten.to_sql()


def _rewrite_order_expr(
    expression: ast.Expression,
    translation: TranslationResult,
    columns: Mapping[str, str],
    query: ast.SelectQuery,
) -> ast.Expression:
    if isinstance(expression, ast.ColumnRef):
        alias_names = {item.output_name for item in query.select_items}
        if expression.table is None and expression.column in alias_names:
            return ast.ColumnRef(None, expression.column)
        variable = translation.resolve_variable(expression)
        return ast.ColumnRef(None, columns[variable])
    raise QueryError(f"ORDER BY supports plain columns/aliases, got {expression}")


def _view_dependencies(
    views: "Sequence[Tuple[str, str]]",
) -> "Dict[str, List[str]]":
    """Which earlier views each view's SQL references, by name.

    View names are ordinary identifiers, so a word-boundary scan of the
    statement text is exact (the generator never embeds a view name in a
    string literal).
    """
    deps: "Dict[str, List[str]]" = {}
    earlier: List[str] = []
    for name, sql in views:
        pattern = re.compile(
            r"\b(" + "|".join(map(re.escape, earlier)) + r")\b"
        ) if earlier else None
        deps[name] = (
            sorted(set(pattern.findall(sql))) if pattern is not None else []
        )
        earlier.append(name)
    return deps


def _materialize_views_parallel(
    view_plan: SqlViewPlan,
    dbms,
    work_budget: "Optional[int]",
    workers: int,
    created: List[str],
) -> "Tuple[int, float]":
    """Materialize the view stack in dependency waves on a thread pool.

    Each wave holds every not-yet-built view whose referenced views are all
    materialized; statements in a wave run concurrently (queries are
    read-only over the shared database), then the wave's tables are created
    — and its work units summed — in the serial view order.  Results,
    created tables, and totals are identical to the serial loop; only wall
    clock differs.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.resilience.context import set_context

    context = current_context()
    deps = _view_dependencies(view_plan.views)
    order = [name for name, _ in view_plan.views]
    sql_of = dict(view_plan.views)
    total_work = 0
    total_elapsed = 0.0
    done: set = set()

    def run_view(sql: str, remaining: "Optional[int]"):
        # Workers inherit the caller's resilience context so deadlines,
        # cancellation, and fault injection keep reaching every statement.
        set_context(context)  # type: ignore[arg-type]
        try:
            return dbms.run_sql(sql, bypass_handler=True, work_budget=remaining)
        finally:
            set_context(None)

    with ThreadPoolExecutor(
        max_workers=max(2, workers), thread_name_prefix="hdqo-views"
    ) as pool:
        while len(done) < len(order):
            wave = [
                name
                for name in order
                if name not in done and all(d in done for d in deps[name])
            ]
            context.checkpoint("views.execute")
            remaining = None
            if work_budget is not None:
                remaining = work_budget - total_work
                if remaining <= 0:
                    raise WorkBudgetExceeded(
                        work_budget, total_work, phase="views.execute"
                    )
            futures = {
                name: pool.submit(run_view, sql_of[name], remaining)
                for name in wave
            }
            # Await the whole wave before touching the catalog: create_table
            # mutates shared state the in-flight statements read from.
            results = {name: futures[name].result() for name in wave}
            for name in wave:
                result = results[name]
                total_work += result.work
                total_elapsed += result.elapsed_seconds
                if not result.finished:
                    raise WorkBudgetExceeded(
                        work_budget, total_work, phase="views.execute"
                    )
                relation = result.relation
                if relation is None:
                    raise QueryError(f"view {name} did not finish")
                schema = RelationSchema.of(
                    name,
                    {attr: AttributeType.STRING for attr in relation.attributes},
                )
                dbms.database.create_table(schema, relation.tuples)
                created.append(name)
                done.add(name)
    return total_work, total_elapsed


def execute_view_plan(
    view_plan: SqlViewPlan,
    dbms,
    work_budget: "Optional[int]" = None,
    parallel_workers: int = 0,
) -> "DBMSResultLike":
    """Run the view stack on a :class:`repro.engine.dbms.SimulatedDBMS`.

    Materializes each view (in dependency order) as a temporary table, runs
    the final SELECT, then drops the temporaries.  Work units across all
    statements are summed — this is what the paper's stand-alone "q-HD on
    top of CommDB" total execution time measures (optimization time plus
    DBMS evaluation time).

    Args:
        work_budget: total work-unit budget across *all* statements; each
            statement runs under the remaining balance, so the stack aborts
            mid-view (raising :class:`~repro.errors.WorkBudgetExceeded`
            with the cumulative spend) rather than enforcing the budget
            only at statement boundaries.
        parallel_workers: ``>= 2`` runs *independent* views (no dependency
            path between them in the view stack) concurrently, in
            dependency waves.  Tables are still created — and work units
            summed — in the serial view order, so results and totals are
            identical to the serial path.  With a budget, enforcement
            moves to wave boundaries: each statement in a wave runs under
            the balance remaining when its wave started.
    """
    context = current_context()
    created: List[str] = []
    total_work = 0
    total_elapsed = 0.0
    try:
        if parallel_workers >= 2 and len(view_plan.views) > 1:
            total_work, total_elapsed = _materialize_views_parallel(
                view_plan, dbms, work_budget, parallel_workers, created
            )
        else:
            for name, sql in view_plan.views:
                context.checkpoint("views.execute")
                remaining = None
                if work_budget is not None:
                    remaining = work_budget - total_work
                    if remaining <= 0:
                        raise WorkBudgetExceeded(
                            work_budget, total_work, phase="views.execute"
                        )
                result = dbms.run_sql(
                    sql, bypass_handler=True, work_budget=remaining
                )
                total_work += result.work
                total_elapsed += result.elapsed_seconds
                if not result.finished:
                    raise WorkBudgetExceeded(
                        work_budget, total_work, phase="views.execute"
                    )
                relation = result.relation
                if relation is None:
                    raise QueryError(f"view {name} did not finish")
                schema = RelationSchema.of(
                    name,
                    {attr: AttributeType.STRING for attr in relation.attributes},
                )
                dbms.database.create_table(schema, relation.tuples)
                created.append(name)
        context.checkpoint("views.execute")
        remaining = None
        if work_budget is not None:
            remaining = work_budget - total_work
            if remaining <= 0:
                raise WorkBudgetExceeded(
                    work_budget, total_work, phase="views.execute"
                )
        final = dbms.run_sql(
            view_plan.final_sql, bypass_handler=True, work_budget=remaining
        )
        total_work += final.work
        total_elapsed += final.elapsed_seconds
        if not final.finished:
            raise WorkBudgetExceeded(work_budget, total_work, phase="views.execute")
        final.work = total_work
        final.elapsed_seconds = total_elapsed
        final.simulated_seconds = total_work * dbms.profile.work_time_factor
        return final
    finally:
        for name in reversed(created):
            dbms.database.drop_table(name)

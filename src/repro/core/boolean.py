"""Boolean (decision) query evaluation through decompositions.

§3.2 of the paper: for Boolean conjunctive queries, a hypertree
decomposition yields a pure semijoin program — materialize each node's
relation (step S₂′), then process the tree bottom-up with upward semijoins
(Yannakakis); the answer is *yes* iff the root relation is non-empty.  No
intermediate joins are ever computed, which gives the
O((m−1)·|r_max|^k · log|r_max|) bound the paper quotes.

This module provides that evaluator plus an EXISTS-style façade over SQL:
``is_satisfiable(sql, database)`` decides whether the query has any answer
without enumerating it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from repro.engine.scans import atom_relations
from repro.metering import NULL_METER, WorkMeter
from repro.query import ast
from repro.query.conjunctive import ConjunctiveQuery
from repro.query.parser import parse_sql
from repro.query.translate import sql_to_conjunctive
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.core.costmodel import DecompositionCostModel
from repro.core.costkdecomp import cost_k_decomp
from repro.core.hypertree import Hypertree
from repro.core.qhd import assign_atoms


def evaluate_hd_boolean(
    decomposition: Hypertree,
    query: ConjunctiveQuery,
    relations: Mapping[str, Relation],
    meter: WorkMeter = NULL_METER,
) -> bool:
    """Boolean evaluation over a decomposition: S₂′ + upward semijoins.

    Args:
        decomposition: any decomposition whose λ labels include every atom
            (run :func:`repro.core.qhd.assign_atoms` first when unsure).
        query: the (Boolean or not) conjunctive query — the head is ignored.
        relations: atom name → variable-named relation.

    Returns:
        True iff the query body is satisfiable on the given relations.
    """
    # Constant-only atoms act as global guards.
    for atom in query.atoms:
        if not atom.variables and len(relations.get(atom.name, ())) == 0:
            return False

    # S₂′: materialize node relations (join λ atoms, project onto χ).
    node_rels: Dict[int, Relation] = {}
    for node in decomposition.root.walk():
        rel: Optional[Relation] = None
        for atom_rel in sorted((relations[n] for n in node.lam), key=len):
            rel = atom_rel if rel is None else rel.natural_join(atom_rel, meter=meter)
        if rel is None:
            rel = Relation((), [()])
        keep = [a for a in rel.attributes if a in node.chi]
        node_rels[node.node_id] = rel.project(keep, dedup=True, meter=meter)

    # Bottom-up semijoin pass; empty at any point on the spine ⇒ No.
    for node in decomposition.root.postorder():
        rel = node_rels[node.node_id]
        for child in node.children:
            child_rel = node_rels[child.node_id]
            if len(child_rel) == 0:
                return False
            rel = rel.semijoin(child_rel, meter=meter)
        node_rels[node.node_id] = rel
    return len(node_rels[decomposition.root.node_id]) > 0


def is_satisfiable(
    sql: Union[str, ast.SelectQuery],
    database: Database,
    max_width: int = 4,
    meter: WorkMeter = NULL_METER,
) -> bool:
    """EXISTS over the conjunctive core of a SQL query.

    Decomposes the query's hypergraph (no output-cover constraint — this is
    the decision problem, so plain hypertree decompositions suffice) and
    runs the Boolean semijoin program.

    Raises:
        DecompositionNotFound: hypertree width exceeds ``max_width``.
    """
    from repro.errors import DecompositionNotFound

    parsed = parse_sql(sql) if isinstance(sql, str) else sql
    translation = sql_to_conjunctive(parsed, database.schema.as_mapping())
    query = translation.query.with_output(())

    hypergraph = query.hypergraph()
    if len(hypergraph) == 0:
        relations = atom_relations(query, database, translation, meter)
        return all(
            atom.variables or len(relations.get(atom.name, ())) > 0
            for atom in query.atoms
        )

    from repro.core.optimizer import cost_model_from_database

    model = cost_model_from_database(
        translation, database, use_statistics=database.has_statistics()
    )
    result = cost_k_decomp(hypergraph, max_width, model)
    if result is None:
        raise DecompositionNotFound(
            f"hypertree width of the query exceeds {max_width}", width=max_width
        )
    decomposition, _cost = result
    assign_atoms(decomposition, query)
    relations = atom_relations(query, database, translation, meter)
    return evaluate_hd_boolean(decomposition, query, relations, meter)

"""The paper's primary contribution.

* :mod:`repro.core.hypertree` — hypertrees ⟨T, χ, λ⟩ and the condition
  checkers for hypertree decompositions (Def. 1), generalized HDs, and
  query-oriented HDs (Def. 2);
* :mod:`repro.core.detkdecomp` — width-≤k decomposition search;
* :mod:`repro.core.costmodel` / :mod:`repro.core.costkdecomp` — the
  statistics-weighted minimum-cost search (the paper's cost-k-decomp,
  built on the PODS'04 weighted-decomposition ideas);
* :mod:`repro.core.qhd` — Algorithm q-HypertreeDecomp (Fig. 4): root
  covering out(Q), atom assignment, Procedure Optimize with guards;
* :mod:`repro.core.evaluator` — Yannakakis (Boolean and full) plus the
  single-pass q-hypertree evaluator (P′/P″/P‴);
* :mod:`repro.core.views` — decomposition → rewritten SQL views
  (stand-alone mode);
* :mod:`repro.core.optimizer` — the HybridOptimizer facade (Fig. 5);
* :mod:`repro.core.integration` — the tight coupling with the simulated
  PostgreSQL engine (Fig. 6).
"""

from repro.core.hypertree import Hypertree, HypertreeNode
from repro.core.detkdecomp import det_k_decomp, hypertree_width
from repro.core.costmodel import DecompositionCostModel
from repro.core.costkdecomp import cost_k_decomp
from repro.core.qhd import q_hypertree_decomp, procedure_optimize, assign_atoms
from repro.core.evaluator import (
    QHDEvaluator,
    atom_relations,
    evaluate_qhd,
    yannakakis_acyclic,
    yannakakis_boolean,
)
from repro.core.normalform import is_normal_form, normal_form_violations
from repro.core.validate import ValidationReport, Violation, validate_decomposition
from repro.core.views import decomposition_to_sql_views
from repro.core.optimizer import HybridOptimizer, OptimizedPlan
from repro.core.integration import install_structural_optimizer

__all__ = [
    "Hypertree",
    "HypertreeNode",
    "det_k_decomp",
    "hypertree_width",
    "DecompositionCostModel",
    "cost_k_decomp",
    "q_hypertree_decomp",
    "procedure_optimize",
    "assign_atoms",
    "QHDEvaluator",
    "atom_relations",
    "evaluate_qhd",
    "yannakakis_acyclic",
    "yannakakis_boolean",
    "is_normal_form",
    "normal_form_violations",
    "ValidationReport",
    "Violation",
    "validate_decomposition",
    "decomposition_to_sql_views",
    "HybridOptimizer",
    "OptimizedPlan",
    "install_structural_optimizer",
]

"""cost-k-decomp: minimum-cost normal-form decomposition search.

The fundamental module of the paper's architecture (Fig. 5).  It explores
the same subproblem space as det-k-decomp, but instead of returning the
first width-≤k decomposition it runs a dynamic program: for every
``(component, connector)`` subproblem it caches the *cheapest* subtree
under the statistics-driven weighting of
:class:`repro.core.costmodel.DecompositionCostModel` (following the
weighted hypertree decompositions of Scarcello–Greco–Leone, PODS'04).

Ties break deterministically: lower cost, then smaller width, then
lexicographic λ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.errors import DecompositionError
from repro.hypergraph.hypergraph import Hypergraph
from repro.metering import NULL_METER, WorkMeter
from repro.obs.tracing import current_tracer
from repro.resilience.context import current_context
from repro.core.costmodel import DecompositionCostModel, JoinEstimate
from repro.core.detkdecomp import _candidate_separators, _split
from repro.core.hypertree import Hypertree, HypertreeNode


@dataclass
class _Best:
    """Cached best solution of one (component, connector) subproblem."""

    cost: float
    width: int
    estimate: JoinEstimate  # estimate of the node relation handed to the parent
    node: HypertreeNode

    def key(self, lam: Tuple[str, ...]) -> Tuple[float, int, Tuple[str, ...]]:
        return (self.cost, self.width, lam)


class CostKDecomp:
    """Min-cost decomposition search with DP memoization."""

    def __init__(
        self,
        hypergraph: Hypergraph,
        k: int,
        cost_model: DecompositionCostModel,
        output_weight: float = 0.0,
        output_variables: Iterable[str] = (),
        meter: WorkMeter = NULL_METER,
    ):
        """Args:
            output_weight: weight of the *aggregation term* — the paper's
                future-work extension ("aggregate predicates can be included
                in the cost model").  When positive, the root candidate's
                cost additionally charges ``weight × |answer estimate|``,
                modelling the post-processing scan that computes aggregates
                and GROUP BY over the answer.
            output_variables: out(Q); the answer estimate is the root
                relation projected onto these.
            meter: charged one ``"plan"`` work unit per candidate separator
                evaluated — a deterministic, machine-independent measure of
                planning effort (the serving layer's cache-hit benchmark
                compares it cold vs warm).
        """
        if k < 1:
            raise DecompositionError("width bound k must be at least 1")
        self.hypergraph = hypergraph
        self.k = k
        self.cost_model = cost_model
        self.output_weight = output_weight
        self.output_variables = frozenset(output_variables)
        self.meter = meter
        self.atom_variables: Dict[str, FrozenSet[str]] = {
            edge.name: edge.vertices for edge in hypergraph
        }
        self._root_key: Optional[Tuple[FrozenSet[str], FrozenSet[str]]] = None
        self._memo: Dict[
            Tuple[FrozenSet[str], FrozenSet[str]], Optional[_Best]
        ] = {}
        # Search statistics, reported on the "decompose.search" span (and
        # free to read afterwards): candidate separators evaluated, pruned
        # (no strictly shrinking split, or an unsolvable sub-component),
        # and DP memo hits.
        self.candidates = 0
        self.pruned = 0
        self.memo_hits = 0
        # The search is exponential in k; every candidate separator is a
        # cooperative abort point (deadline/cancel/fault) for the serving
        # layer's resilience context.
        self._context = current_context()

    # ------------------------------------------------------------------

    def decompose(
        self, required_root_cover: Iterable[str] = ()
    ) -> Optional[Tuple[Hypertree, float]]:
        """Search for the cheapest width-≤k decomposition.

        Returns ``(hypertree, estimated_cost)`` or None when no width-≤k
        decomposition with the required root cover exists.
        """
        all_edges = frozenset(edge.name for edge in self.hypergraph)
        cover = frozenset(required_root_cover)
        unknown = cover - self.hypergraph.vertices
        if unknown:
            raise DecompositionError(
                f"required root-cover variables not in hypergraph: {sorted(unknown)}"
            )
        if not all_edges:
            root = HypertreeNode(chi=cover, lam=())
            return Hypertree(root, self.hypergraph), 0.0
        self._root_key = (all_edges, cover)
        with current_tracer().span(
            "decompose.search",
            meter=self.meter,
            k=self.k,
            edges=len(all_edges),
            variables=len(self.hypergraph.vertices),
        ) as span:
            best = self._solve(all_edges, cover)
            span.tag(
                candidates=self.candidates,
                pruned=self.pruned,
                memo_hits=self.memo_hits,
                subproblems=len(self._memo),
                found=best is not None,
            )
            if best is not None:
                span.tag(cost=round(best.cost, 3), width=best.width)
        if best is None:
            return None
        return Hypertree(best.node.clone(), self.hypergraph), best.cost

    # ------------------------------------------------------------------

    def _solve(
        self, component: FrozenSet[str], connector: FrozenSet[str]
    ) -> Optional[_Best]:
        key = (component, connector)
        if key in self._memo:
            self.memo_hits += 1
            return self._memo[key]
        # Guard against re-entrancy; the subproblem ordering is acyclic
        # because sub-components strictly shrink, so a plain None marker is
        # only a safety net.
        self._memo[key] = None
        result = self._search(component, connector)
        self._memo[key] = result
        return result

    def _search(
        self, component: FrozenSet[str], connector: FrozenSet[str]
    ) -> Optional[_Best]:
        component_vars = self.hypergraph.variables_of(component)
        best: Optional[_Best] = None
        best_key: Optional[Tuple[float, int, Tuple[str, ...]]] = None

        for lam in _candidate_separators(
            self.hypergraph, component, connector, self.k
        ):
            self._context.checkpoint("decompose.search")
            self.meter.charge(1, "plan")
            self.candidates += 1
            lam_vars = self.hypergraph.variables_of(lam)
            chi = lam_vars & (connector | component_vars)
            pieces = _split(self.hypergraph, component, chi)
            if any(len(sub) >= len(component) for sub, _ in pieces):
                self.pruned += 1
                continue

            node_estimate, node_cost = self.cost_model.node_estimate(
                lam, self.atom_variables, chi
            )
            total_cost = node_cost
            children: List[HypertreeNode] = []
            current = node_estimate
            feasible = True
            for sub, sub_connector in pieces:
                child_best = self._solve(sub, sub_connector)
                if child_best is None:
                    feasible = False
                    break
                children.append(child_best.node)
                total_cost += child_best.cost
                total_cost += self.cost_model.stitch_cost(
                    current, child_best.estimate
                )
                current = self.cost_model.stitch(
                    current, child_best.estimate, chi
                )
            if not feasible:
                self.pruned += 1
                continue

            if (
                self.output_weight > 0.0
                and self._root_key == (component, connector)
            ):
                answer = self.cost_model.project(
                    current, self.output_variables & chi
                )
                total_cost += self.output_weight * answer.cardinality

            width = max(
                [len(lam)] + [self._subtree_width(c) for c in children]
            )
            candidate = _Best(
                cost=total_cost,
                width=width,
                estimate=self.cost_model.project(current, chi),
                node=HypertreeNode(
                    chi=chi, lam=lam, children=[c.clone() for c in children]
                ),
            )
            candidate_key = candidate.key(lam)
            if best_key is None or candidate_key < best_key:
                best, best_key = candidate, candidate_key
        return best

    @staticmethod
    def _subtree_width(node: HypertreeNode) -> int:
        return max(len(n.lam) for n in node.walk())


def cost_k_decomp(
    hypergraph: Hypergraph,
    k: int,
    cost_model: DecompositionCostModel,
    required_root_cover: Iterable[str] = (),
    output_weight: float = 0.0,
    meter: WorkMeter = NULL_METER,
) -> Optional[Tuple[Hypertree, float]]:
    """Find the cheapest width-≤k hypertree decomposition under a cost model.

    Args:
        hypergraph: the query hypergraph.
        k: width bound.
        cost_model: statistics-driven weighting (use
            :meth:`DecompositionCostModel.uniform` for purely structural
            search).
        required_root_cover: variables the root χ must contain (out(Q)).
        output_weight: aggregate-term weight (the paper's future-work
            extension); > 0 charges the estimated answer size at the root.
        meter: charged ``"plan"`` work units, one per candidate separator.

    Returns:
        ``(hypertree, estimated_cost)`` or None.
    """
    search = CostKDecomp(
        hypergraph,
        k,
        cost_model,
        output_weight=output_weight,
        output_variables=required_root_cover,
        meter=meter,
    )
    return search.decompose(required_root_cover)

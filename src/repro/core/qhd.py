"""Algorithm q-HypertreeDecomp (Fig. 4 of the paper).

Pipeline:

1. compute a minimal (cost-weighted) normal-form hypertree decomposition
   whose root χ covers out(Q) — :mod:`repro.core.costkdecomp` with
   ``required_root_cover=out(Q)``;
2. **assign atoms**: make sure every query atom occurs in some λ label, so
   every relation's predicate is applied during evaluation (a decomposition
   guarantees χ-*coverage* of each hyperedge, which is weaker);
3. run **Procedure Optimize**: delete an atom ``a`` from λ(p) whenever some
   child q carries an atom ``b`` with ``a ∩ χ(p) ⊆ b ∩ χ(q)`` — the child
   bounds a's variables, so joining a at p is wasted work.  The deleting
   node records q as the *guard*; the evaluator joins guard children first
   (the paper's topological-order caveat, end of §4.1).

Soundness guard: Optimize never deletes the **last** λ-occurrence of an
atom across the whole tree.  The paper's procedure implicitly preserves one
occurrence (its normal-form decompositions repeat atoms to satisfy
χ ⊆ var(λ)); making the guard explicit keeps arbitrary inputs sound.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import DecompositionError, DecompositionNotFound
from repro.hypergraph.hypergraph import Hypergraph
from repro.metering import NULL_METER, WorkMeter
from repro.obs.tracing import current_tracer
from repro.query.conjunctive import ConjunctiveQuery
from repro.resilience.context import current_context
from repro.core.costkdecomp import cost_k_decomp
from repro.core.costmodel import DecompositionCostModel
from repro.core.detkdecomp import det_k_decomp
from repro.core.hypertree import Hypertree, HypertreeNode


def assign_atoms(decomposition: Hypertree, query: ConjunctiveQuery) -> int:
    """Ensure every query atom occurs in some λ label (in place).

    Every hyperedge is χ-covered by some node (condition 1); for each atom
    missing from all λ labels, append it to the λ of a covering node —
    preferring the node with the smallest χ, a proxy for the cheapest join
    site.  Appending an atom whose variables are inside χ(p) does not grow
    χ, so all decomposition conditions are preserved; the reported *width*
    may grow, which is the price Definition 2 accepts (see Example 4).

    Returns the number of atoms newly assigned to a λ label.
    """
    context = current_context()
    assigned = 0
    present = set()
    for node in decomposition.root.walk():
        present.update(node.lam)
    hypergraph = decomposition.hypergraph
    for atom in query.atoms:
        context.checkpoint("decompose.assign")
        if atom.name in present:
            continue
        if not hypergraph.has_edge(atom.name):
            # Atoms with no variables (pure constant filters) have no edge;
            # they are applied on base scans, not in the decomposition.
            if not atom.variables:
                continue
            raise DecompositionError(
                f"atom {atom.name!r} has no hyperedge in the decomposition's "
                "hypergraph; was the decomposition built for this query?"
            )
        vertices = hypergraph.edge(atom.name).vertices
        candidates = [
            node for node in decomposition.root.walk() if vertices <= node.chi
        ]
        if not candidates:
            raise DecompositionError(
                f"hyperedge {atom.name!r} is not covered by any χ label — "
                "not a valid decomposition for this query"
            )
        target = min(candidates, key=lambda n: (len(n.chi), n.node_id))
        target.lam = target.lam + (atom.name,)
        present.add(atom.name)
        assigned += 1
    return assigned


def procedure_optimize(decomposition: Hypertree) -> int:
    """Procedure Optimize of Fig. 4 (in place); returns number of deletions.

    Walks the tree from the root.  For each node p and atom a ∈ λ(p): if
    there is a child q and an atom b ∈ λ(q) with a ∩ χ(p) ⊆ b ∩ χ(q), the
    occurrence of a at p is redundant — remove it and record q as its
    guard.  The last remaining occurrence of an atom in the whole tree is
    never removed (soundness; see module docstring).
    """
    context = current_context()
    hypergraph = decomposition.hypergraph
    occurrences: Dict[str, int] = {}
    for node in decomposition.root.walk():
        for name in node.lam:
            occurrences[name] = occurrences.get(name, 0) + 1

    removed = 0

    def optimize(node: HypertreeNode) -> None:
        nonlocal removed
        context.checkpoint("decompose.optimize")
        kept: List[str] = []
        for atom_name in node.lam:
            guard = _find_guard(hypergraph, node, atom_name)
            if guard is not None and occurrences[atom_name] > 1:
                node.guards[atom_name] = guard
                occurrences[atom_name] -= 1
                removed += 1
            else:
                kept.append(atom_name)
        node.lam = tuple(kept)
        for child in node.children:
            optimize(child)

    optimize(decomposition.root)
    return removed


def _find_guard(
    hypergraph: Hypergraph, node: HypertreeNode, atom_name: str
) -> Optional[HypertreeNode]:
    """The child whose λ subsumes ``atom_name``'s bounding role at ``node``."""
    bound_here = hypergraph.edge(atom_name).vertices & node.chi
    for child in node.children:
        for other in child.lam:
            if other == atom_name:
                continue
            if bound_here <= (hypergraph.edge(other).vertices & child.chi):
                return child
        # An occurrence of the very same atom in the child also guards it.
        if atom_name in child.lam and bound_here <= (
            hypergraph.edge(atom_name).vertices & child.chi
        ):
            return child
    return None


def q_hypertree_decomp(
    query: ConjunctiveQuery,
    k: int,
    cost_model: Optional[DecompositionCostModel] = None,
    optimize: bool = True,
    output_weight: float = 0.0,
    meter: WorkMeter = NULL_METER,
) -> Hypertree:
    """Algorithm q-HypertreeDecomp: a *good* q-hypertree decomposition of Q.

    Args:
        query: the conjunctive query (its head defines the root cover).
        k: width bound (the paper suggests k = 4 for database queries).
        cost_model: statistics weighting; defaults to the uniform
            (purely structural) model.
        optimize: run Procedure Optimize (Fig. 4).  Disable to measure its
            impact — the paper's Fig. 10 ablation.
        output_weight: weight of the aggregate term in the cost model (the
            paper's future-work extension; 0 disables it).
        meter: charged ``"plan"`` work units by the cost-k-decomp search —
            the deterministic planning-effort measure the serving layer's
            plan cache amortizes.

    Returns:
        A rooted :class:`Hypertree` whose root χ covers out(Q), with every
        atom assigned to a λ label and (optionally) Optimize applied.

    Raises:
        DecompositionNotFound: no width-≤k decomposition of H(Q) satisfies
            condition 2 of Definition 2 ("Failure" in Fig. 4).
    """
    hypergraph = query.hypergraph()
    if len(hypergraph) == 0:
        raise DecompositionError(
            "query has no atoms with variables; nothing to decompose"
        )
    tracer = current_tracer()
    with tracer.span(
        "decompose.qhd", meter=meter, k=k, atoms=len(query.atoms)
    ) as qhd_span:
        model = cost_model or DecompositionCostModel.uniform(query)
        result = cost_k_decomp(
            hypergraph,
            k,
            model,
            required_root_cover=query.output_variables,
            output_weight=output_weight,
            meter=meter,
        )
        if result is None:
            raise DecompositionNotFound(
                f"no hypertree decomposition of width ≤ {k} covers the output "
                f"variables {sorted(query.output_variables)} at one node",
                width=k,
            )
        decomposition, _cost = result
        with tracer.span("decompose.assign", meter=meter) as span:
            assigned = assign_atoms(decomposition, query)
            span.tag(assigned=assigned)
        if optimize:
            with tracer.span("decompose.optimize", meter=meter) as span:
                lambda_before = sum(
                    len(node.lam) for node in decomposition.root.walk()
                )
                removed = procedure_optimize(decomposition)
                span.tag(
                    removed=removed,
                    lambda_before=lambda_before,
                    lambda_after=lambda_before - removed,
                )
        qhd_span.tag(width=decomposition.width, nodes=len(decomposition))
    return decomposition

"""Hypertrees ⟨T, χ, λ⟩ and decomposition condition checkers.

A *hypertree* for a hypergraph H is a rooted tree whose nodes carry two
labels: χ(p) ⊆ var(H) and λ(p) ⊆ edges(H) (§3.1 of the paper).  The width
is max |λ(p)|.

The checkers implement, verbatim:

* Definition 1 (hypertree decomposition): edge coverage, connectedness,
  χ ⊆ var(λ), and the Special Descendant Condition;
* generalized hypertree decomposition: Definition 1 minus condition 4;
* Definition 2 (q-hypertree decomposition): edge coverage, an out(Q)-
  covering node, and connectedness — conditions 3/4 of Def. 1 dropped.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import DecompositionError
from repro.hypergraph.hypergraph import Hypergraph


class HypertreeNode:
    """One decomposition-tree node with its χ and λ labels.

    Attributes:
        chi: the variable label χ(p).
        lam: the edge label λ(p) — *edge names*, order preserved.
        children: child nodes.
        parent: parent node (None at the root).
        guards: filled by Procedure Optimize — maps a removed atom name to
            the child node whose λ-atom subsumes its bounding role; the
            evaluator joins guard children before other siblings.
    """

    _counter = itertools.count()

    __slots__ = ("node_id", "chi", "lam", "children", "parent", "guards")

    def __init__(
        self,
        chi: Iterable[str],
        lam: Iterable[str],
        children: Iterable["HypertreeNode"] = (),
    ):
        self.node_id = next(HypertreeNode._counter)
        self.chi: FrozenSet[str] = frozenset(chi)
        self.lam: Tuple[str, ...] = tuple(lam)
        self.children: List[HypertreeNode] = []
        self.parent: Optional[HypertreeNode] = None
        self.guards: Dict[str, "HypertreeNode"] = {}
        for child in children:
            self.add_child(child)

    def add_child(self, child: "HypertreeNode") -> None:
        child.parent = self
        self.children.append(child)

    # -- traversal -------------------------------------------------------

    def walk(self) -> Iterator["HypertreeNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def postorder(self) -> Iterator["HypertreeNode"]:
        for child in self.children:
            yield from child.postorder()
        yield self

    def subtree_chi(self) -> FrozenSet[str]:
        """χ(T_p): all variables in the subtree rooted here."""
        result: Set[str] = set()
        for node in self.walk():
            result |= node.chi
        return frozenset(result)

    def ordered_children(self) -> List["HypertreeNode"]:
        """Children with Optimize guards first (paper's topological caveat).

        When Procedure Optimize removed an atom from this node's λ because a
        child bounds its variables, that child must be joined before the
        other siblings, otherwise intermediate results may blow up
        exponentially (end of §4.1).
        """
        guard_ids = {id(node) for node in self.guards.values()}
        guards = [c for c in self.children if id(c) in guard_ids]
        rest = [c for c in self.children if id(c) not in guard_ids]
        return guards + rest

    def clone(self) -> "HypertreeNode":
        """Deep copy of the subtree rooted here (guards re-linked)."""
        copy = HypertreeNode(self.chi, self.lam)
        child_map: Dict[int, HypertreeNode] = {}
        for child in self.children:
            child_copy = child.clone()
            child_map[id(child)] = child_copy
            copy.add_child(child_copy)
        copy.guards = {
            atom: child_map[id(node)]
            for atom, node in self.guards.items()
            if id(node) in child_map
        }
        return copy

    def __repr__(self) -> str:
        return (
            f"HypertreeNode(chi={sorted(self.chi)}, lam={list(self.lam)}, "
            f"children={len(self.children)})"
        )


class Hypertree:
    """A hypertree for a hypergraph, i.e. a candidate decomposition.

    Args:
        root: the root node.
        hypergraph: the hypergraph being decomposed; checkers validate the
            λ labels against its edges.
    """

    def __init__(self, root: HypertreeNode, hypergraph: Hypergraph):
        self.root = root
        self.hypergraph = hypergraph
        for node in root.walk():
            for edge_name in node.lam:
                if not hypergraph.has_edge(edge_name):
                    raise DecompositionError(
                        f"λ label references unknown hyperedge {edge_name!r}"
                    )

    # -- basics ----------------------------------------------------------

    def nodes(self) -> List[HypertreeNode]:
        return list(self.root.walk())

    def __len__(self) -> int:
        return sum(1 for _ in self.root.walk())

    @property
    def width(self) -> int:
        """max_p |λ(p)| — the hypertree width of this decomposition."""
        return max(len(node.lam) for node in self.root.walk())

    def lambda_variables(self, node: HypertreeNode) -> FrozenSet[str]:
        """var(λ(p)) for a node of this tree."""
        return self.hypergraph.variables_of(node.lam)

    def clone(self) -> "Hypertree":
        return Hypertree(self.root.clone(), self.hypergraph)

    def atom_occurrences(self) -> Dict[str, List[HypertreeNode]]:
        """Map each hyperedge name to the nodes whose λ contains it."""
        occurrences: Dict[str, List[HypertreeNode]] = {}
        for node in self.root.walk():
            for edge_name in node.lam:
                occurrences.setdefault(edge_name, []).append(node)
        return occurrences

    # -- condition checkers ------------------------------------------------

    def covers_all_edges(self) -> bool:
        """Condition 1: every hyperedge h has a node with h ⊆ χ(p)."""
        return not self.uncovered_edges()

    def uncovered_edges(self) -> List[str]:
        """Hyperedges violating condition 1 (empty list = all covered)."""
        nodes = self.nodes()
        missing = []
        for edge in self.hypergraph:
            if not any(edge.vertices <= node.chi for node in nodes):
                missing.append(edge.name)
        return missing

    def satisfies_connectedness(self) -> bool:
        """Condition 2 of Def. 1 / condition 3 of Def. 2.

        For every variable Y, the nodes with Y ∈ χ(p) induce a connected
        subtree: exactly (holders − 1) of them have a parent also holding Y.
        """
        holders: Dict[str, List[HypertreeNode]] = {}
        for node in self.root.walk():
            for variable in node.chi:
                holders.setdefault(variable, []).append(node)
        for variable, nodes in holders.items():
            linked = sum(
                1
                for node in nodes
                if node.parent is not None and variable in node.parent.chi
            )
            if linked != len(nodes) - 1:
                return False
        return True

    def chi_covered_by_lambda(self) -> bool:
        """Condition 3 of Def. 1: χ(p) ⊆ var(λ(p)) at every node."""
        return all(
            node.chi <= self.lambda_variables(node) for node in self.root.walk()
        )

    def satisfies_special_condition(self) -> bool:
        """Condition 4 of Def. 1: var(λ(p)) ∩ χ(T_p) ⊆ χ(p)."""
        return all(
            (self.lambda_variables(node) & node.subtree_chi()) <= node.chi
            for node in self.root.walk()
        )

    def is_generalized_hypertree_decomposition(self) -> bool:
        """Def. 1 conditions 1–3 (Special Descendant Condition dropped)."""
        return (
            self.covers_all_edges()
            and self.satisfies_connectedness()
            and self.chi_covered_by_lambda()
        )

    def is_hypertree_decomposition(self) -> bool:
        """All four conditions of Definition 1."""
        return (
            self.is_generalized_hypertree_decomposition()
            and self.satisfies_special_condition()
        )

    def is_q_hypertree_decomposition(self, output_variables: Iterable[str]) -> bool:
        """Definition 2: edge coverage, an out(Q)-covering node, connectedness.

        Note the root need not be the covering node for the *property* to
        hold, but Algorithm q-HypertreeDecomp always roots the tree at it.
        """
        out = frozenset(output_variables)
        has_cover = any(out <= node.chi for node in self.root.walk())
        return has_cover and self.covers_all_edges() and self.satisfies_connectedness()

    def output_cover_node(
        self, output_variables: Iterable[str]
    ) -> Optional[HypertreeNode]:
        """A node covering out(Q), preferring the root (Def. 2 condition 2)."""
        out = frozenset(output_variables)
        if out <= self.root.chi:
            return self.root
        for node in self.root.walk():
            if out <= node.chi:
                return node
        return None

    # -- reporting ---------------------------------------------------------

    def render(self) -> str:
        """Human-readable indented rendering of the decomposition tree."""
        lines: List[str] = []

        def visit(node: HypertreeNode, depth: int) -> None:
            chi = ", ".join(sorted(node.chi))
            lam = ", ".join(node.lam) if node.lam else "∅"
            guard_note = ""
            if node.guards:
                pairs = ", ".join(
                    f"{atom}→{child.node_id}" for atom, child in node.guards.items()
                )
                guard_note = f"  [guards: {pairs}]"
            lines.append(
                "  " * depth + f"[{node.node_id}] λ={{{lam}}} χ={{{chi}}}{guard_note}"
            )
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Hypertree(width={self.width}, nodes={len(self)})"


def make_node(
    chi: Iterable[str],
    lam: Iterable[str],
    children: Iterable[HypertreeNode] = (),
) -> HypertreeNode:
    """Convenience constructor used by tests and the search algorithms."""
    return HypertreeNode(chi, lam, children)

"""The hybrid optimizer pipeline (Fig. 5 of the paper).

``HybridOptimizer`` wires the architecture's modules together:

* *Sql Analyzer* — parse + conjunctive-query isolation
  (:mod:`repro.query.parser`, :mod:`repro.query.translate`);
* *Statistics Picker* — pull cardinalities/distincts from the database's
  statistics catalog (or accept user-supplied ones; or fall back to the
  purely structural uniform model);
* *cost-k-decomp* — the minimum-cost q-hypertree decomposition
  (:mod:`repro.core.costkdecomp` + :mod:`repro.core.qhd`);
* *Query Manipulator* — either a directly executable plan
  (:class:`OptimizedPlan`, used by the tight coupling) or a rewritten SQL
  view stack (:func:`OptimizedPlan.to_sql_views`, the stand-alone mode).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.errors import DecompositionNotFound, QueryError
from repro.engine.cost import filters_selectivity
from repro.engine.dbms import DBMSResult
from repro.engine.postprocess import apply_sql_semantics
from repro.engine.scans import atom_relations
from repro.metering import SpillModel, WorkMeter
from repro.obs.tracing import NullTracer, Tracer, current_tracer
from repro.query import ast
from repro.query.parser import parse_sql
from repro.query.translate import TranslationResult, sql_to_conjunctive
from repro.relational.database import Database
from repro.core.costmodel import AtomEstimate, DecompositionCostModel
from repro.core.evaluator import QHDEvaluator
from repro.core.hypertree import Hypertree
from repro.core.qhd import q_hypertree_decomp
from repro.core.views import SqlViewPlan, decomposition_to_sql_views


def cost_model_from_database(
    translation: TranslationResult,
    database: Database,
    use_statistics: bool = True,
) -> DecompositionCostModel:
    """Build the Statistics-Picker cost model for a translated query.

    With statistics: per-atom cardinality (scaled by pushed-down filter
    selectivity) and per-variable distinct counts.  Without: the uniform
    purely-structural model.
    """
    if not use_statistics:
        return DecompositionCostModel.uniform(translation.query)
    estimates: Dict[str, AtomEstimate] = {}
    for atom in translation.query.atoms:
        stats = database.stats_for(atom.relation)
        if stats is None:
            return DecompositionCostModel.uniform(translation.query)
        selectivity = filters_selectivity(
            translation.atom_filters.get(atom.name, ()), stats
        )
        rows = max(float(stats.row_count) * selectivity, 1.0)
        distinct = {}
        for variable in atom.variables:
            column = translation.variable_bindings[variable][atom.name]
            distinct[variable] = max(min(float(stats.distinct(column)), rows), 1.0)
        estimates[atom.name] = AtomEstimate(cardinality=rows, distinct=distinct)
    return DecompositionCostModel(estimates)


@dataclass
class OptimizedPlan:
    """A structural query plan: decomposition + everything needed to run it.

    Attributes:
        translation: the SQL→CQ translation.
        decomposition: the good q-hypertree decomposition.
        database: the data the plan runs against.
        decomposition_seconds: time spent by cost-k-decomp (the paper's
            ~1.5 s, independent of database size).
        used_statistics: whether the cost model consulted ANALYZE data.
        planning_work: ``"plan"`` work units charged by the cost-k-decomp
            search — the deterministic planning-effort measure (the
            bench exports report it as the *decompose* phase).
    """

    translation: TranslationResult
    decomposition: Hypertree
    database: Database
    decomposition_seconds: float
    used_statistics: bool
    planning_work: int = 0

    @property
    def width(self) -> int:
        return self.decomposition.width

    def explain(
        self,
        analyze: bool = False,
        work_budget: Optional[int] = None,
        spill: Optional[SpillModel] = None,
    ) -> str:
        """Render the decomposition tree (the logical query plan).

        With ``analyze=True`` the plan is *executed* under a private tracer
        and each node is annotated with its actual row count, charged work
        units, and wall time — EXPLAIN ANALYZE for the structural engine.
        """
        if not analyze:
            return self.decomposition.render()
        from repro.obs.explain import render_analyzed_decomposition, stats_by_node

        tracer = Tracer()
        result = self.execute(
            work_budget=work_budget, spill=spill, tracer=tracer
        )
        stats = stats_by_node(tracer.spans(), names=("qhd.node",))
        lines = [render_analyzed_decomposition(self.decomposition, stats)]
        lines.append(
            f"total work: {result.work}   wall: {result.elapsed_seconds * 1e3:.1f}ms"
        )
        if result.finished and result.relation is not None:
            lines.append(f"answer rows: {len(result.relation)}")
        else:
            lines.append("answer: did not finish (work budget exhausted)")
        return "\n".join(lines)

    def execute(
        self,
        work_budget: Optional[int] = None,
        spill: Optional[SpillModel] = None,
        tracer: "Optional[Union[Tracer, NullTracer]]" = None,
        parallel_workers: int = 0,
    ) -> DBMSResult:
        """Evaluate via the q-hypertree evaluator and apply SQL semantics.

        ``parallel_workers >= 2`` evaluates the decomposition tree on that
        many pool workers with the fused batch kernels; ``0``/``1`` is the
        serial path, byte-identical to previous releases.
        """
        from repro.errors import WorkBudgetExceeded

        meter = WorkMeter(budget=work_budget)
        started = time.perf_counter()
        try:
            base = atom_relations(
                self.translation.query, self.database, self.translation, meter
            )
            if parallel_workers >= 2:
                from repro.parallel import ParallelQHDEvaluator

                evaluator = ParallelQHDEvaluator(
                    self.decomposition,
                    self.translation.query,
                    meter,
                    spill,
                    tracer=tracer,
                    workers=parallel_workers,
                )
            else:
                evaluator = QHDEvaluator(
                    self.decomposition,
                    self.translation.query,
                    meter,
                    spill,
                    tracer=tracer,
                )
            answer = evaluator.evaluate(base)
            final = apply_sql_semantics(answer, self.translation, meter)
            finished = True
        except WorkBudgetExceeded:
            answer, final, finished = None, None, False
        elapsed = time.perf_counter() - started
        return DBMSResult(
            relation=final,
            answer=answer,
            work=meter.total,
            simulated_seconds=float(meter.total) * 1e-6,
            elapsed_seconds=elapsed,
            plan_text=self.decomposition.render(),
            finished=finished,
            used_statistics=self.used_statistics,
            optimizer="q-hd",
            work_breakdown=meter.snapshot(),
        )

    def to_sql_views(self, view_prefix: str = "hdv") -> SqlViewPlan:
        """Rewrite as SQL views (the stand-alone deployment mode)."""
        return decomposition_to_sql_views(
            self.decomposition, self.translation, view_prefix
        )


class HybridOptimizer:
    """The paper's optimizer: structural search weighted by statistics.

    Args:
        database: data + (optional) statistics.
        max_width: the width bound k (the paper: "typically k = 4 is
            enough for database queries").
        use_statistics: consult the statistics catalog; ``None`` = use them
            when available.
        optimize: run Procedure Optimize (Fig. 4); disable for ablation.
    """

    def __init__(
        self,
        database: Database,
        max_width: int = 4,
        use_statistics: Optional[bool] = None,
        optimize: bool = True,
        include_aggregates: bool = False,
        aggregate_weight: float = 1.0,
    ):
        self.database = database
        self.max_width = max_width
        self.use_statistics = use_statistics
        self.optimize_procedure = optimize
        self.include_aggregates = include_aggregates
        self.aggregate_weight = aggregate_weight

    def translate(
        self, sql: Union[str, ast.SelectQuery], name: str = "Q"
    ) -> TranslationResult:
        """Parse and translate; uncorrelated IN-subqueries are flattened by
        evaluating them on a default engine over this database."""
        from repro.engine.dbms import SimulatedDBMS
        from repro.query.subqueries import flatten_subqueries, has_subqueries

        query = parse_sql(sql) if isinstance(sql, str) else sql
        schema = self.database.schema.as_mapping()
        if has_subqueries(query):
            engine = SimulatedDBMS(self.database)

            def run_subquery(subquery: ast.SelectQuery):
                result = engine.run_sql(subquery, bypass_handler=True)
                return [row[0] for row in result.relation.tuples]

            query = flatten_subqueries(query, run_subquery, schema)
        return sql_to_conjunctive(query, schema, name=name)

    def optimize(
        self, sql: Union[str, ast.SelectQuery, TranslationResult], name: str = "Q"
    ) -> OptimizedPlan:
        """Produce a good q-hypertree decomposition plan for ``sql``.

        Raises:
            DecompositionNotFound: no width-≤k decomposition covers out(Q)
                at one node ("Failure" in Fig. 4).
        """
        translation = (
            sql if isinstance(sql, TranslationResult) else self.translate(sql, name)
        )
        use_stats = self.use_statistics
        if use_stats is None:
            use_stats = self.database.has_statistics()
        model = cost_model_from_database(translation, self.database, use_stats)
        # The aggregate term (future-work extension): when the SQL query
        # aggregates, charge the estimated answer size at the root so the
        # search prefers decompositions with smaller answers to aggregate.
        output_weight = 0.0
        if self.include_aggregates and translation.select_query.has_aggregates:
            output_weight = self.aggregate_weight
        started = time.perf_counter()
        # An internal meter captures the search's "plan" work units so the
        # plan can report its deterministic planning effort; callers that
        # pass no meter see identical charges to an uninstrumented build.
        planning_meter = WorkMeter()
        decomposition = q_hypertree_decomp(
            translation.query,
            self.max_width,
            cost_model=model,
            optimize=self.optimize_procedure,
            output_weight=output_weight,
            meter=planning_meter,
        )
        elapsed = time.perf_counter() - started
        return OptimizedPlan(
            translation=translation,
            decomposition=decomposition,
            database=self.database,
            decomposition_seconds=elapsed,
            used_statistics=use_stats,
            planning_work=planning_meter.total,
        )

"""Intra-query parallel evaluation of q-hypertree decompositions.

The q-HD evaluator's single bottom-up pass has an obvious parallel
structure: sibling subtrees of the decomposition tree touch disjoint parts
of the pass, so they can materialize concurrently while each parent join
waits only on its own children.  :class:`ParallelQHDEvaluator` exploits it
with a *topological* scheduler: every tree node becomes one task on a
bounded worker pool, submitted the moment its children's results exist —
no worker ever blocks on another node task, so any pool size ≥ 1 is
deadlock-free.

Three properties are guaranteed:

* **Determinism** — results are identical (rows *and* order) to the serial
  :class:`~repro.core.evaluator.QHDEvaluator` regardless of worker count.
  The per-node fold replays the serial fold order exactly, and the fused
  join+project kernel (:mod:`repro.parallel.kernels`) is row-for-row
  equivalent to join-then-project.
* **Resilience semantics survive** — every worker runs under a fan-out
  :class:`~repro.resilience.context.ExecutionContext` carrying the query's
  deadline/memory/fault bounds plus a shared cancellation token; the first
  failing node cancels every sibling at its next checkpoint.
* **Observability survives** — worker ``qhd.node`` spans are pinned under
  the submitting ``qhd.parallel`` span (cross-thread parenting), and the
  scheduler feeds ``parallel_*`` counters in the global metrics registry.

Memoization (:mod:`repro.parallel.memo`) is consulted at schedule time:
structurally identical subtrees — within one tree, or across the
degradation ladder's retries when the handler shares a per-query
:class:`~repro.parallel.memo.NodeMemo` — are scheduled once and shared by
reference.
"""

from __future__ import annotations

import collections
import os
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ExecutionError
from repro.metering import NULL_METER, SpillModel, WorkMeter
from repro.obs.metrics import get_registry
from repro.obs.tracing import NullTracer, Tracer, current_tracer
from repro.query.conjunctive import ConjunctiveQuery
from repro.relational.relation import Relation
from repro.resilience.context import (
    current_context,
    fanout_context,
    set_context,
)
from repro.core.evaluator import QHDEvaluator, _constant_atoms_satisfiable
from repro.core.hypertree import Hypertree, HypertreeNode
from repro.parallel.kernels import fused_join_project, joined_attributes
from repro.parallel.memo import NodeMemo, subtree_signature

__all__ = ["SubtreePool", "ParallelQHDEvaluator"]


class SubtreePool:
    """A bounded two-tier worker pool for parallel q-HD evaluation.

    Node tasks (one per decomposition node) run on the *node* tier; the
    fused join kernel's hash-partitioned probe chunks run on the separate
    *kernel* tier.  Node workers may block on kernel futures but kernel
    workers never submit anything, so the wait graph is acyclic and the
    pool cannot deadlock at any size.

    Both tiers propagate the submitting query's
    :class:`~repro.resilience.context.ExecutionContext` into the worker
    thread, so deadlines, cancellation, memory budgets, and fault
    injection behave exactly as they do serially.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("SubtreePool needs at least 1 worker")
        self.workers = workers
        self._nodes = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="qhd-node"
        )
        # Kernel-tier concurrency beyond the machine's cores buys nothing
        # (chunk probing is pure CPU); on a single core the tier is a
        # queue handoff with no upside, so chunks run inline instead.
        self._kernel_workers = min(workers, os.cpu_count() or 1)
        self._kernels = ThreadPoolExecutor(
            max_workers=self._kernel_workers, thread_name_prefix="qhd-kernel"
        )

    # ------------------------------------------------------------------

    def submit_node(
        self,
        fn: Callable[..., object],
        *args: object,
        context: object = None,
    ) -> "Future[object]":
        """Schedule one node task; ``context`` (or the caller's current
        context) is installed in the worker for the task's duration."""
        ctx = context if context is not None else current_context()

        def task() -> object:
            set_context(ctx)  # type: ignore[arg-type]
            try:
                return fn(*args)
            finally:
                set_context(None)

        return self._nodes.submit(task)

    def run_kernel_chunks(
        self,
        fn: Callable[[List[Tuple[object, ...]]], List[Tuple[object, ...]]],
        chunks: Sequence[List[Tuple[object, ...]]],
    ) -> List[List[Tuple[object, ...]]]:
        """Run ``fn`` over every chunk on the kernel tier; results are
        returned in chunk order.  All chunks are awaited even on error (no
        task is left running against the inputs), then the first chunk's
        error — deterministic under chunk ordering — propagates."""
        if self._kernel_workers <= 1:
            # Single effective kernel worker: the queue round-trip is pure
            # overhead, and the calling node worker already carries the
            # right execution context.  Results are identical either way.
            return [fn(chunk) for chunk in chunks]
        ctx = current_context()

        def task(chunk: List[Tuple[object, ...]]) -> List[Tuple[object, ...]]:
            set_context(ctx)  # type: ignore[arg-type]
            try:
                return fn(chunk)
            finally:
                set_context(None)

        futures = [self._kernels.submit(task, chunk) for chunk in chunks]
        wait(futures)
        results: List[List[Tuple[object, ...]]] = []
        for future in futures:
            results.append(future.result())
        return results

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._nodes.shutdown(wait=True, cancel_futures=True)
        self._kernels.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SubtreePool":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SubtreePool({self.workers} workers)"


class ParallelQHDEvaluator:
    """Parallel drop-in for :class:`~repro.core.evaluator.QHDEvaluator`.

    Args:
        decomposition: the q-hypertree decomposition to evaluate.
        query: the conjunctive query.
        meter: work-unit accounting (thread-safe; shared by all workers).
        spill: optional spill model charged per materialized intermediate.
        tracer: span sink; worker spans parent under ``qhd.parallel``.
        workers: worker count.  ``workers <= 1`` delegates to the serial
            evaluator — same code path, same charges, zero overhead.
        memo: a per-query :class:`NodeMemo`; pass the same instance across
            degradation-ladder retries to share subtree materializations.
        pool: an existing :class:`SubtreePool` to run on; without one, an
            ephemeral pool is created per :meth:`evaluate` call.
    """

    def __init__(
        self,
        decomposition: Hypertree,
        query: ConjunctiveQuery,
        meter: WorkMeter = NULL_METER,
        spill: Optional[SpillModel] = None,
        tracer: "Optional[Union[Tracer, NullTracer]]" = None,
        workers: int = 2,
        memo: Optional[NodeMemo] = None,
        pool: Optional[SubtreePool] = None,
    ):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.decomposition = decomposition
        self.query = query
        self.meter = meter
        self.spill = spill
        self.tracer = tracer if tracer is not None else current_tracer()
        self.workers = workers
        self.memo = memo
        self._pool = pool
        self._trace: List[str] = []
        self._relations: Mapping[str, Relation] = {}

    # ------------------------------------------------------------------

    def evaluate(self, relations: Mapping[str, Relation]) -> Relation:
        """Run P′+P″+P‴ in parallel; identical results to the serial pass."""
        if self.workers <= 1:
            serial = QHDEvaluator(
                self.decomposition,
                self.query,
                self.meter,
                self.spill,
                tracer=self.tracer,
            )
            answer = serial.evaluate(relations)
            self._trace = serial.trace()
            return answer

        output = list(self.query.output)
        if not _constant_atoms_satisfiable(self.query, relations):
            return Relation(output, [])
        root_rel = self._run_tree(relations)
        if root_rel is None:
            raise ExecutionError(
                "decomposition root produced no relation (empty λ and no children)"
            )
        missing = [v for v in output if not root_rel.has_attribute(v)]
        if missing:
            raise ExecutionError(
                f"output variables missing at the decomposition root: {missing} "
                "(the root must cover out(Q) — Definition 2, condition 2)"
            )
        return root_rel.project(output, dedup=True, meter=self.meter)

    def trace(self) -> List[str]:
        """Evaluation log in the serial evaluator's (post-order) order."""
        return list(self._trace)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _run_tree(self, relations: Mapping[str, Relation]) -> Optional[Relation]:
        self._relations = relations
        memo = self.memo if self.memo is not None else NodeMemo()
        root = self.decomposition.root

        # Static per-node facts: the interface each parent requests of its
        # child, and the structural signature keying memoization.
        keeps: Dict[int, Optional[FrozenSet[str]]] = {root.node_id: None}
        parents: Dict[int, HypertreeNode] = {}
        nodes: Dict[int, HypertreeNode] = {}
        for node in root.walk():
            nodes[node.node_id] = node
            for child in node.ordered_children():
                keeps[child.node_id] = frozenset(child.chi & node.chi)
                parents[child.node_id] = node
        signatures = {
            node_id: subtree_signature(node, keeps[node_id], relations)
            for node_id, node in nodes.items()
        }

        # Schedule-time memo/alias resolution, top-down: a subtree whose
        # signature is already materialized (an earlier ladder attempt) or
        # claimed by a structurally identical subtree in this tree is not
        # scheduled at all — neither are its descendants.
        results: Dict[int, Optional[Relation]] = {}
        aliases: Dict[int, int] = {}
        compute: List[int] = []
        claimed: Dict[object, int] = {}
        memo_hits = 0
        stack = [root]
        while stack:
            node = stack.pop()
            signature = signatures[node.node_id]
            cached = memo.get(signature)
            if cached is not None:
                results[node.node_id] = cached
                memo_hits += 1
                continue
            owner = claimed.get(signature)
            if owner is not None:
                aliases[node.node_id] = owner
                memo_hits += 1
                continue
            claimed[signature] = node.node_id
            compute.append(node.node_id)
            stack.extend(reversed(node.ordered_children()))

        registry = get_registry()
        registry.counter(
            "parallel_nodes_scheduled_total",
            help="Decomposition nodes scheduled on the parallel executor",
        ).inc(len(compute))
        registry.counter(
            "parallel_memo_hits_total",
            help="Subtree materializations shared via the node memo",
        ).inc(memo_hits)
        registry.counter(
            "parallel_memo_misses_total",
            help="Subtree materializations computed fresh",
        ).inc(len(compute))

        # Dependency edges: a node waits for each child's *producer* — the
        # child itself, or the structurally identical node it aliases.
        compute_set = set(compute)
        pending: Dict[int, int] = {}
        waiters: Dict[int, List[int]] = collections.defaultdict(list)
        ready: Deque[int] = collections.deque()
        for node_id in compute:
            deps = []
            for child in nodes[node_id].ordered_children():
                producer = aliases.get(child.node_id, child.node_id)
                if producer in compute_set and producer not in results:
                    deps.append(producer)
            pending[node_id] = len(deps)
            for dep in deps:
                waiters[dep].append(node_id)
            if not deps:
                ready.append(node_id)

        base_context = current_context()
        worker_context, fanout_token = fanout_context(base_context)
        pool = self._pool if self._pool is not None else SubtreePool(self.workers)
        own_pool = self._pool is None
        node_traces: Dict[int, List[str]] = {}
        futures: Dict["Future[object]", int] = {}
        try:
            with self.tracer.span(
                "qhd.parallel",
                meter=self.meter,
                workers=self.workers,
                nodes=len(nodes),
                scheduled=len(compute),
            ) as parallel_span:
                parent_span_id = getattr(parallel_span, "span_id", 0) or None
                try:
                    while ready or futures:
                        while ready:
                            node_id = ready.popleft()
                            node = nodes[node_id]
                            child_rels = [
                                (
                                    child,
                                    results.get(
                                        aliases.get(child.node_id, child.node_id)
                                    ),
                                )
                                for child in node.ordered_children()
                            ]
                            futures[
                                pool.submit_node(
                                    self._run_node,
                                    node,
                                    keeps[node_id],
                                    child_rels,
                                    pool,
                                    parent_span_id,
                                    context=worker_context,
                                )
                            ] = node_id
                        done, _ = wait(futures, return_when=FIRST_COMPLETED)
                        for future in done:
                            node_id = futures.pop(future)
                            rel, lines = future.result()  # type: ignore[misc]
                            node_traces[node_id] = lines
                            results[node_id] = rel
                            if rel is not None:
                                memo.put(signatures[node_id], rel)
                            for waiter in waiters.get(node_id, ()):
                                pending[waiter] -= 1
                                if pending[waiter] == 0:
                                    ready.append(waiter)
                except BaseException as exc:
                    # Fan the failure out: every sibling still running
                    # observes the token at its next checkpoint instead of
                    # finishing doomed work; then drain and re-raise.
                    fanout_token.cancel(
                        f"parallel q-HD aborted: {type(exc).__name__}"
                    )
                    wait(list(futures))
                    raise
                parallel_span.tag(
                    memo_hits=memo_hits,
                    memo_entries=len(memo),
                )
        finally:
            if own_pool:
                pool.close()
            self._relations = {}

        self._trace = self._assemble_trace(root, results, aliases, node_traces)
        producer = aliases.get(root.node_id, root.node_id)
        return results.get(producer)

    def _assemble_trace(
        self,
        root: HypertreeNode,
        results: Dict[int, Optional[Relation]],
        aliases: Dict[int, int],
        node_traces: Dict[int, List[str]],
    ) -> List[str]:
        """Flatten per-node fold logs in the serial post-order."""
        lines: List[str] = []
        for node in root.postorder():
            node_id = node.node_id
            if node_id in node_traces:
                lines.extend(node_traces[node_id])
            elif node_id in aliases or node_id in results:
                producer = aliases.get(node_id, node_id)
                rel = results.get(producer)
                lines.append(
                    f"node {node_id}: memo -> "
                    f"{len(rel) if rel is not None else 0} tuples"
                )
        return lines

    # ------------------------------------------------------------------
    # Per-node fold (runs on a worker thread)
    # ------------------------------------------------------------------

    def _run_node(
        self,
        node: HypertreeNode,
        keep: Optional[FrozenSet[str]],
        child_rels: List[Tuple[HypertreeNode, Optional[Relation]]],
        pool: SubtreePool,
        parent_span_id: Optional[int],
    ) -> Tuple[Optional[Relation], List[str]]:
        current_context().checkpoint("exec.qhd")
        lines: List[str] = []
        with self.tracer.span(
            "qhd.node",
            meter=self.meter,
            parent_id=parent_span_id,
            node=node.node_id,
            atoms=len(node.lam),
            children=len(node.children),
            parallel=True,
        ) as span:
            rel = self._fold(node, keep, child_rels, pool, lines)
            span.tag(
                rows_out=len(rel) if rel is not None else 0,
                folds=len(lines),
            )
        return rel, lines

    def _fold(
        self,
        node: HypertreeNode,
        keep: Optional[FrozenSet[str]],
        child_rels: List[Tuple[HypertreeNode, Optional[Relation]]],
        pool: SubtreePool,
        lines: List[str],
    ) -> Optional[Relation]:
        # Replays the serial ``QHDEvaluator._fold_node`` decision sequence
        # exactly — guard children first, then greedily smallest-first
        # among connected sources — so the output is byte-identical.  The
        # only difference is the kernel: each join+project step runs the
        # fused kernel instead of natural_join followed by project.
        guard_ids = {id(child) for child in node.guards.values()}
        guard_rels: List[Relation] = []
        other_rels: List[Relation] = []
        for child, child_rel in child_rels:
            if child_rel is None:
                continue
            if id(child) in guard_ids:
                guard_rels.append(child_rel)
            else:
                other_rels.append(child_rel)
        other_rels.extend(self._relations[name] for name in node.lam)

        context = current_context()
        rel: Optional[Relation] = None
        pending = sorted(guard_rels, key=len) + sorted(other_rels, key=len)
        n_guards = len(guard_rels)
        while pending:
            context.checkpoint("exec.qhd")
            if n_guards > 0 or rel is None:
                index = 0
                n_guards = max(n_guards - 1, 0)
            else:
                attrs = set(rel.attributes)
                index = next(
                    (
                        i
                        for i, candidate in enumerate(pending)
                        if attrs & set(candidate.attributes)
                    ),
                    0,
                )
            source = pending.pop(index)
            linking: set = set()
            for remaining in pending:
                linking.update(remaining.attributes)
            target = node.chi if keep is None else keep
            if rel is None:
                kept_attrs = [
                    a
                    for a in source.attributes
                    if a in target
                    or a in linking
                    or (keep is not None and a in node.chi and pending)
                ]
                rel = source.project(kept_attrs, dedup=True, meter=self.meter)
            else:
                joined = joined_attributes(rel, source)
                kept_attrs = [
                    a
                    for a in joined
                    if a in target
                    or a in linking
                    or (keep is not None and a in node.chi and pending)
                ]
                rel = fused_join_project(
                    rel, source, kept_attrs, meter=self.meter, pool=pool
                )
            context.account(len(rel), len(rel.attributes), "exec.qhd")
            if self.spill is not None:
                self.spill.charge(self.meter, len(rel))
            lines.append(
                f"node {node.node_id}: fold {source.name or 'child'} "
                f"-> {len(rel)} tuples"
            )
        return rel

"""Per-query memoization of decomposition-node materializations.

Two nodes whose subtrees are structurally identical — same λ atom multiset
with the same (filtered) relation contents, same interface projection,
same children recursively — materialize the same relation, in the same
row order, under the evaluator's deterministic fold.  That happens within
one tree (repeated subquery templates, self-joins) and *across* trees: the
degradation ladder re-plans a failing query at a lower width bound, and
the retry's decomposition typically shares whole subtrees with the first
attempt.

:func:`subtree_signature` captures exactly the inputs the fold depends on:
the node's sorted λ labels with their relation cardinalities (the per-query
scope makes atom name → contents injective; cardinality is a cheap guard),
the interface ``keep`` projection, and the children's signatures in
``ordered_children`` order (fold order is sensitive to child order, so
signatures must be too).

The memo itself is a lock-guarded dict scoped to one query execution: the
serving handler creates a :class:`NodeMemo` per request and threads it
through every ladder attempt, so the plan cache's stats-version
invalidation still governs freshness — a memo never outlives the request
that created it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.analysis.lockwitness import make_lock
from repro.core.hypertree import HypertreeNode
from repro.relational.relation import Relation

__all__ = ["NodeMemo", "subtree_signature"]

Signature = Tuple[object, ...]


def subtree_signature(
    node: HypertreeNode,
    keep: "Optional[FrozenSet[str]]",
    relations: Mapping[str, Relation],
) -> Signature:
    """A hashable key identifying this node's materialization.

    Args:
        node: the decomposition node.
        keep: the interface projection requested by the parent (``None``
            at the root, meaning "project onto χ(node)").
        relations: atom name → relation, as passed to the evaluator.
    """
    lam = tuple(
        sorted((name, len(relations[name])) for name in node.lam)
    )
    kept = None if keep is None else tuple(sorted(keep))
    children = tuple(
        subtree_signature(
            child, frozenset(child.chi & node.chi), relations
        )
        for child in node.ordered_children()
    )
    return ("node", lam, kept, tuple(sorted(node.chi)), children)


class NodeMemo:
    """Thread-safe signature → materialized relation store (per query).

    Relations are stored as-is (they are never mutated after
    materialization) and shared by reference between hits.
    """

    def __init__(self) -> None:
        self._entries: Dict[Signature, Relation] = {}
        self._lock = make_lock("NodeMemo._lock")
        self._hits = 0
        self._misses = 0

    def get(self, signature: Signature) -> Optional[Relation]:
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                self._misses += 1
            else:
                self._hits += 1
            return entry

    def put(self, signature: Signature, relation: Relation) -> None:
        with self._lock:
            self._entries.setdefault(signature, relation)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"NodeMemo({stats['entries']} entries, "
            f"{stats['hits']} hits, {stats['misses']} misses)"
        )

"""Intra-query parallel q-HD evaluation (scheduler, memo, batch kernels)."""

from repro.parallel.executor import ParallelQHDEvaluator, SubtreePool
from repro.parallel.kernels import fused_join_project, joined_attributes
from repro.parallel.memo import NodeMemo, subtree_signature

__all__ = [
    "ParallelQHDEvaluator",
    "SubtreePool",
    "NodeMemo",
    "subtree_signature",
    "fused_join_project",
    "joined_attributes",
]

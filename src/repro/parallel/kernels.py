"""Batch join kernels for the parallel q-HD executor.

The serial evaluator's per-fold step is ``natural_join`` followed by
``project(dedup=True)`` — it materializes every joined row, then a second
pass re-extracts the kept columns and discards duplicates.  On the paper's
chain workloads that projection pass is the single largest work category,
and most joined rows are duplicates under projection.

:func:`fused_join_project` fuses the two operators: it enumerates the same
(probe row, build match) pairs in the same order as ``natural_join``, but
constructs only the *projected* tuple for each pair and emits it at its
first occurrence.  The output relation is byte-identical — same rows, same
row order — to ``left.natural_join(right).project(keep, dedup=True)``,
while never materializing the full-width intermediate.  That equivalence
is what lets parallel evaluation promise results identical to serial.

Because only projected columns survive, the kernel also *deduplicates
eagerly on both sides*: build buckets store each distinct kept suffix once
(first occurrence wins, preserving emission order), and the probe side is
collapsed to its distinct (join key, kept head) pairs — in probe-row
order, at C speed — before any bucket is enumerated: a repeat probe row
can only re-emit candidates its first occurrence already produced.  On the
paper's cyclic chain workloads most pairs are duplicates under projection,
so this collapses the pair enumeration itself, not just the output.  When
every join-key attribute is itself kept, equal candidates imply equal
(key, head, suffix) triples, so the enumerated candidates are *provably
distinct* and the output needs no dedup pass at all.

Work accounting stays honest: build/probe rows are charged exactly as in
``natural_join`` (in ≤ :data:`CHUNK_ROWS` blocks); each *enumerated* pair
charges one ``join-out`` unit — per :data:`_PROBE_BLOCK` block, before any
of the block's tuples are constructed — so a budgeted meter still aborts a
blow-up while it is hypothetical.  Pairs the dedup never enumerates charge
nothing: the kernel genuinely does less work, and the meter says so.  No
``project`` units are charged — there is no projection pass.

With a :class:`~repro.parallel.executor.SubtreePool`, a large pair list is
hash-partitioned into blocks enumerated concurrently; block results are
concatenated (or merged through one insertion-ordered dict when a dedup
pass is needed) in block order, so the output is independent of worker
count and identical to the serial scan.
"""

from __future__ import annotations

import operator
from itertools import repeat
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.metering import NULL_METER, WorkMeter
from repro.relational.relation import Relation, _key_getter, _row_getter
from repro.resilience.context import current_context

if TYPE_CHECKING:
    from repro.parallel.executor import SubtreePool

__all__ = ["CHUNK_ROWS", "joined_attributes", "fused_join_project"]

#: Probe rows per batch: one cooperative checkpoint and one bulk meter
#: charge per chunk (matches ``relation._CHECK_EVERY``), and the unit of
#: hash-partitioned parallel probing.
CHUNK_ROWS = 4096

#: A deduplicated pair list smaller than this is never worth fanning out
#: to the pool.
_MIN_PARALLEL_PROBE = 2 * CHUNK_ROWS

#: Distinct (key, head) pairs per charge/checkpoint block in the probe
#: phase: each block's enumerated-pair total is charged before any of its
#: tuples are constructed.
_PROBE_BLOCK = 1024


def _tuple_iter(
    indices: Sequence[int],
    rows: "List[Tuple[object, ...]]",
) -> "Iterator[Tuple[object, ...]]":
    """Iterate ``rows`` projected onto ``indices`` as tuples, at C speed.

    ``zip`` of a single iterable yields 1-tuples, which sidesteps the
    per-row Python lambda a 1-column :func:`_row_getter` would cost.
    """
    if not indices:
        return iter([()] * len(rows))
    if len(indices) == 1:
        return zip(map(operator.itemgetter(indices[0]), rows))
    return map(operator.itemgetter(*indices), rows)


def joined_attributes(left: Relation, right: Relation) -> List[str]:
    """The attribute order ``left.natural_join(right)`` would produce.

    ``natural_join`` builds on the smaller side and emits probe attributes
    first; the caller needs this order to compute projection lists without
    materializing the join.
    """
    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    return list(probe.attributes) + [
        a for a in build.attributes if a not in probe._index
    ]


def fused_join_project(
    left: Relation,
    right: Relation,
    keep: Sequence[str],
    meter: WorkMeter = NULL_METER,
    pool: "Optional[SubtreePool]" = None,
) -> Relation:
    """⋈ + π + distinct in one pass.

    Args:
        left, right: join inputs (hash join on shared attribute names; no
            shared names degenerates to a cartesian product, as in
            ``natural_join``).
        keep: output attributes — any subset of
            :func:`joined_attributes` ``(left, right)``, in any order.
        meter: work-unit accounting (see module docstring for charges).
        pool: when given and the probe side is large, probe chunks run on
            the pool's kernel workers.

    Returns:
        A relation equal — rows and order — to
        ``left.natural_join(right, meter).project(keep, dedup=True, meter)``.
    """
    shared = left.shared_attributes(right)
    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    build_idx = [build.index_of(a) for a in shared]
    probe_idx = [probe.index_of(a) for a in shared]
    build_rest_attrs = [a for a in build.attributes if a not in probe._index]

    out_attrs = list(keep)
    probe_keep = [a for a in out_attrs if a in probe._index]
    rest_keep = [a for a in out_attrs if a not in probe._index]
    probe_keep_idx = [probe.index_of(a) for a in probe_keep]
    rest_keep_idx = [build_rest_attrs.index(a) for a in rest_keep]
    # Rows are enumerated as ``head + rest`` (probe-kept columns first);
    # when ``keep`` interleaves the sides differently, one permutation maps
    # the emitted layout back — applied once at the end, never on the hot
    # path the evaluator drives (its ``keep`` follows the joined order).
    emission_attrs = probe_keep + rest_keep

    context = current_context()
    build_key = _key_getter(build_idx)
    probe_key = _key_getter(probe_idx)
    # Straight from the full build row to its *kept* suffix: the dropped
    # build columns are never materialized at all.
    kept_rest_of = _row_getter(
        [build.index_of(build_rest_attrs[i]) for i in rest_keep_idx]
    )

    # Build phase — row charges identical to ``natural_join``, but each
    # bucket is an insertion-ordered dict of *distinct kept suffixes*:
    # duplicates under projection collapse here instead of being
    # enumerated once per probe match downstream.
    table: Dict[object, Dict[Tuple[object, ...], None]] = {}
    table_get = table.get
    build_rows = build.tuples
    for start in range(0, len(build_rows), CHUNK_ROWS):
        context.checkpoint("exec.join")
        chunk = build_rows[start : start + CHUNK_ROWS]
        meter.charge(len(chunk), "join-build")
        for row in chunk:
            key = build_key(row)
            bucket = table_get(key)
            if bucket is None:
                table[key] = {kept_rest_of(row): None}
            else:
                bucket[kept_rest_of(row)] = None

    probe_rows = probe.tuples
    n_probe = len(probe_rows)

    # Probe-side row charges, chunked exactly as ``natural_join`` charges
    # its probe scan.
    for start in range(0, n_probe, CHUNK_ROWS):
        context.checkpoint("exec.join")
        meter.charge(min(CHUNK_ROWS, n_probe - start), "join-probe")

    # Distinct (key, head) pairs in probe-row order: a repeat probe row
    # can only re-emit candidates its first occurrence already produced,
    # so duplicates are dropped before any bucket is touched — at C
    # speed, via zip + dict insertion order.
    if probe_idx:
        key_iter = map(_key_getter(probe_idx), probe_rows)
    else:
        key_iter = iter([()] * n_probe)
    pairs = list(
        dict.fromkeys(zip(key_iter, _tuple_iter(probe_keep_idx, probe_rows)))
    )
    key_of = operator.itemgetter(0)

    # When every join-key attribute is kept on the probe side, a head
    # determines its key, so (distinct pair) × (distinct suffix) yields
    # provably distinct candidates — the output needs no dedup pass.
    probe_kept = {a for a in out_attrs if a in probe._index}
    distinct_safe = all(a in probe_kept for a in shared)

    def enumerate_block(
        block: "List[Tuple[object, Tuple[object, ...]]]",
    ) -> "List[Tuple[object, ...]]":
        """Enumerate one block of distinct pairs against the build table."""
        block_context = current_context()
        block_context.checkpoint("exec.join")
        matches_list = list(map(table_get, map(key_of, block)))
        # The block's exact pair count is charged *before* any tuple is
        # constructed, so a budgeted meter aborts a blow-up while it is
        # still hypothetical.
        width = sum(map(len, filter(None, matches_list)))
        if not width:
            return []
        meter.charge(width, "join-out")
        return [
            head + rest
            for (_, head), matches in zip(block, matches_list)
            if matches
            for rest in matches
        ]

    blocks = [
        pairs[start : start + _PROBE_BLOCK]
        for start in range(0, len(pairs), _PROBE_BLOCK)
    ]
    if pool is not None and len(pairs) >= _MIN_PARALLEL_PROBE:
        block_results = pool.run_kernel_chunks(enumerate_block, blocks)
    else:
        block_results = [enumerate_block(block) for block in blocks]

    # Merge in block order: the result order equals a single serial
    # scan's, whatever the worker count or block completion order.
    name = f"({left.name}⋈{right.name})" if left.name and right.name else ""
    if distinct_safe:
        out: List[Tuple[object, ...]] = []
        out_extend = out.extend
        for emitted in block_results:
            context.checkpoint("exec.join")
            out_extend(emitted)
    else:
        merged: Dict[Tuple[object, ...], None] = {}
        merged_update = merged.update
        for emitted in block_results:
            context.checkpoint("exec.join")
            merged_update(zip(emitted, repeat(None)))
        out = list(merged)
    if emission_attrs != out_attrs:
        reorder = _row_getter([emission_attrs.index(a) for a in out_attrs])
        out = list(map(reorder, out))
    return Relation._trusted(out_attrs, out, name=name)

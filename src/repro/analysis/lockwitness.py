"""Dynamic lock-order witness: the runtime complement to ``lock-discipline``.

Static analysis can prove that guarded attributes are written under *a*
lock, but not that multiple locks are always taken in a consistent
*order* — the property that rules out deadlock.  This module provides an
opt-in instrumented lock: when ``HDQO_LOCKCHECK=1`` is set,
:func:`make_lock` returns a :class:`WitnessLock` that reports every
acquisition to a process-wide :class:`LockWitness`.  The witness keeps a
per-thread stack of held locks and a global *acquired-after* graph over
lock **names**: an edge ``A -> B`` means some thread acquired ``B`` while
holding ``A``.  A cycle in that graph is the classic deadlock recipe (two
threads taking the same pair in opposite orders), witnessed from a single
run even if the interleaving never actually deadlocked.

Violations are recorded rather than raised mid-acquire (raising inside a
lock acquisition would corrupt the very state being protected);
:meth:`LockWitness.assert_clean` — called by the test-suite teardown when
lock checking is on — raises :class:`~repro.errors.LockOrderViolation`
with the witnessed cycle.

When ``HDQO_LOCKCHECK`` is unset, :func:`make_lock` returns a plain
``threading.Lock`` — zero overhead on the production path.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import LockOrderViolation

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def lockcheck_enabled() -> bool:
    """Is the dynamic lock-order witness switched on (``HDQO_LOCKCHECK=1``)?"""
    return os.environ.get("HDQO_LOCKCHECK", "").strip().lower() in _TRUTHY


class LockWitness:
    """Process-wide recorder of lock-acquisition order.

    Thread-safe; the witness's own bookkeeping lock is a leaf (never held
    while acquiring an instrumented lock), so the witness cannot itself
    introduce the deadlocks it hunts.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._local = threading.local()
        # acquired-after edges over lock names: held -> then-acquired.
        self._edges: Dict[str, Set[str]] = {}
        self._violations: List[LockOrderViolation] = []
        self._seen_cycles: Set[Tuple[str, ...]] = set()

    # -- per-thread held stack -----------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- acquisition hooks ---------------------------------------------

    def before_acquire(self, name: str) -> None:
        """Record edges held->name and check for an ordering cycle."""
        held = [h for h in self._stack() if h != name]
        if not held:
            return
        with self._mutex:
            for holder in held:
                self._edges.setdefault(holder, set()).add(name)
            cycle = self._find_cycle_locked(name, set(held))
            if cycle is not None and cycle not in self._seen_cycles:
                self._seen_cycles.add(cycle)
                self._violations.append(LockOrderViolation(cycle))

    def after_acquire(self, name: str) -> None:
        self._stack().append(name)

    def after_release(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- cycle detection ------------------------------------------------

    def _find_cycle_locked(
        self, start: str, targets: Set[str]
    ) -> Optional[Tuple[str, ...]]:
        """A cycle through ``start`` and a currently-held lock, if any.

        The caller just recorded ``t -> start`` for every held ``t``; if
        the graph also contains a path ``start -> … -> t``, the pair is
        acquired in both orders and ``(start, …, t, start)`` is returned.
        """
        stack: List[Tuple[str, Tuple[str, ...]]] = [(start, (start,))]
        visited: Set[str] = {start}
        while stack:
            node, path = stack.pop()
            for succ in sorted(self._edges.get(node, ())):
                if succ in targets:
                    return path + (succ, start)
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, path + (succ,)))
        return None

    # -- reporting -------------------------------------------------------

    @property
    def violations(self) -> List[LockOrderViolation]:
        with self._mutex:
            return list(self._violations)

    def edges(self) -> Dict[str, Set[str]]:
        """Snapshot of the acquired-after graph (name -> successors)."""
        with self._mutex:
            return {name: set(succs) for name, succs in self._edges.items()}

    def assert_clean(self) -> None:
        """Raise the first witnessed :class:`LockOrderViolation`, if any."""
        with self._mutex:
            if self._violations:
                raise self._violations[0]

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._violations.clear()
            self._seen_cycles.clear()


class WitnessLock:
    """A named ``threading.Lock`` wrapper that reports to a witness.

    Locks that are *instances of the same role* (e.g. the per-key
    single-flight build locks of the plan cache) should share one name:
    the witness graph is over roles, which keeps it small and makes the
    witnessed order meaningful across instances.
    """

    def __init__(
        self, name: str, witness: Optional[LockWitness] = None
    ) -> None:
        self.name = name
        self._witness = witness if witness is not None else GLOBAL_WITNESS
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._witness.before_acquire(self.name)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._witness.after_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._witness.after_release(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<WitnessLock {self.name!r} {state}>"


#: The process-wide witness all :func:`make_lock` locks report to.
GLOBAL_WITNESS = LockWitness()


def make_lock(name: str) -> Any:
    """A lock for ``name`` — instrumented under ``HDQO_LOCKCHECK=1``.

    This is the factory the serving/observability/resilience layers use
    for every shared-state lock.  With lock checking off (the default) it
    returns a plain ``threading.Lock``; the instrumentation is purely
    opt-in and costs nothing in production.
    """
    if lockcheck_enabled():
        return WitnessLock(name, GLOBAL_WITNESS)
    return threading.Lock()


__all__ = [
    "GLOBAL_WITNESS",
    "LockWitness",
    "WitnessLock",
    "lockcheck_enabled",
    "make_lock",
]

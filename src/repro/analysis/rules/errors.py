"""Error swallowing: broad handlers must not eat cooperative aborts.

The resilience layer (PR 3) cancels and deadlines queries by *raising*
:class:`~repro.errors.QueryCancelled` / :class:`~repro.errors.DeadlineExceeded`
out of checkpoint calls.  Any ``except Exception:`` on the query path that
does not re-raise turns those aborts into silent no-ops: the drain hangs,
the deadline fires and nothing stops.  This rule flags broad handlers
(``except Exception``, ``except BaseException``, bare ``except``) whose
body contains no ``raise`` — unless an earlier, narrower handler on the
same ``try`` already catches the abort errors and re-raises them, which is
the sanctioned "narrow first, then broad" layout::

    try:
        ...
    except (QueryCancelled, DeadlineExceeded):
        raise
    except Exception as exc:      # ok: aborts already propagated above
        log(exc)
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.base import (
    FileSource,
    Finding,
    Rule,
    exception_names,
    iter_scope_nodes,
)

_BROAD = frozenset({"Exception", "BaseException"})
_ABORT_ERRORS = frozenset({"QueryCancelled", "DeadlineExceeded"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return any(name in _BROAD for name in exception_names(handler.type))


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    for node in iter_scope_nodes(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


class ErrorSwallowingRule(Rule):
    """Broad exception handlers must let cooperative aborts propagate."""

    rule_id = "error-swallowing"
    description = (
        "`except Exception` (or broader) without a re-raise swallows"
        " QueryCancelled/DeadlineExceeded; narrow the handler or re-raise"
        " aborts in an earlier clause"
    )
    scopes = ("repro/",)

    def check(self, source: FileSource) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Try):
                continue
            aborts_handled = False
            for handler in node.handlers:
                names = exception_names(handler.type)
                if any(name in _ABORT_ERRORS for name in names):
                    aborts_handled = True
                if not _is_broad(handler):
                    continue
                if _handler_reraises(handler) or aborts_handled:
                    continue
                findings.append(
                    self.finding(
                        source,
                        handler,
                        "broad exception handler swallows cooperative aborts "
                        "(QueryCancelled/DeadlineExceeded); narrow it, "
                        "re-raise, or handle the abort errors in an earlier "
                        "except clause",
                    )
                )
        return findings

"""Checkpoint coverage and work-charging parity for operator row loops.

The resilience layer (PR 3) relies on *cooperative* aborts: a deadline or
cancellation is only observed when the running code calls
``context.checkpoint(site)`` / ``context.tick(site)``.  The metering layer
(the paper's machine-independent cost accounting) relies on every physical
operator charging the :class:`~repro.metering.WorkMeter` for each tuple it
touches.  The two contracts meet in row loops:

* **checkpoint-coverage** — a ``for``/``while`` loop that charges work
  units is, by definition, a row loop on a hot path; if no loop in its
  enclosing loop nest ever calls ``checkpoint``/``tick``, a pathological
  input wedges the worker until the loop ends, and deadlines, drains and
  fault injection are all blind to it.
* **work-charging** — an operator that accepts a ``meter`` parameter but
  neither charges it nor forwards it to a callee produces rows that are
  invisible to budgets, benchmarks and the paper's figures.  (Accepting
  the meter and dropping it is precisely how silent cost leaks start.)
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.base import (
    FileSource,
    Finding,
    Rule,
    call_method_name,
    iter_functions,
    iter_scope_nodes,
)

_LOOP_TYPES = (ast.For, ast.AsyncFor, ast.While)
_CHECKPOINT_NAMES = frozenset({"checkpoint", "tick"})


def _loop_has_checkpoint(loop: ast.AST) -> bool:
    for node in iter_scope_nodes(loop):
        if isinstance(node, ast.Call):
            name = call_method_name(node)
            if name in _CHECKPOINT_NAMES:
                return True
            if isinstance(node.func, ast.Name) and node.func.id in _CHECKPOINT_NAMES:
                return True
    return False


class CheckpointCoverageRule(Rule):
    """Row loops that charge work units must hit a cooperative checkpoint."""

    rule_id = "checkpoint-coverage"
    description = (
        "a loop that charges WorkMeter units must call context.checkpoint()"
        " or context.tick() somewhere in its loop nest"
    )
    scopes = (
        "repro/engine/",
        "repro/relational/",
        "repro/core/",
        "repro/parallel/",
    )

    def check(self, source: FileSource) -> List[Finding]:
        findings: List[Finding] = []
        for function in iter_functions(source.tree):
            findings.extend(self._check_scope(source, function))
        return findings

    def _check_scope(self, source: FileSource, root: ast.AST) -> List[Finding]:
        findings: List[Finding] = []
        reported: Set[int] = set()
        loop_stack: List[ast.AST] = []
        checkpointed: Dict[int, bool] = {}

        def covered(stack: List[ast.AST]) -> bool:
            for loop in stack:
                key = id(loop)
                if key not in checkpointed:
                    checkpointed[key] = _loop_has_checkpoint(loop)
                if checkpointed[key]:
                    return True
            return False

        def visit(node: ast.AST) -> None:
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                return
            if isinstance(node, ast.Call) and call_method_name(node) == "charge":
                if loop_stack and not covered(loop_stack):
                    innermost = loop_stack[-1]
                    if id(innermost) not in reported:
                        reported.add(id(innermost))
                        findings.append(
                            self.finding(
                                source,
                                node,
                                "work-charging row loop (line "
                                f"{getattr(innermost, 'lineno', '?')}) never "
                                "reaches context.checkpoint()/tick(); a "
                                "deadline or cancellation cannot interrupt it",
                            )
                        )
            if isinstance(node, _LOOP_TYPES):
                loop_stack.append(node)
                for child in ast.iter_child_nodes(node):
                    visit(child)
                loop_stack.pop()
            else:
                for child in ast.iter_child_nodes(node):
                    visit(child)

        for child in ast.iter_child_nodes(root):
            visit(child)
        return findings


class WorkChargingRule(Rule):
    """Operators that accept a WorkMeter must charge it or forward it."""

    rule_id = "work-charging"
    description = (
        "a function with a `meter` parameter must reference it (charge or"
        " forward); accepting and dropping the meter leaks work accounting"
    )
    scopes = ("repro/engine/", "repro/relational/", "repro/parallel/")

    def check(self, source: FileSource) -> List[Finding]:
        findings: List[Finding] = []
        for function in iter_functions(source.tree):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._has_meter_param(function):
                continue
            if not self._uses_meter(function):
                findings.append(
                    self.finding(
                        source,
                        function,
                        f"{function.name}() accepts a WorkMeter but never "
                        "charges or forwards it — the rows it touches are "
                        "invisible to work budgets",
                    )
                )
        return findings

    @staticmethod
    def _has_meter_param(function: ast.AST) -> bool:
        args = function.args  # type: ignore[attr-defined]
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        return any(arg.arg == "meter" for arg in every)

    @staticmethod
    def _uses_meter(function: ast.AST) -> bool:
        for node in ast.walk(function):  # nested defs count: closures forward
            if isinstance(node, ast.Name) and node.id == "meter":
                if isinstance(node.ctx, (ast.Load, ast.Store)):
                    # parameter occurrences are ast.arg, not Name, so any
                    # Name hit is a genuine body reference.
                    return True
        return False

"""Lock discipline: guarded attributes stay guarded.

The serving/observability/resilience layers guard their mutable state with
per-instance locks (``with self._lock: …``).  The invariant is implicit:
*which* attributes a lock guards is never written down, so a later edit can
add an unguarded write and introduce a data race that no test reliably
catches.  This rule derives the guarded set per class — every ``self``
attribute path assigned inside a ``with self.<lock>:`` block anywhere in
the class — and then flags writes to those paths outside a lock block.

Conventions honoured:

* ``__init__`` (and ``__new__``) may initialize guarded attributes without
  the lock — the instance is not yet shared;
* methods whose name ends in ``_locked`` are documented as "caller holds
  the lock" helpers and are exempt;
* lock attributes are recognised both by construction
  (``self.x = threading.Lock()`` / ``RLock()`` / ``make_lock(…)``) and by
  name (any ``with self.<attr>:`` where the attribute name contains
  ``lock``), so locks inherited from a base class still count.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.base import (
    FileSource,
    Finding,
    Rule,
    attr_chain,
    iter_scope_nodes,
)

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "make_lock", "checked_lock"})
_EXEMPT_METHODS = frozenset({"__init__", "__new__"})


def _is_lock_factory(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_write_paths(node: ast.stmt) -> List[Tuple[str, ast.AST]]:
    """Dotted self-paths written by an assignment statement.

    ``self.total += n`` → ``[("total", node)]``;
    ``self.stats.misses += 1`` → ``[("stats.misses", node)]``;
    ``self._counts[k] = v`` → ``[("_counts", node)]`` (container mutation).
    """
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return []
    paths: List[Tuple[str, ast.AST]] = []
    queue = list(targets)
    while queue:
        target = queue.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            queue.extend(target.elts)
            continue
        while isinstance(target, ast.Subscript):
            target = target.value
        chain = attr_chain(target)
        if chain and len(chain) >= 2 and chain[0] == "self":
            paths.append((".".join(chain[1:]), target))
    return paths


def _lock_attr_of_with(item: ast.withitem) -> Optional[str]:
    """The lock attribute name when a with-item is ``self.<attr>``."""
    expr = item.context_expr
    # ``with self._lock:`` or rare ``with self._lock.acquire…`` forms.
    chain = attr_chain(expr)
    if chain and len(chain) == 2 and chain[0] == "self":
        return chain[1]
    return None


class LockDisciplineRule(Rule):
    """Writes to lock-guarded attributes must hold the lock."""

    rule_id = "lock-discipline"
    description = (
        "attributes assigned under `with self.<lock>:` anywhere in a class"
        " may not be written elsewhere without the lock"
    )
    scopes = (
        "repro/service/",
        "repro/shard/",
        "repro/obs/",
        "repro/resilience/",
        "repro/metering.py",
    )

    def check(self, source: FileSource) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(source, node))
        return findings

    # ------------------------------------------------------------------

    def _check_class(
        self, source: FileSource, cls: ast.ClassDef
    ) -> List[Finding]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = self._lock_attributes(methods)
        if not lock_attrs:
            return []

        guarded: Set[str] = set()
        for method in methods:
            self._walk(method, lock_attrs, guarded, None, None)

        if not guarded:
            return []
        findings: List[Finding] = []
        for method in methods:
            if method.name in _EXEMPT_METHODS or method.name.endswith("_locked"):
                continue
            self._walk(method, lock_attrs, guarded, findings, source)
        return findings

    def _lock_attributes(self, methods: List[ast.stmt]) -> Set[str]:
        lock_attrs: Set[str] = set()
        for method in methods:
            for node in iter_scope_nodes(method):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    value = node.value
                    if value is not None and _is_lock_factory(value):
                        for path, _target in _self_write_paths(node):
                            if "." not in path:
                                lock_attrs.add(path)
                if isinstance(node, ast.With):
                    for item in node.items:
                        attr = _lock_attr_of_with(item)
                        if attr is not None and "lock" in attr.lower():
                            lock_attrs.add(attr)
        return lock_attrs

    def _walk(
        self,
        method: ast.AST,
        lock_attrs: Set[str],
        guarded: Set[str],
        findings: Optional[List[Finding]],
        source: Optional[FileSource],
    ) -> None:
        """One pass over a method.

        With ``findings is None`` this *collects* guarded paths (writes
        under a lock); otherwise it *checks* unguarded writes against the
        guarded set.
        """

        def visit(node: ast.AST, depth: int) -> None:
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                return
            if isinstance(node, ast.With):
                held = any(
                    (_lock_attr_of_with(item) or "") in lock_attrs
                    for item in node.items
                )
                next_depth = depth + 1 if held else depth
                for child in ast.iter_child_nodes(node):
                    visit(child, next_depth)
                return
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for path, target in _self_write_paths(node):
                    if findings is None:
                        if depth > 0 and path not in lock_attrs:
                            guarded.add(path)
                    elif depth == 0 and path in guarded:
                        assert source is not None
                        findings.append(
                            self.finding(
                                source,
                                target,
                                f"attribute self.{path} is guarded by a lock "
                                "elsewhere in this class but is written here "
                                "without holding it",
                            )
                        )
            for child in ast.iter_child_nodes(node):
                visit(child, depth)

        for child in ast.iter_child_nodes(method):
            visit(child, 0)

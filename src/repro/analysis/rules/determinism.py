"""Determinism: no wall clock, no global randomness in metered paths.

The paper's evaluation depends on *machine-independent* cost accounting:
plans are compared by WorkMeter units, not seconds, and every randomized
component (GEQO, synthetic workloads) is driven by an explicitly seeded
``random.Random`` instance.  A stray ``time.time()`` in a cost model or a
module-level ``random.random()`` in the planner silently re-introduces
nondeterminism — runs stop being reproducible and regression baselines
drift.  This rule bans, inside ``repro/core/`` and ``repro/engine/``:

* wall-clock timestamp reads — ``time.time()`` / ``time.time_ns()`` /
  ``time.localtime()`` … (and ``from time import time``);
  monotonic *duration* clocks (``time.monotonic()``,
  ``time.perf_counter()``) stay allowed: deadlines and reported latencies
  measure elapsed time, which does not make plans time-dependent;
* ``datetime.now()`` / ``utcnow()`` / ``today()`` rooted at ``datetime``
  or ``date``;
* calls on the *module-level* ``random`` generator — ``random.random()``,
  ``random.shuffle()``, … — while still allowing ``random.Random(seed)``
  and ``random.SystemRandom`` construction (an owned, seeded instance is
  the sanctioned pattern).
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.base import FileSource, Finding, Rule, attr_chain

_WALL_CLOCK_CALLS = frozenset(
    {"time", "time_ns", "ctime", "asctime", "localtime", "gmtime", "strftime"}
)
_DATETIME_ROOTS = frozenset({"datetime", "date"})
_DATETIME_CALLS = frozenset({"now", "utcnow", "today"})
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})


class WallClockRule(Rule):
    """Metered paths must not read the wall clock or global randomness."""

    rule_id = "no-wall-clock"
    description = (
        "time.*, datetime.now()/utcnow()/today() and module-level random.*"
        " are banned in core/ and engine/; use WorkMeter units and a seeded"
        " random.Random instance"
    )
    scopes = ("repro/core/", "repro/engine/")

    def check(self, source: FileSource) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                findings.extend(self._check_import(source, node))
            elif isinstance(node, ast.Call):
                finding = self._check_call(source, node)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _check_import(
        self, source: FileSource, node: ast.ImportFrom
    ) -> List[Finding]:
        findings: List[Finding] = []
        if node.module == "time":
            bad = [
                alias.name
                for alias in node.names
                if alias.name in _WALL_CLOCK_CALLS
            ]
            if bad:
                findings.append(
                    self.finding(
                        source,
                        node,
                        "importing wall-clock functions "
                        f"({', '.join(bad)}) from time into a metered path; "
                        "cost is measured in WorkMeter units here",
                    )
                )
        elif node.module == "random":
            bad = [
                alias.name
                for alias in node.names
                if alias.name not in _RANDOM_ALLOWED
            ]
            if bad:
                findings.append(
                    self.finding(
                        source,
                        node,
                        "importing the global generator functions "
                        f"({', '.join(bad)}) from random defeats seeding; "
                        "construct a random.Random(seed) instance instead",
                    )
                )
        return findings

    def _check_call(self, source: FileSource, node: ast.Call) -> "Finding | None":
        chain = attr_chain(node.func)
        if chain is None or len(chain) < 2:
            return None
        root, leaf = chain[0], chain[-1]
        if root == "time" and leaf in _WALL_CLOCK_CALLS:
            return self.finding(
                source,
                node,
                f"{'.'.join(chain)}() reads the wall clock inside a metered "
                "path; cost here is measured in WorkMeter units",
            )
        if root in _DATETIME_ROOTS and leaf in _DATETIME_CALLS:
            return self.finding(
                source,
                node,
                f"{'.'.join(chain)}() reads the wall clock inside a metered "
                "path; plans must not depend on the current time",
            )
        if root == "random" and leaf not in _RANDOM_ALLOWED:
            return self.finding(
                source,
                node,
                f"{'.'.join(chain)}() uses the shared module-level generator; "
                "its state leaks across components — construct a seeded "
                "random.Random instance instead",
            )
        return None

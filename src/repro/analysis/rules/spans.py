"""Span balance: tracer spans must be context-managed.

:meth:`repro.obs.tracing.Tracer.span` returns a context manager; the span
is only finished (duration recorded, parent restored) by ``__exit__``.  A
bare ``tracer.span("x")`` call — or a manually stored span that is never
closed — leaks an open span: children attach to the wrong parent and the
trace tree that EXPLAIN ANALYZE renders is corrupted.  The rule therefore
requires every ``*.span(…)`` call to appear directly as a ``with`` item.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.base import FileSource, Finding, Rule, call_method_name


class SpanBalanceRule(Rule):
    """``tracer.span()`` calls must be ``with``-managed."""

    rule_id = "span-balance"
    description = (
        "every tracer .span() call must be used as a context manager"
        " (`with tracer.span(...):`); unmanaged spans never close"
    )
    scopes = ("repro/",)

    def check(self, source: FileSource) -> List[Finding]:
        managed: Set[int] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.add(id(item.context_expr))
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_method_name(node) != "span":
                continue
            if id(node) in managed:
                continue
            findings.append(
                self.finding(
                    source,
                    node,
                    ".span() call is not a `with` item; the span is never "
                    "closed and the trace tree around it is corrupted",
                )
            )
        return findings

"""The domain rule battery.

Each rule guards one of the stack's unwritten invariants; see the module
docstrings for the precise semantics and the rationale.  The catalogue:

========================  ========  ===================================
rule id                   severity  guards
========================  ========  ===================================
``checkpoint-coverage``   error     work-charging row loops checkpoint
``work-charging``         error     operators use the meter they accept
``lock-discipline``       error     guarded attributes stay guarded
``no-wall-clock``         error     metered paths are deterministic
``error-swallowing``      error     broad handlers re-raise aborts
``span-balance``          error     tracer spans are context-managed
========================  ========  ===================================
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.base import Rule
from repro.analysis.rules.checkpoints import CheckpointCoverageRule, WorkChargingRule
from repro.analysis.rules.determinism import WallClockRule
from repro.analysis.rules.errors import ErrorSwallowingRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.spans import SpanBalanceRule

ALL_RULES: Tuple[Rule, ...] = (
    CheckpointCoverageRule(),
    WorkChargingRule(),
    LockDisciplineRule(),
    WallClockRule(),
    ErrorSwallowingRule(),
    SpanBalanceRule(),
)

__all__ = [
    "ALL_RULES",
    "CheckpointCoverageRule",
    "WorkChargingRule",
    "LockDisciplineRule",
    "WallClockRule",
    "ErrorSwallowingRule",
    "SpanBalanceRule",
]

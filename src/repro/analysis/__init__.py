"""Domain-aware static analysis for the reproduction's own source.

PRs 1–3 grew the codebase into a concurrent serving stack whose
correctness rests on *conventions*: row loops checkpoint cooperatively,
operators charge the :class:`~repro.metering.WorkMeter`, shared state is
touched only under its lock, metered paths never read the wall clock or
unseeded randomness, and broad exception handlers never swallow the
cooperative-abort errors.  This package turns those conventions into
machine-checked rules:

* :mod:`repro.analysis.base` — the :class:`~repro.analysis.base.Rule`
  protocol, :class:`~repro.analysis.base.Finding` records, severity
  levels, and ``# hdqo: ignore[rule-id]`` suppressions;
* :mod:`repro.analysis.rules` — the domain rule battery (see
  :data:`repro.analysis.rules.ALL_RULES` for the catalogue);
* :mod:`repro.analysis.driver` — per-file ``ast`` visiting with parallel
  file walking;
* :mod:`repro.analysis.report` — text and JSON reporters (the ``hdqo
  lint`` CLI output);
* :mod:`repro.analysis.lockwitness` — the complementary *dynamic* check:
  an opt-in instrumented lock (``HDQO_LOCKCHECK=1``) that records
  per-thread lock-acquisition graphs and reports ordering cycles.

Run it with ``hdqo lint [--format json] [--select rules] [paths]``.
"""

from __future__ import annotations

from repro.analysis.base import ERROR, WARNING, BaseRule, FileSource, Finding, Rule
from repro.analysis.driver import AnalysisReport, run_analysis
from repro.analysis.lockwitness import (
    GLOBAL_WITNESS,
    LockWitness,
    WitnessLock,
    lockcheck_enabled,
    make_lock,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ERROR",
    "WARNING",
    "BaseRule",
    "FileSource",
    "Finding",
    "Rule",
    "AnalysisReport",
    "run_analysis",
    "render_json",
    "render_text",
    "ALL_RULES",
    "GLOBAL_WITNESS",
    "LockWitness",
    "WitnessLock",
    "lockcheck_enabled",
    "make_lock",
]

"""Core abstractions of the static-analysis pass.

A :class:`Rule` inspects one parsed file (:class:`FileSource`) and returns
:class:`Finding` records.  Rules are *scoped*: each declares the package
subpaths it guards (``repro/engine/``, ``repro/service/``, …), so a rule
about physical-operator row loops never fires on, say, the CLI.

Suppressions follow the familiar inline-comment convention::

    meter.charge(1, "probe")  # hdqo: ignore[checkpoint-coverage]

suppresses the named rule(s) on that line; ``# hdqo: ignore`` (no bracket)
suppresses every rule on the line, and a ``# hdqo: ignore-file[rule-id]``
comment anywhere in the file suppresses the rule for the whole file.
Suppressed findings are counted (reported in the summary) but do not fail
the run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

ERROR = "error"
WARNING = "warning"

_SUPPRESS_RE = re.compile(
    r"#\s*hdqo:\s*ignore(?P<file>-file)?(?:\[(?P<rules>[a-z0-9_,\- ]+)\])?",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        rule_id: the violated rule (``checkpoint-coverage``, …).
        severity: :data:`ERROR` or :data:`WARNING`.
        path: file the finding is in.
        line: 1-based line number.
        column: 0-based column offset.
        message: human-readable description of the violation.
    """

    rule_id: str
    severity: str
    path: str
    line: int
    column: int
    message: str
    #: Stable identity of the finding, independent of line numbers — the
    #: handle baseline entries match on (interprocedural findings set it;
    #: per-file findings may leave it empty).
    key: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "key": self.key,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.severity}[{self.rule_id}] {self.message}"
        )


@dataclass
class FileSource:
    """One parsed file plus its suppression table.

    Attributes:
        path: the file path as given to the driver.
        posix_path: the path with forward slashes (rule scopes match on it).
        text: raw source text.
        tree: the parsed module.
        line_suppressions: line → suppressed rule ids (``None`` = all).
        file_suppressions: rule ids suppressed for the whole file.
    """

    path: str
    posix_path: str
    text: str
    tree: ast.Module
    line_suppressions: Dict[int, Optional[FrozenSet[str]]] = field(
        default_factory=dict
    )
    file_suppressions: FrozenSet[str] = frozenset()

    @classmethod
    def parse(cls, path: str, text: str) -> "FileSource":
        """Parse source text; raises :class:`SyntaxError` on bad input."""
        tree = ast.parse(text, filename=path)
        line_suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
        file_rules: List[str] = []
        for number, line in enumerate(text.splitlines(), 1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = match.group("rules")
            names = (
                frozenset(part.strip() for part in rules.split(",") if part.strip())
                if rules is not None
                else None
            )
            if match.group("file"):
                file_rules.extend(names or ())
            else:
                previous = line_suppressions.get(number, frozenset())
                if names is None or previous is None:
                    line_suppressions[number] = None
                else:
                    line_suppressions[number] = previous | names
        return cls(
            path=path,
            posix_path=path.replace("\\", "/"),
            text=text,
            tree=tree,
            line_suppressions=line_suppressions,
            file_suppressions=frozenset(file_rules),
        )

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Is ``rule_id`` suppressed at ``line`` (inline or file-wide)?"""
        if rule_id in self.file_suppressions:
            return True
        if line in self.line_suppressions:
            rules = self.line_suppressions[line]
            return rules is None or rule_id in rules
        return False


class Rule:
    """Base class (and de-facto protocol) for one static-analysis rule.

    Subclasses set :attr:`rule_id`, :attr:`severity`, :attr:`description`,
    and :attr:`scopes`, and implement :meth:`check`.
    """

    rule_id: str = "rule"
    severity: str = ERROR
    description: str = ""
    #: Substrings of the forward-slash path this rule applies to.
    scopes: Tuple[str, ...] = ("repro/",)

    def applies_to(self, posix_path: str) -> bool:
        return any(scope in posix_path for scope in self.scopes)

    def check(self, source: FileSource) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self, source: FileSource, node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` anchored at ``node``."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=source.path,
            line=int(getattr(node, "lineno", 1)),
            column=int(getattr(node, "col_offset", 0)),
            message=message,
        )


#: Back-compat alias: rules subclass this; external code may type against it.
BaseRule = Rule


def attr_chain(node: ast.expr) -> Optional[List[str]]:
    """The dotted-name chain of an expression, or None.

    ``self.stats.misses`` → ``["self", "stats", "misses"]``; anything that
    is not a pure ``Name``/``Attribute`` chain (calls, subscripts) yields
    ``None``.
    """
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def call_method_name(node: ast.Call) -> Optional[str]:
    """The attribute name of a method-style call (``x.y.charge(…)`` → ``charge``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def iter_scope_nodes(root: ast.AST) -> List[ast.AST]:
    """Children of ``root``'s scope: every node except nested function /
    class / lambda bodies (their control flow is independent)."""
    collected: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        collected.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return collected


def scope_calls(root: ast.AST) -> List[ast.Call]:
    """Every call in ``root``'s own scope (nested defs excluded)."""
    return [n for n in iter_scope_nodes(root) if isinstance(n, ast.Call)]


def iter_functions(tree: ast.Module) -> List[ast.AST]:
    """All function definitions in a module, nested ones included, plus the
    module itself (for top-level code)."""
    functions: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(node)
    return functions


def exception_names(handler_type: Optional[ast.expr]) -> List[str]:
    """Terminal names of an ``except`` clause type (tuples flattened)."""
    if handler_type is None:
        return []
    nodes: Sequence[ast.expr]
    if isinstance(handler_type, ast.Tuple):
        nodes = handler_type.elts
    else:
        nodes = [handler_type]
    names: List[str] = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names

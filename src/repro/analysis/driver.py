"""The analysis driver: walk files, run rules, aggregate findings.

Files are analysed independently (one parsed AST per file, every scoped
rule applied to it), which makes the pass embarrassingly parallel; the
driver fans file analysis out over a thread pool.  CPython's ``ast``
module releases the GIL while parsing, and rule checking is cheap, so
threads are enough — no process pool, no pickling.

Parsing is the expensive part, so one :class:`SourceCache` is shared by
every rule group in an invocation: the per-file battery and the
interprocedural pass (``hdqo lint --interproc``) see the same parsed
:class:`FileSource` objects, and each file is parsed exactly once per
invocation (``SourceCache.parse_counts`` lets tests assert it).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.base import ERROR, FileSource, Finding, Rule

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".pytest_cache"})


class SourceCache:
    """Parse-once cache of :class:`FileSource` objects, keyed by path.

    Shared across rule groups within one lint invocation so adding a
    second group (the interprocedural pass) does not re-parse the tree.
    Thread-safe: the parallel per-file driver loads distinct paths
    concurrently.  Parse failures are cached too — a bad file raises the
    same exception on every load without re-reading it.

    Attributes:
        parse_counts: path → number of actual ``ast.parse`` runs; the
            parse-exactly-once invariant is ``all(v == 1 …)`` after a run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: Dict[str, FileSource] = {}
        self._failures: Dict[str, Exception] = {}
        self.parse_counts: Dict[str, int] = {}

    def load(self, path: str) -> FileSource:
        """The parsed source for ``path`` (cached; parses at most once).

        Raises the original :class:`SyntaxError` / :class:`OSError` /
        :class:`UnicodeDecodeError` on files that cannot be analysed.
        """
        with self._lock:
            cached = self._sources.get(path)
            if cached is not None:
                return cached
            failure = self._failures.get(path)
            if failure is not None:
                raise failure
        # Parse outside the cache lock (ast.parse dominates the cost and
        # releases the GIL); distinct files parse concurrently.  Two
        # threads racing the *same* path could both parse — the driver
        # never does that (one task per file), and the counter would
        # expose it.
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            source = FileSource.parse(path, text)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            with self._lock:
                self.parse_counts[path] = self.parse_counts.get(path, 0) + 1
                self._failures[path] = exc
            raise
        with self._lock:
            self.parse_counts[path] = self.parse_counts.get(path, 0) + 1
            self._sources[path] = source
            return source


@dataclass
class AnalysisReport:
    """Aggregated result of one analysis run."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    #: Findings accepted by the interproc baseline file (not failures).
    baselined: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == ERROR)

    @property
    def warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity != ERROR)

    @property
    def ok(self) -> bool:
        return self.errors == 0


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    collected.append(os.path.join(dirpath, name))
    return sorted(set(collected))


def analyze_file(
    path: str,
    rules: Sequence[Rule],
    cache: Optional[SourceCache] = None,
) -> Tuple[List[Finding], int]:
    """Analyse one file; returns (findings, suppressed-count).

    A file that fails to parse produces a single ``syntax-error`` finding
    rather than aborting the whole run.  With a :class:`SourceCache`, the
    parsed source is shared with (and reused by) other rule groups.
    """
    try:
        if cache is not None:
            source = cache.load(path)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            source = FileSource.parse(path, text)
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return (
            [
                Finding(
                    rule_id="syntax-error",
                    severity=ERROR,
                    path=path,
                    line=int(line),
                    column=0,
                    message=f"file could not be analysed: {exc}",
                )
            ],
            0,
        )
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(source.posix_path):
            continue
        for finding in rule.check(source):
            if source.suppressed(finding.rule_id, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def resolve_rules(
    select: Optional[Iterable[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Rule]:
    """The rule battery to run, optionally filtered by rule id."""
    from repro.analysis.rules import ALL_RULES

    battery: Sequence[Rule] = rules if rules is not None else ALL_RULES
    if select is None:
        return list(battery)
    wanted = {name.strip() for name in select if name.strip()}
    unknown = wanted - {rule.rule_id for rule in battery}
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"available: {', '.join(sorted(r.rule_id for r in battery))}"
        )
    return [rule for rule in battery if rule.rule_id in wanted]


def run_analysis(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    cache: Optional[SourceCache] = None,
) -> AnalysisReport:
    """Run the battery over ``paths`` with parallel file walking.

    Pass a :class:`SourceCache` to share parsed ASTs with other rule
    groups (the interprocedural pass) — each file parses exactly once
    per invocation regardless of how many groups run.
    """
    battery = resolve_rules(select=select, rules=rules)
    files = iter_python_files(paths)
    report = AnalysisReport(files=len(files))
    if not files:
        return report
    workers = jobs if jobs and jobs > 0 else min(8, (os.cpu_count() or 2))
    workers = max(1, min(workers, len(files)))
    if workers == 1:
        results = [analyze_file(path, battery, cache) for path in files]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(lambda path: analyze_file(path, battery, cache), files)
            )
    for findings, suppressed in results:
        report.findings.extend(findings)
        report.suppressed += suppressed
    report.findings.sort(key=Finding.sort_key)
    return report


__all__ = [
    "AnalysisReport",
    "SourceCache",
    "analyze_file",
    "iter_python_files",
    "resolve_rules",
    "run_analysis",
]

"""Reporters for analysis runs: line-per-finding text and machine JSON."""

from __future__ import annotations

import json

from repro.analysis.driver import AnalysisReport


def render_text(report: AnalysisReport) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    lines = [finding.render() for finding in report.findings]
    noun = "file" if report.files == 1 else "files"
    summary = (
        f"{report.files} {noun} checked: "
        f"{report.errors} error(s), {report.warnings} warning(s), "
        f"{report.suppressed} suppressed"
    )
    if report.baselined:
        summary += f", {report.baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report (the ``--format json`` CLI output)."""
    payload = {
        "files": report.files,
        "errors": report.errors,
        "warnings": report.warnings,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "ok": report.ok,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


__all__ = ["render_json", "render_text"]
